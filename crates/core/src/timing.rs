//! Phase timing: the cost model and the paper's round-trip measurement
//! method (Fig. 7).

use mdagent_simnet::{SimDuration, SimTime};

/// CPU/IO cost constants calibrated to the paper's testbed (P4 1.7 GHz,
/// 256 MB; Java serialization to disk). Costs that depend on payload size
/// scale per megabyte; hosts additionally scale by their
/// [`CpuFactor`](mdagent_simnet::CpuFactor).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed suspension cost (stop playback, quiesce threads).
    pub suspend_base: SimDuration,
    /// Snapshot serialization per shipped megabyte.
    pub snapshot_per_mb: SimDuration,
    /// Fixed resumption cost (thread start, UI re-init).
    pub resume_base: SimDuration,
    /// Deserialization/verification per shipped megabyte.
    pub resume_per_mb: SimDuration,
    /// Rebinding to a local resource.
    pub rebind_local: SimDuration,
    /// Establishing a remote streaming session back to the source.
    pub remote_stream_setup: SimDuration,
    /// Remote stream index/prebuffer per megabyte of remote data.
    pub remote_index_per_mb: SimDuration,
    /// Running the adaptor.
    pub adapt: SimDuration,
    /// One registry lookup.
    pub registry_lookup: SimDuration,
    /// One ontology reasoning pass in the AA.
    pub reasoning: SimDuration,
    /// One incremental retraction flush (delete–rederive repair) in a
    /// registry center — a fraction of a full reasoning pass.
    pub retraction: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            suspend_base: SimDuration::from_millis(45),
            snapshot_per_mb: SimDuration::from_millis(150),
            resume_base: SimDuration::from_millis(120),
            resume_per_mb: SimDuration::from_millis(130),
            rebind_local: SimDuration::from_millis(40),
            remote_stream_setup: SimDuration::from_millis(180),
            remote_index_per_mb: SimDuration::from_millis(28),
            adapt: SimDuration::from_millis(60),
            registry_lookup: SimDuration::from_millis(25),
            reasoning: SimDuration::from_millis(35),
            retraction: SimDuration::from_millis(12),
        }
    }
}

impl CostModel {
    /// Modeled payload of the 1 kB probe used to estimate response times
    /// between hosts when no concrete message exists yet.
    pub const PROBE_PAYLOAD_BYTES: u64 = 1024;

    /// Modeled payload of a minimal control message (reachability checks,
    /// bare acknowledgements).
    pub const CONTROL_PAYLOAD_BYTES: u64 = 1;

    /// Suspension cost when `snapshot_bytes` must be serialized.
    pub fn suspend_cost(&self, snapshot_bytes: u64) -> SimDuration {
        self.suspend_base + per_mb(self.snapshot_per_mb, snapshot_bytes)
    }

    /// Resumption cost when `shipped_bytes` arrived with the agent and
    /// `remote_bytes` stay behind to be streamed.
    pub fn resume_cost(&self, shipped_bytes: u64, remote_bytes: u64) -> SimDuration {
        let mut cost = self.resume_base + per_mb(self.resume_per_mb, shipped_bytes);
        if remote_bytes > 0 {
            cost += self.remote_stream_setup + per_mb(self.remote_index_per_mb, remote_bytes);
        }
        cost
    }
}

fn per_mb(rate: SimDuration, bytes: u64) -> SimDuration {
    SimDuration::from_secs_f64(rate.as_secs_f64() * bytes as f64 / 1_000_000.0)
}

/// Retry/backoff policy of the migration watchdog. Attempts are 1-based:
/// the initial transfer is attempt 1, so `max_attempts = 3` allows two
/// retries before the migration is rolled back at the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transfer attempts (initial + retries) before rollback.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub backoff_base: SimDuration,
    /// Upper bound on any single backoff interval.
    pub backoff_cap: SimDuration,
    /// Slack added to the estimated transfer time before an attempt is
    /// declared timed out.
    pub timeout_margin: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: SimDuration::from_millis(200),
            backoff_cap: SimDuration::from_secs(5),
            timeout_margin: SimDuration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): `base · 2^(retry−1)`,
    /// capped at [`RetryPolicy::backoff_cap`].
    pub fn backoff(&self, retry: u32) -> SimDuration {
        let exp = retry.saturating_sub(1).min(16);
        let scaled =
            SimDuration::from_secs_f64(self.backoff_base.as_secs_f64() * (1u64 << exp) as f64);
        scaled.min(self.backoff_cap)
    }
}

/// A host clock with constant skew against simulated true time — the
/// premise of the paper's Fig. 7: "the difference of time values of clocks
/// at the same time is nearly a constant value".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostClock {
    skew_micros: i64,
}

impl HostClock {
    /// A clock offset by `skew_micros` from true time (may be negative).
    pub fn with_skew(skew_micros: i64) -> Self {
        HostClock { skew_micros }
    }

    /// A perfectly synchronized clock.
    pub fn synchronized() -> Self {
        HostClock { skew_micros: 0 }
    }

    /// Reads the local (skewed) clock at true instant `now`, in
    /// microseconds since the local epoch.
    pub fn read(&self, now: SimTime) -> i64 {
        now.as_micros() as i64 + self.skew_micros
    }
}

/// The four timestamps of one round trip between hosts 1 and 2
/// (Fig. 7): depart H1, arrive H2, depart H2, arrive H1 — each read on the
/// *local* clock of the host where it happens.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundTrip {
    /// `T1@H1` — departure, host 1 clock.
    pub t1_h1: i64,
    /// `T2@H2` — arrival, host 2 clock.
    pub t2_h2: i64,
    /// `T3@H2` — return departure, host 2 clock.
    pub t3_h2: i64,
    /// `T4@H1` — return arrival, host 1 clock.
    pub t4_h1: i64,
}

impl RoundTrip {
    /// The skew-free total migration time:
    /// `(T2@H2 − T1@H1) + (T4@H1 − T3@H2)`. The two skew terms cancel
    /// because each host contributes one positive and one negative
    /// reading.
    pub fn migration_cost_micros(&self) -> i64 {
        (self.t2_h2 - self.t1_h1) + (self.t4_h1 - self.t3_h2)
    }
}

/// Records per-phase durations of one migration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTimes {
    /// Suspension (state capture at the source).
    pub suspend: SimDuration,
    /// Agent transfer (check-out to check-in).
    pub migrate: SimDuration,
    /// Resumption (restore, rebind, adapt at the destination).
    pub resume: SimDuration,
}

impl PhaseTimes {
    /// Total of the three phases.
    pub fn total(&self) -> SimDuration {
        self.suspend + self.migrate + self.resume
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_megabytes() {
        let m = CostModel::default();
        let small = m.suspend_cost(100_000);
        let big = m.suspend_cost(7_500_000);
        assert!(big > small);
        // 7.5 MB at 150 ms/MB = 1125 ms + base.
        assert_eq!(
            m.suspend_cost(7_500_000),
            m.suspend_base + SimDuration::from_micros(1_125_000)
        );
    }

    #[test]
    fn resume_cost_includes_remote_setup_only_when_streaming() {
        let m = CostModel::default();
        let without = m.resume_cost(100_000, 0);
        let with = m.resume_cost(100_000, 2_000_000);
        assert!(with > without + m.remote_stream_setup - SimDuration::from_millis(1));
    }

    #[test]
    fn round_trip_cancels_clock_skew() {
        // True one-way time 400 ms each direction; skews of +5 s and −3 s.
        let h1 = HostClock::with_skew(5_000_000);
        let h2 = HostClock::with_skew(-3_000_000);
        let depart = SimTime::from_millis(1_000);
        let arrive = SimTime::from_millis(1_400);
        let back_depart = SimTime::from_millis(2_000);
        let back_arrive = SimTime::from_millis(2_400);
        let rt = RoundTrip {
            t1_h1: h1.read(depart),
            t2_h2: h2.read(arrive),
            t3_h2: h2.read(back_depart),
            t4_h1: h1.read(back_arrive),
        };
        assert_eq!(rt.migration_cost_micros(), 800_000, "2 × 400 ms, skew-free");
        // Naive single-direction subtraction would be wildly wrong:
        assert_ne!(rt.t2_h2 - rt.t1_h1, 400_000);
    }

    #[test]
    fn synchronized_clock_reads_true_time() {
        let c = HostClock::synchronized();
        assert_eq!(c.read(SimTime::from_millis(7)), 7_000);
    }

    #[test]
    fn phase_total() {
        let p = PhaseTimes {
            suspend: SimDuration::from_millis(100),
            migrate: SimDuration::from_millis(500),
            resume: SimDuration::from_millis(400),
        };
        assert_eq!(p.total(), SimDuration::from_millis(1_000));
    }
}
