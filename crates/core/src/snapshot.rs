//! Snapshot management: state persistence across migrations (paper §4.2).
//!
//! "The snapshot management is responsible for persistence process control
//! of running applications."

use std::collections::BTreeMap;

use mdagent_wire::{digest_of, impl_wire_struct, to_bytes, Wire, WireError};

use crate::app::Application;
use crate::component::ComponentSet;
use crate::coordinator::Coordinator;

/// A captured application snapshot: everything needed to resume elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Application name.
    pub app_name: String,
    /// Coordinator (state map, version, observers, sync links).
    pub coordinator: Coordinator,
    /// Serialized user profile bytes.
    pub profile_bytes: Vec<u8>,
    /// Monotonic capture counter.
    pub sequence: u64,
}

impl_wire_struct!(Snapshot {
    app_name,
    coordinator,
    profile_bytes,
    sequence
});

impl Snapshot {
    /// Exact wire size of the snapshot.
    pub fn wire_len(&self) -> u64 {
        self.encoded_len() as u64
    }

    /// A header-only stub: same name and sequence, no state or profile.
    /// Shipped in place of the full snapshot when a [`SnapshotDelta`]
    /// carries the state, so the cargo's fixed fields stay intact.
    pub fn header(&self) -> Snapshot {
        Snapshot {
            app_name: self.app_name.clone(),
            coordinator: Coordinator::default(),
            profile_bytes: Vec::new(),
            sequence: self.sequence,
        }
    }
}

/// A snapshot encoded as the difference against a base snapshot the
/// destination already holds (the last one it acknowledged).
///
/// The diff works on the exact wire encodings: the longest common prefix
/// and suffix of the base and next encodings are elided, and only the
/// differing middle travels. Repeat migrations of an application whose
/// state changed a little therefore ship a few hundred bytes instead of
/// the whole serialized state.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// Application name (lets the receiver find its base without
    /// decoding anything else).
    pub app_name: String,
    /// Sequence number of the base snapshot this delta applies to.
    pub base_sequence: u64,
    /// Content digest of the base's wire encoding; a mismatch means the
    /// receiver's base diverged and the delta must be rejected.
    pub base_digest: u64,
    /// Sequence number of the snapshot this delta reconstructs.
    pub sequence: u64,
    /// Bytes shared with the head of the base encoding.
    pub prefix_len: u64,
    /// Bytes shared with the tail of the base encoding.
    pub suffix_len: u64,
    /// The differing middle of the next encoding.
    pub middle: Vec<u8>,
}

impl_wire_struct!(SnapshotDelta {
    app_name,
    base_sequence,
    base_digest,
    sequence,
    prefix_len,
    suffix_len,
    middle
});

/// Encoding used for diffing: the sequence field is zeroed so the
/// always-changing capture counter at the tail does not defeat the
/// common-suffix trim (it travels separately in the delta).
fn normalized_bytes(snap: &Snapshot) -> Vec<u8> {
    let mut copy = snap.clone();
    copy.sequence = 0;
    to_bytes(&copy)
}

impl SnapshotDelta {
    /// Encodes `next` as a delta against `base`.
    pub fn between(base: &Snapshot, next: &Snapshot) -> SnapshotDelta {
        let old = normalized_bytes(base);
        let new = normalized_bytes(next);
        let prefix = old
            .iter()
            .zip(new.iter())
            .take_while(|(a, b)| a == b)
            .count();
        let max_suffix = old.len().min(new.len()) - prefix;
        let suffix = old
            .iter()
            .rev()
            .zip(new.iter().rev())
            .take(max_suffix)
            .take_while(|(a, b)| a == b)
            .count();
        SnapshotDelta {
            app_name: next.app_name.clone(),
            base_sequence: base.sequence,
            base_digest: digest_of(base).as_u64(),
            sequence: next.sequence,
            prefix_len: prefix as u64,
            suffix_len: suffix as u64,
            middle: new[prefix..new.len() - suffix].to_vec(),
        }
    }

    /// Reconstructs the full snapshot from the receiver's base copy.
    ///
    /// # Errors
    ///
    /// [`WireError::ChecksumMismatch`] when the base is not the one the
    /// delta was computed against; decoding errors if the reassembled
    /// bytes are malformed.
    pub fn apply(&self, base: &Snapshot) -> Result<Snapshot, WireError> {
        if digest_of(base).as_u64() != self.base_digest {
            return Err(WireError::ChecksumMismatch);
        }
        let old = normalized_bytes(base);
        let prefix = self.prefix_len as usize;
        let suffix = self.suffix_len as usize;
        if prefix > old.len() || suffix > old.len() - prefix {
            return Err(WireError::ChecksumMismatch);
        }
        let mut bytes = Vec::with_capacity(prefix + self.middle.len() + suffix);
        bytes.extend_from_slice(&old[..prefix]);
        bytes.extend_from_slice(&self.middle);
        bytes.extend_from_slice(&old[old.len() - suffix..]);
        let mut snapshot: Snapshot = mdagent_wire::from_bytes(&bytes)?;
        snapshot.sequence = self.sequence;
        Ok(snapshot)
    }

    /// Exact wire size of the delta.
    pub fn wire_len(&self) -> u64 {
        self.encoded_len() as u64
    }
}

/// Captures and restores application snapshots, keeping bounded history.
///
/// # Examples
///
/// ```
/// use mdagent_core::{Application, AppId, SnapshotManager};
/// use mdagent_simnet::HostId;
///
/// let mut mgr = SnapshotManager::new(4);
/// let mut app = Application::new(AppId(0), "player", HostId(0));
/// app.coordinator.set_state("track", "prelude.mp3");
/// let snap = mgr.capture(&app);
/// assert_eq!(snap.coordinator.state("track"), Some("prelude.mp3"));
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotManager {
    history: BTreeMap<String, Vec<Snapshot>>,
    capacity: usize,
    sequence: u64,
}

impl SnapshotManager {
    /// Creates a manager retaining up to `capacity` snapshots per app.
    pub fn new(capacity: usize) -> Self {
        SnapshotManager {
            history: BTreeMap::new(),
            capacity: capacity.max(1),
            sequence: 0,
        }
    }

    /// Captures the application's migratable state.
    pub fn capture(&mut self, app: &Application) -> Snapshot {
        self.sequence += 1;
        let snap = Snapshot {
            app_name: app.name.clone(),
            coordinator: app.coordinator.clone(),
            profile_bytes: to_bytes(&app.user_profile),
            sequence: self.sequence,
        };
        let entry = self.history.entry(app.name.clone()).or_default();
        if entry.len() == self.capacity {
            entry.remove(0);
        }
        entry.push(snap.clone());
        snap
    }

    /// Restores a snapshot into an application (coordinator + profile).
    ///
    /// # Errors
    ///
    /// Propagates profile decoding failures.
    pub fn restore(snap: &Snapshot, app: &mut Application) -> Result<(), WireError> {
        app.coordinator = snap.coordinator.clone();
        app.user_profile = mdagent_wire::from_bytes(&snap.profile_bytes)?;
        Ok(())
    }

    /// The latest retained snapshot of an app.
    pub fn latest(&self, app_name: &str) -> Option<&Snapshot> {
        self.history.get(app_name).and_then(|v| v.last())
    }

    /// Number of retained snapshots for an app.
    pub fn retained(&self, app_name: &str) -> usize {
        self.history.get(app_name).map_or(0, Vec::len)
    }

    /// A retained snapshot of an app by capture sequence number, if it is
    /// still within the bounded history. Used to resolve the base of a
    /// [`SnapshotDelta`].
    pub fn by_sequence(&self, app_name: &str, sequence: u64) -> Option<&Snapshot> {
        self.history
            .get(app_name)
            .and_then(|v| v.iter().find(|s| s.sequence == sequence))
    }
}

/// Consistency check used by the tests and the MA after restore: the
/// restored application must agree with the snapshot on state version and
/// content.
pub fn is_consistent(snap: &Snapshot, app: &Application) -> bool {
    app.name == snap.app_name
        && app.coordinator.version() == snap.coordinator.version()
        && app.coordinator.state_map() == snap.coordinator.state_map()
}

/// Reconstructs a component set from shipped bytes (what the MA does at
/// check-in).
///
/// # Errors
///
/// Propagates wire decoding failures.
pub fn decode_components(bytes: &[u8]) -> Result<ComponentSet, WireError> {
    mdagent_wire::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppId;
    use crate::profile::UserProfile;
    use mdagent_context::UserId;
    use mdagent_simnet::HostId;

    fn app() -> Application {
        let mut app = Application::new(AppId(0), "player", HostId(0));
        app.coordinator.set_state("track", "prelude.mp3");
        app.coordinator.set_state("position-ms", "92000");
        app.user_profile = UserProfile::new(UserId(1)).with_preference("volume", "8");
        app
    }

    #[test]
    fn capture_restore_identity() {
        let mut mgr = SnapshotManager::new(4);
        let source = app();
        let snap = mgr.capture(&source);
        assert!(is_consistent(&snap, &source));

        let mut fresh = Application::new(AppId(1), "player", HostId(1));
        SnapshotManager::restore(&snap, &mut fresh).unwrap();
        assert_eq!(fresh.coordinator.state("position-ms"), Some("92000"));
        assert_eq!(fresh.user_profile.preference("volume"), Some("8"));
        assert!(is_consistent(&snap, &fresh));
    }

    #[test]
    fn history_is_bounded_and_ordered() {
        let mut mgr = SnapshotManager::new(2);
        let mut a = app();
        for i in 0..5 {
            a.coordinator.set_state("i", i.to_string());
            mgr.capture(&a);
        }
        assert_eq!(mgr.retained("player"), 2);
        let latest = mgr.latest("player").unwrap();
        assert_eq!(latest.coordinator.state("i"), Some("4"));
        assert!(latest.sequence >= 5);
        assert_eq!(mgr.retained("ghost"), 0);
        assert!(mgr.latest("ghost").is_none());
    }

    #[test]
    fn consistency_detects_divergence() {
        let mut mgr = SnapshotManager::new(4);
        let mut a = app();
        let snap = mgr.capture(&a);
        a.coordinator.set_state("track", "changed.mp3");
        assert!(!is_consistent(&snap, &a));
    }

    #[test]
    fn snapshot_wire_roundtrip() {
        let mut mgr = SnapshotManager::new(4);
        let snap = mgr.capture(&app());
        let bytes = to_bytes(&snap);
        assert_eq!(bytes.len() as u64, snap.wire_len());
        let back: Snapshot = mdagent_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn delta_roundtrip_equals_full_snapshot() {
        let mut mgr = SnapshotManager::new(4);
        let mut a = app();
        let base = mgr.capture(&a);
        // Mutate a little state, as repeat migrations of a running app do.
        a.coordinator.set_state("position-ms", "184000");
        let next = mgr.capture(&a);

        let delta = SnapshotDelta::between(&base, &next);
        let rebuilt = delta.apply(&base).unwrap();
        assert_eq!(rebuilt, next, "delta apply must reproduce the snapshot");
        assert!(
            delta.wire_len() < next.wire_len(),
            "small state change must encode smaller than the full snapshot: {} vs {}",
            delta.wire_len(),
            next.wire_len()
        );
    }

    #[test]
    fn delta_roundtrip_handles_growth_and_shrink() {
        let mut mgr = SnapshotManager::new(8);
        let mut a = app();
        let base = mgr.capture(&a);
        a.coordinator
            .set_state("playlist", "a-very-long-newly-added-entry");
        let grown = mgr.capture(&a);
        let d1 = SnapshotDelta::between(&base, &grown);
        assert_eq!(d1.apply(&base).unwrap(), grown);

        a.coordinator.set_state("playlist", "x");
        let shrunk = mgr.capture(&a);
        let d2 = SnapshotDelta::between(&grown, &shrunk);
        assert_eq!(d2.apply(&grown).unwrap(), shrunk);
    }

    #[test]
    fn delta_rejects_wrong_base() {
        let mut mgr = SnapshotManager::new(4);
        let mut a = app();
        let base = mgr.capture(&a);
        a.coordinator.set_state("track", "fugue.mp3");
        let next = mgr.capture(&a);
        let delta = SnapshotDelta::between(&base, &next);

        a.coordinator.set_state("track", "toccata.mp3");
        let diverged = mgr.capture(&a);
        assert!(matches!(
            delta.apply(&diverged),
            Err(WireError::ChecksumMismatch)
        ));
    }

    #[test]
    fn delta_wire_roundtrip() {
        let mut mgr = SnapshotManager::new(4);
        let mut a = app();
        let base = mgr.capture(&a);
        a.coordinator.set_state("track", "fugue.mp3");
        let next = mgr.capture(&a);
        let delta = SnapshotDelta::between(&base, &next);
        let bytes = to_bytes(&delta);
        assert_eq!(bytes.len() as u64, delta.wire_len());
        let back: SnapshotDelta = mdagent_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, delta);
        assert_eq!(back.apply(&base).unwrap(), next);
    }

    #[test]
    fn snapshot_header_keeps_name_and_sequence_only() {
        let mut mgr = SnapshotManager::new(4);
        let snap = mgr.capture(&app());
        let header = snap.header();
        assert_eq!(header.app_name, snap.app_name);
        assert_eq!(header.sequence, snap.sequence);
        assert!(header.profile_bytes.is_empty());
        assert!(header.wire_len() < snap.wire_len());
    }

    #[test]
    fn by_sequence_finds_retained_snapshots() {
        let mut mgr = SnapshotManager::new(4);
        let mut a = app();
        let first = mgr.capture(&a);
        a.coordinator.set_state("track", "fugue.mp3");
        let second = mgr.capture(&a);
        assert_eq!(mgr.by_sequence("player", first.sequence), Some(&first));
        assert_eq!(mgr.by_sequence("player", second.sequence), Some(&second));
        assert_eq!(mgr.by_sequence("player", 999), None);
        assert_eq!(mgr.by_sequence("ghost", first.sequence), None);
    }

    #[test]
    fn corrupt_profile_restore_errors() {
        let mut mgr = SnapshotManager::new(4);
        let mut snap = mgr.capture(&app());
        snap.profile_bytes = vec![0xFF, 0xFF, 0xFF];
        let mut fresh = Application::new(AppId(1), "player", HostId(1));
        assert!(SnapshotManager::restore(&snap, &mut fresh).is_err());
    }
}
