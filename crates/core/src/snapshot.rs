//! Snapshot management: state persistence across migrations (paper §4.2).
//!
//! "The snapshot management is responsible for persistence process control
//! of running applications."

use std::collections::BTreeMap;

use mdagent_wire::{impl_wire_struct, to_bytes, Wire, WireError};

use crate::app::Application;
use crate::component::ComponentSet;
use crate::coordinator::Coordinator;

/// A captured application snapshot: everything needed to resume elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Application name.
    pub app_name: String,
    /// Coordinator (state map, version, observers, sync links).
    pub coordinator: Coordinator,
    /// Serialized user profile bytes.
    pub profile_bytes: Vec<u8>,
    /// Monotonic capture counter.
    pub sequence: u64,
}

impl_wire_struct!(Snapshot {
    app_name,
    coordinator,
    profile_bytes,
    sequence
});

impl Snapshot {
    /// Exact wire size of the snapshot.
    pub fn wire_len(&self) -> u64 {
        self.encoded_len() as u64
    }
}

/// Captures and restores application snapshots, keeping bounded history.
///
/// # Examples
///
/// ```
/// use mdagent_core::{Application, AppId, SnapshotManager};
/// use mdagent_simnet::HostId;
///
/// let mut mgr = SnapshotManager::new(4);
/// let mut app = Application::new(AppId(0), "player", HostId(0));
/// app.coordinator.set_state("track", "prelude.mp3");
/// let snap = mgr.capture(&app);
/// assert_eq!(snap.coordinator.state("track"), Some("prelude.mp3"));
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotManager {
    history: BTreeMap<String, Vec<Snapshot>>,
    capacity: usize,
    sequence: u64,
}

impl SnapshotManager {
    /// Creates a manager retaining up to `capacity` snapshots per app.
    pub fn new(capacity: usize) -> Self {
        SnapshotManager {
            history: BTreeMap::new(),
            capacity: capacity.max(1),
            sequence: 0,
        }
    }

    /// Captures the application's migratable state.
    pub fn capture(&mut self, app: &Application) -> Snapshot {
        self.sequence += 1;
        let snap = Snapshot {
            app_name: app.name.clone(),
            coordinator: app.coordinator.clone(),
            profile_bytes: to_bytes(&app.user_profile),
            sequence: self.sequence,
        };
        let entry = self.history.entry(app.name.clone()).or_default();
        if entry.len() == self.capacity {
            entry.remove(0);
        }
        entry.push(snap.clone());
        snap
    }

    /// Restores a snapshot into an application (coordinator + profile).
    ///
    /// # Errors
    ///
    /// Propagates profile decoding failures.
    pub fn restore(snap: &Snapshot, app: &mut Application) -> Result<(), WireError> {
        app.coordinator = snap.coordinator.clone();
        app.user_profile = mdagent_wire::from_bytes(&snap.profile_bytes)?;
        Ok(())
    }

    /// The latest retained snapshot of an app.
    pub fn latest(&self, app_name: &str) -> Option<&Snapshot> {
        self.history.get(app_name).and_then(|v| v.last())
    }

    /// Number of retained snapshots for an app.
    pub fn retained(&self, app_name: &str) -> usize {
        self.history.get(app_name).map_or(0, Vec::len)
    }
}

/// Consistency check used by the tests and the MA after restore: the
/// restored application must agree with the snapshot on state version and
/// content.
pub fn is_consistent(snap: &Snapshot, app: &Application) -> bool {
    app.name == snap.app_name
        && app.coordinator.version() == snap.coordinator.version()
        && app.coordinator.state_map() == snap.coordinator.state_map()
}

/// Reconstructs a component set from shipped bytes (what the MA does at
/// check-in).
///
/// # Errors
///
/// Propagates wire decoding failures.
pub fn decode_components(bytes: &[u8]) -> Result<ComponentSet, WireError> {
    mdagent_wire::from_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppId;
    use crate::profile::UserProfile;
    use mdagent_context::UserId;
    use mdagent_simnet::HostId;

    fn app() -> Application {
        let mut app = Application::new(AppId(0), "player", HostId(0));
        app.coordinator.set_state("track", "prelude.mp3");
        app.coordinator.set_state("position-ms", "92000");
        app.user_profile = UserProfile::new(UserId(1)).with_preference("volume", "8");
        app
    }

    #[test]
    fn capture_restore_identity() {
        let mut mgr = SnapshotManager::new(4);
        let source = app();
        let snap = mgr.capture(&source);
        assert!(is_consistent(&snap, &source));

        let mut fresh = Application::new(AppId(1), "player", HostId(1));
        SnapshotManager::restore(&snap, &mut fresh).unwrap();
        assert_eq!(fresh.coordinator.state("position-ms"), Some("92000"));
        assert_eq!(fresh.user_profile.preference("volume"), Some("8"));
        assert!(is_consistent(&snap, &fresh));
    }

    #[test]
    fn history_is_bounded_and_ordered() {
        let mut mgr = SnapshotManager::new(2);
        let mut a = app();
        for i in 0..5 {
            a.coordinator.set_state("i", i.to_string());
            mgr.capture(&a);
        }
        assert_eq!(mgr.retained("player"), 2);
        let latest = mgr.latest("player").unwrap();
        assert_eq!(latest.coordinator.state("i"), Some("4"));
        assert!(latest.sequence >= 5);
        assert_eq!(mgr.retained("ghost"), 0);
        assert!(mgr.latest("ghost").is_none());
    }

    #[test]
    fn consistency_detects_divergence() {
        let mut mgr = SnapshotManager::new(4);
        let mut a = app();
        let snap = mgr.capture(&a);
        a.coordinator.set_state("track", "changed.mp3");
        assert!(!is_consistent(&snap, &a));
    }

    #[test]
    fn snapshot_wire_roundtrip() {
        let mut mgr = SnapshotManager::new(4);
        let snap = mgr.capture(&app());
        let bytes = to_bytes(&snap);
        assert_eq!(bytes.len() as u64, snap.wire_len());
        let back: Snapshot = mdagent_wire::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn corrupt_profile_restore_errors() {
        let mut mgr = SnapshotManager::new(4);
        let mut snap = mgr.capture(&app());
        snap.profile_bytes = vec![0xFF, 0xFF, 0xFF];
        let mut fresh = Application::new(AppId(1), "player", HostId(1));
        assert!(SnapshotManager::restore(&snap, &mut fresh).is_err());
    }
}
