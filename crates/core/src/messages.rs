//! Wire payloads of the ACL conversations between middleware parts.

use mdagent_wire::bytes::BytesMut;
use mdagent_wire::{impl_wire_struct, Reader, Wire, WireError};

use crate::component::ComponentSet;
use crate::mobility::MigrationPlan;
use crate::snapshot::{Snapshot, SnapshotDelta};

/// Ontology slot values used by MDAgent conversations.
pub mod ontologies {
    /// Context event notification (kernel → AA).
    pub const CONTEXT: &str = "mdagent.context";
    /// Migration request (AA → MA), payload [`MigrationPlan`].
    ///
    /// [`MigrationPlan`]: crate::MigrationPlan
    pub const MIGRATE: &str = "mdagent.migrate";
    /// Clone-dispatch request (AA → MA), payload [`MigrationPlan`].
    ///
    /// [`MigrationPlan`]: crate::MigrationPlan
    pub const CLONE: &str = "mdagent.clone";
    /// Wrapped cargo hand-off (middleware → MA), payload [`Cargo`].
    ///
    /// [`Cargo`]: super::Cargo
    pub const CARGO: &str = "mdagent.cargo";
    /// State synchronization between replicas, payload [`SyncUpdate`].
    ///
    /// [`SyncUpdate`]: super::SyncUpdate
    pub const SYNC: &str = "mdagent.sync";
    /// Migration retry nudge (middleware → MA) after a transfer timed out,
    /// payload [`RetryNotice`].
    ///
    /// [`RetryNotice`]: super::RetryNotice
    pub const RETRY: &str = "mdagent.retry";
}

/// Flattened context event, as delivered to autonomous agents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ContextNotice {
    /// Topic string (see [`mdagent_context::topics`]).
    pub topic: String,
    /// User id (when applicable).
    pub user_raw: u32,
    /// Space id (when applicable).
    pub space_raw: u32,
    /// Command verb (user indications).
    pub command: String,
    /// Command arguments (user indications).
    pub args: Vec<String>,
    /// Milliseconds value (response-time events).
    pub millis: f64,
}

impl_wire_struct!(ContextNotice {
    topic,
    user_raw,
    space_raw,
    command,
    args,
    millis
});

impl ContextNotice {
    /// Builds a notice from a context event.
    pub fn from_event(event: &mdagent_context::ContextEvent) -> Self {
        use mdagent_context::ContextData as D;
        let mut notice = ContextNotice {
            topic: event.topic().to_owned(),
            ..Default::default()
        };
        match &event.data {
            D::Location { user, space } => {
                notice.user_raw = user.0;
                notice.space_raw = space.0;
            }
            D::UserIndication {
                user,
                command,
                args,
            } => {
                notice.user_raw = user.0;
                notice.command = command.clone();
                notice.args = args.clone();
            }
            D::ResponseTime { millis, .. } => {
                notice.millis = *millis;
            }
            D::Preference { user, key, value } => {
                notice.user_raw = user.0;
                notice.command = key.clone();
                notice.args = vec![value.clone()];
            }
            D::RawDistance { badge, meters, .. } => {
                notice.user_raw = badge.0;
                notice.millis = *meters;
            }
        }
        notice
    }
}

/// Compact trace context carried on the wire so a migration's
/// destination-side spans join the trace the source host started.
///
/// `trace_id` is the raw id of the migration's root span in the sending
/// collector; `parent_span` is the raw id of the in-transit
/// (`migration.migrate`) span the destination should parent its
/// check-in spans to. Both are plain raw span ids widened to `u64` so
/// the encoding stays a pair of varints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// Root span id of the sending side's trace.
    pub trace_id: u64,
    /// Span the receiving side should parent to.
    pub parent_span: u64,
}

impl_wire_struct!(TraceContext {
    trace_id,
    parent_span
});

/// The wrapped bundle a mobile agent carries: plan, snapshot and the
/// component payloads being shipped. Its wire size *is* the migration
/// payload the platform bills for.
#[derive(Debug, Clone, PartialEq)]
pub struct Cargo {
    /// The plan being executed.
    pub plan: MigrationPlan,
    /// Application snapshot (states).
    pub snapshot: Snapshot,
    /// Wrapped components.
    pub components: ComponentSet,
    /// Bytes of data left at the source for remote streaming.
    pub remote_bytes: u64,
    /// Components elided from the payload because the destination already
    /// holds their bytes, listed as `(name, content digest)`.
    pub elided: Vec<(String, u64)>,
    /// Snapshot state encoded as a delta against a base the destination
    /// holds; when set, [`Cargo::snapshot`] is a header-only stub.
    pub snapshot_delta: Option<SnapshotDelta>,
    /// Trace context stamped by the source when trace propagation is on.
    /// Encoded as a *trailing optional*: `None` appends nothing, so the
    /// byte stream of a defaults-OFF run is identical to the pre-context
    /// format (and old captures decode as `None`).
    pub trace_ctx: Option<TraceContext>,
}

// Hand-written (not `impl_wire_struct!`) because of the trailing-optional
// `trace_ctx`: the six base fields encode exactly as the macro would, and
// the context is present iff bytes remain after them — an `Option` tag
// byte would change the defaults-OFF encoding.
impl Wire for Cargo {
    fn encode(&self, buf: &mut BytesMut) {
        self.plan.encode(buf);
        self.snapshot.encode(buf);
        self.components.encode(buf);
        self.remote_bytes.encode(buf);
        self.elided.encode(buf);
        self.snapshot_delta.encode(buf);
        if let Some(ctx) = &self.trace_ctx {
            ctx.encode(buf);
        }
    }

    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Cargo {
            plan: Wire::decode(reader)?,
            snapshot: Wire::decode(reader)?,
            components: Wire::decode(reader)?,
            remote_bytes: Wire::decode(reader)?,
            elided: Wire::decode(reader)?,
            snapshot_delta: Wire::decode(reader)?,
            trace_ctx: if reader.is_exhausted() {
                None
            } else {
                Some(Wire::decode(reader)?)
            },
        })
    }

    fn encoded_len(&self) -> usize {
        self.plan.encoded_len()
            + self.snapshot.encoded_len()
            + self.components.encoded_len()
            + self.remote_bytes.encoded_len()
            + self.elided.encoded_len()
            + self.snapshot_delta.encoded_len()
            + self.trace_ctx.as_ref().map_or(0, Wire::encoded_len)
    }
}

impl Cargo {
    /// Exact wire size.
    pub fn wire_len(&self) -> u64 {
        self.encoded_len() as u64
    }
}

/// A replica state synchronization message.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncUpdate {
    /// Target application (raw id) on the receiving side.
    pub app_raw: u32,
    /// State key.
    pub key: String,
    /// State value.
    pub value: String,
    /// Source coordinator version.
    pub version: u64,
}

impl_wire_struct!(SyncUpdate {
    app_raw,
    key,
    value,
    version
});

/// A retry nudge from the migration watchdog: the MA should re-dispatch
/// the cargo it still holds (unless it already arrived).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryNotice {
    /// The attempt number this retry starts (1-based; the initial transfer
    /// is attempt 1).
    pub attempt: u32,
}

impl_wire_struct!(RetryNotice { attempt });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, ComponentKind};
    use crate::mobility::{BindingPolicy, DataStrategy, MobilityMode};
    use mdagent_context::{ContextData, ContextEvent, UserId};
    use mdagent_simnet::{SimTime, SpaceId};
    use mdagent_wire::{from_bytes, to_bytes};

    #[test]
    fn notice_from_location_event() {
        let e = ContextEvent::new(
            SimTime::ZERO,
            ContextData::Location {
                user: UserId(4),
                space: SpaceId(2),
            },
        );
        let n = ContextNotice::from_event(&e);
        assert_eq!(n.topic, "context.location");
        assert_eq!(n.user_raw, 4);
        assert_eq!(n.space_raw, 2);
        let back: ContextNotice = from_bytes(&to_bytes(&n)).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn notice_from_indication_event() {
        let e = ContextEvent::new(
            SimTime::ZERO,
            ContextData::UserIndication {
                user: UserId(1),
                command: "dispatch-slides".into(),
                args: vec!["2".into(), "3".into()],
            },
        );
        let n = ContextNotice::from_event(&e);
        assert_eq!(n.command, "dispatch-slides");
        assert_eq!(n.args, ["2", "3"]);
    }

    #[test]
    fn cargo_wire_size_tracks_components() {
        let plan = MigrationPlan {
            app_raw: 0,
            mode: MobilityMode::FollowMe,
            policy: BindingPolicy::Adaptive,
            dest_host_raw: 1,
            ship_components: vec!["codec".into()],
            data_strategy: DataStrategy::RemoteStream,
            inter_space: false,
        };
        let mut components = ComponentSet::new();
        components.insert(Component::synthetic("codec", ComponentKind::Logic, 180_000));
        let cargo = Cargo {
            plan,
            snapshot: Snapshot {
                app_name: "player".into(),
                coordinator: Default::default(),
                profile_bytes: Vec::new(),
                sequence: 1,
            },
            components,
            remote_bytes: 2_000_000,
            elided: Vec::new(),
            snapshot_delta: None,
            trace_ctx: None,
        };
        let bytes = to_bytes(&cargo);
        assert_eq!(bytes.len() as u64, cargo.wire_len());
        assert!(cargo.wire_len() > 180_000, "payload dominates");
        assert!(cargo.wire_len() < 181_000, "overhead is small");
        let back: Cargo = from_bytes(&bytes).unwrap();
        assert_eq!(back, cargo);
    }

    #[test]
    fn cargo_trace_ctx_is_trailing_optional() {
        let base = Cargo {
            plan: MigrationPlan {
                app_raw: 3,
                mode: MobilityMode::FollowMe,
                policy: BindingPolicy::Adaptive,
                dest_host_raw: 1,
                ship_components: Vec::new(),
                data_strategy: DataStrategy::RemoteStream,
                inter_space: true,
            },
            snapshot: Snapshot {
                app_name: "player".into(),
                coordinator: Default::default(),
                profile_bytes: Vec::new(),
                sequence: 9,
            },
            components: ComponentSet::new(),
            remote_bytes: 42,
            elided: vec![("codec".into(), 0xDEAD)],
            snapshot_delta: None,
            trace_ctx: None,
        };
        let plain = to_bytes(&base);
        // None appends nothing: the ctx field is invisible on the wire,
        // so defaults-OFF runs keep the pre-context byte stream.
        let ctx = TraceContext {
            trace_id: 7,
            parent_span: 300,
        };
        let stamped = Cargo {
            trace_ctx: Some(ctx),
            ..base.clone()
        };
        let stamped_bytes = to_bytes(&stamped);
        assert_eq!(stamped_bytes.len(), plain.len() + ctx.encoded_len());
        assert_eq!(&stamped_bytes[..plain.len()], &plain[..]);
        // Old captures (no trailing bytes) decode with ctx = None.
        let back_plain: Cargo = from_bytes(&plain).unwrap();
        assert_eq!(back_plain.trace_ctx, None);
        // Stamped cargo roundtrips, ctx intact.
        let back: Cargo = from_bytes(&stamped_bytes).unwrap();
        assert_eq!(back, stamped);
        assert_eq!(back.trace_ctx, Some(ctx));
    }

    #[test]
    fn sync_update_roundtrip() {
        let s = SyncUpdate {
            app_raw: 7,
            key: "slide".into(),
            value: "13".into(),
            version: 42,
        };
        let back: SyncUpdate = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(back, s);
    }
}
