//! Wire payloads of the ACL conversations between middleware parts.

use mdagent_wire::{impl_wire_struct, Wire};

use crate::component::ComponentSet;
use crate::mobility::MigrationPlan;
use crate::snapshot::{Snapshot, SnapshotDelta};

/// Ontology slot values used by MDAgent conversations.
pub mod ontologies {
    /// Context event notification (kernel → AA).
    pub const CONTEXT: &str = "mdagent.context";
    /// Migration request (AA → MA), payload [`MigrationPlan`].
    ///
    /// [`MigrationPlan`]: crate::MigrationPlan
    pub const MIGRATE: &str = "mdagent.migrate";
    /// Clone-dispatch request (AA → MA), payload [`MigrationPlan`].
    ///
    /// [`MigrationPlan`]: crate::MigrationPlan
    pub const CLONE: &str = "mdagent.clone";
    /// Wrapped cargo hand-off (middleware → MA), payload [`Cargo`].
    ///
    /// [`Cargo`]: super::Cargo
    pub const CARGO: &str = "mdagent.cargo";
    /// State synchronization between replicas, payload [`SyncUpdate`].
    ///
    /// [`SyncUpdate`]: super::SyncUpdate
    pub const SYNC: &str = "mdagent.sync";
    /// Migration retry nudge (middleware → MA) after a transfer timed out,
    /// payload [`RetryNotice`].
    ///
    /// [`RetryNotice`]: super::RetryNotice
    pub const RETRY: &str = "mdagent.retry";
}

/// Flattened context event, as delivered to autonomous agents.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ContextNotice {
    /// Topic string (see [`mdagent_context::topics`]).
    pub topic: String,
    /// User id (when applicable).
    pub user_raw: u32,
    /// Space id (when applicable).
    pub space_raw: u32,
    /// Command verb (user indications).
    pub command: String,
    /// Command arguments (user indications).
    pub args: Vec<String>,
    /// Milliseconds value (response-time events).
    pub millis: f64,
}

impl_wire_struct!(ContextNotice {
    topic,
    user_raw,
    space_raw,
    command,
    args,
    millis
});

impl ContextNotice {
    /// Builds a notice from a context event.
    pub fn from_event(event: &mdagent_context::ContextEvent) -> Self {
        use mdagent_context::ContextData as D;
        let mut notice = ContextNotice {
            topic: event.topic().to_owned(),
            ..Default::default()
        };
        match &event.data {
            D::Location { user, space } => {
                notice.user_raw = user.0;
                notice.space_raw = space.0;
            }
            D::UserIndication {
                user,
                command,
                args,
            } => {
                notice.user_raw = user.0;
                notice.command = command.clone();
                notice.args = args.clone();
            }
            D::ResponseTime { millis, .. } => {
                notice.millis = *millis;
            }
            D::Preference { user, key, value } => {
                notice.user_raw = user.0;
                notice.command = key.clone();
                notice.args = vec![value.clone()];
            }
            D::RawDistance { badge, meters, .. } => {
                notice.user_raw = badge.0;
                notice.millis = *meters;
            }
        }
        notice
    }
}

/// The wrapped bundle a mobile agent carries: plan, snapshot and the
/// component payloads being shipped. Its wire size *is* the migration
/// payload the platform bills for.
#[derive(Debug, Clone, PartialEq)]
pub struct Cargo {
    /// The plan being executed.
    pub plan: MigrationPlan,
    /// Application snapshot (states).
    pub snapshot: Snapshot,
    /// Wrapped components.
    pub components: ComponentSet,
    /// Bytes of data left at the source for remote streaming.
    pub remote_bytes: u64,
    /// Components elided from the payload because the destination already
    /// holds their bytes, listed as `(name, content digest)`.
    pub elided: Vec<(String, u64)>,
    /// Snapshot state encoded as a delta against a base the destination
    /// holds; when set, [`Cargo::snapshot`] is a header-only stub.
    pub snapshot_delta: Option<SnapshotDelta>,
}

impl_wire_struct!(Cargo {
    plan,
    snapshot,
    components,
    remote_bytes,
    elided,
    snapshot_delta
});

impl Cargo {
    /// Exact wire size.
    pub fn wire_len(&self) -> u64 {
        self.encoded_len() as u64
    }
}

/// A replica state synchronization message.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncUpdate {
    /// Target application (raw id) on the receiving side.
    pub app_raw: u32,
    /// State key.
    pub key: String,
    /// State value.
    pub value: String,
    /// Source coordinator version.
    pub version: u64,
}

impl_wire_struct!(SyncUpdate {
    app_raw,
    key,
    value,
    version
});

/// A retry nudge from the migration watchdog: the MA should re-dispatch
/// the cargo it still holds (unless it already arrived).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryNotice {
    /// The attempt number this retry starts (1-based; the initial transfer
    /// is attempt 1).
    pub attempt: u32,
}

impl_wire_struct!(RetryNotice { attempt });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, ComponentKind};
    use crate::mobility::{BindingPolicy, DataStrategy, MobilityMode};
    use mdagent_context::{ContextData, ContextEvent, UserId};
    use mdagent_simnet::{SimTime, SpaceId};
    use mdagent_wire::{from_bytes, to_bytes};

    #[test]
    fn notice_from_location_event() {
        let e = ContextEvent::new(
            SimTime::ZERO,
            ContextData::Location {
                user: UserId(4),
                space: SpaceId(2),
            },
        );
        let n = ContextNotice::from_event(&e);
        assert_eq!(n.topic, "context.location");
        assert_eq!(n.user_raw, 4);
        assert_eq!(n.space_raw, 2);
        let back: ContextNotice = from_bytes(&to_bytes(&n)).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn notice_from_indication_event() {
        let e = ContextEvent::new(
            SimTime::ZERO,
            ContextData::UserIndication {
                user: UserId(1),
                command: "dispatch-slides".into(),
                args: vec!["2".into(), "3".into()],
            },
        );
        let n = ContextNotice::from_event(&e);
        assert_eq!(n.command, "dispatch-slides");
        assert_eq!(n.args, ["2", "3"]);
    }

    #[test]
    fn cargo_wire_size_tracks_components() {
        let plan = MigrationPlan {
            app_raw: 0,
            mode: MobilityMode::FollowMe,
            policy: BindingPolicy::Adaptive,
            dest_host_raw: 1,
            ship_components: vec!["codec".into()],
            data_strategy: DataStrategy::RemoteStream,
            inter_space: false,
        };
        let mut components = ComponentSet::new();
        components.insert(Component::synthetic("codec", ComponentKind::Logic, 180_000));
        let cargo = Cargo {
            plan,
            snapshot: Snapshot {
                app_name: "player".into(),
                coordinator: Default::default(),
                profile_bytes: Vec::new(),
                sequence: 1,
            },
            components,
            remote_bytes: 2_000_000,
            elided: Vec::new(),
            snapshot_delta: None,
        };
        let bytes = to_bytes(&cargo);
        assert_eq!(bytes.len() as u64, cargo.wire_len());
        assert!(cargo.wire_len() > 180_000, "payload dominates");
        assert!(cargo.wire_len() < 181_000, "overhead is small");
        let back: Cargo = from_bytes(&bytes).unwrap();
        assert_eq!(back, cargo);
    }

    #[test]
    fn sync_update_roundtrip() {
        let s = SyncUpdate {
            app_raw: 7,
            key: "slide".into(),
            value: "13".into(),
            version: 42,
        };
        let back: SyncUpdate = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(back, s);
    }
}
