//! Mobility taxonomy and migration plans (paper Fig. 1, §3.2).

use std::fmt;

use mdagent_simnet::{HostId, SpaceId, Topology};
use mdagent_wire::{impl_wire_enum, impl_wire_struct, Wire};

use crate::app::AppId;

/// Mobility mode: the paper's two kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MobilityMode {
    /// Cut-paste: the application leaves the source and follows the user.
    FollowMe,
    /// Copy-paste: a clone is dispatched; source and clone synchronize.
    CloneDispatch,
}

impl_wire_enum!(MobilityMode {
    FollowMe = 0,
    CloneDispatch = 1,
});

impl MobilityMode {
    /// Short static tag, suitable for zero-allocation telemetry attributes.
    pub fn tag(self) -> &'static str {
        match self {
            MobilityMode::FollowMe => "follow-me",
            MobilityMode::CloneDispatch => "clone-dispatch",
        }
    }
}

impl fmt::Display for MobilityMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityMode::FollowMe => f.write_str("follow-me (cut-paste)"),
            MobilityMode::CloneDispatch => f.write_str("clone-dispatch (copy-paste)"),
        }
    }
}

/// Mobility domain: whether the migration crosses smart-space boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MobilityDomain {
    /// Within one smart space.
    IntraSpace,
    /// Across spaces; gateway support required (Fig. 1).
    InterSpace,
}

impl_wire_enum!(MobilityDomain {
    IntraSpace = 0,
    InterSpace = 1,
});

impl MobilityDomain {
    /// Classifies a migration between two hosts.
    ///
    /// # Errors
    ///
    /// Propagates unknown-host errors from the topology.
    pub fn classify(
        topology: &Topology,
        from: HostId,
        to: HostId,
    ) -> Result<MobilityDomain, mdagent_simnet::TopologyError> {
        Ok(if topology.requires_gateway(from, to)? {
            MobilityDomain::InterSpace
        } else {
            MobilityDomain::IntraSpace
        })
    }
}

impl fmt::Display for MobilityDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityDomain::IntraSpace => f.write_str("intra-space"),
            MobilityDomain::InterSpace => f.write_str("inter-space"),
        }
    }
}

/// Component binding policy: the paper's headline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingPolicy {
    /// Adaptive binding: ship only what the destination lacks; stream
    /// data remotely when possible (the paper's contribution).
    Adaptive,
    /// Static binding: the original framework \[7\] — ship data, logic and
    /// UI wholesale on every migration.
    Static,
}

impl_wire_enum!(BindingPolicy {
    Adaptive = 0,
    Static = 1,
});

impl fmt::Display for BindingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindingPolicy::Adaptive => f.write_str("adaptive"),
            BindingPolicy::Static => f.write_str("static"),
        }
    }
}

/// How the application's data components are handled at the destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataStrategy {
    /// The destination already has the data.
    AlreadyPresent,
    /// The data travels inside the mobile agent.
    Carry,
    /// The data stays at the source and is streamed by URL.
    RemoteStream,
}

impl_wire_enum!(DataStrategy {
    AlreadyPresent = 0,
    Carry = 1,
    RemoteStream = 2,
});

/// A fully resolved migration plan, produced by the autonomous agent's
/// reasoning and executed by the mobile agent.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// The application to move or clone.
    pub app_raw: u32,
    /// Follow-me or clone-dispatch.
    pub mode: MobilityMode,
    /// Binding policy in force.
    pub policy: BindingPolicy,
    /// Destination host (raw id).
    pub dest_host_raw: u32,
    /// Names of components the MA must wrap and carry.
    pub ship_components: Vec<String>,
    /// What happens to data components.
    pub data_strategy: DataStrategy,
    /// Whether the route crosses a space boundary.
    pub inter_space: bool,
}

impl_wire_struct!(MigrationPlan {
    app_raw,
    mode,
    policy,
    dest_host_raw,
    ship_components,
    data_strategy,
    inter_space
});

impl MigrationPlan {
    /// The application this plan concerns.
    pub fn app(&self) -> AppId {
        AppId(self.app_raw)
    }

    /// The destination host.
    pub fn dest_host(&self) -> HostId {
        HostId(self.dest_host_raw)
    }

    /// The mobility domain as an enum.
    pub fn domain(&self) -> MobilityDomain {
        if self.inter_space {
            MobilityDomain::InterSpace
        } else {
            MobilityDomain::IntraSpace
        }
    }

    /// Exact wire size (the plan itself rides in ACL messages).
    pub fn wire_len(&self) -> usize {
        self.encoded_len()
    }
}

/// Destination choice for a space: the "primary" host that receives
/// migrating applications (the machine driving the room's display).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpacePrimary {
    /// The space.
    pub space: SpaceId,
    /// Its primary host.
    pub host: HostId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdagent_simnet::{CpuFactor, SimDuration};

    #[test]
    fn domain_classification() {
        let mut topo = Topology::new();
        let s0 = topo.add_space("a");
        let s1 = topo.add_space("b");
        let h0 = topo.add_host("h0", s0, CpuFactor::REFERENCE);
        let h1 = topo.add_host("h1", s0, CpuFactor::REFERENCE);
        let h2 = topo.add_host("h2", s1, CpuFactor::REFERENCE);
        topo.add_lan_link(h0, h1, SimDuration::ZERO, 1, 1.0)
            .unwrap();
        topo.add_gateway_link(h1, h2, SimDuration::ZERO, 1, 1.0)
            .unwrap();
        assert_eq!(
            MobilityDomain::classify(&topo, h0, h1).unwrap(),
            MobilityDomain::IntraSpace
        );
        assert_eq!(
            MobilityDomain::classify(&topo, h0, h2).unwrap(),
            MobilityDomain::InterSpace
        );
    }

    #[test]
    fn plan_wire_roundtrip_all_quadrants() {
        // Exercise all four quadrants of the paper's Fig. 1 matrix.
        for mode in [MobilityMode::FollowMe, MobilityMode::CloneDispatch] {
            for inter_space in [false, true] {
                let plan = MigrationPlan {
                    app_raw: 3,
                    mode,
                    policy: BindingPolicy::Adaptive,
                    dest_host_raw: 2,
                    ship_components: vec!["codec".into(), "states".into()],
                    data_strategy: DataStrategy::RemoteStream,
                    inter_space,
                };
                let back: MigrationPlan =
                    mdagent_wire::from_bytes(&mdagent_wire::to_bytes(&plan)).unwrap();
                assert_eq!(back, plan);
                assert_eq!(back.app(), AppId(3));
                assert_eq!(back.dest_host(), HostId(2));
                assert_eq!(
                    back.domain(),
                    if inter_space {
                        MobilityDomain::InterSpace
                    } else {
                        MobilityDomain::IntraSpace
                    }
                );
            }
        }
    }

    #[test]
    fn displays() {
        assert_eq!(MobilityMode::FollowMe.to_string(), "follow-me (cut-paste)");
        assert_eq!(
            MobilityMode::CloneDispatch.to_string(),
            "clone-dispatch (copy-paste)"
        );
        assert_eq!(MobilityDomain::InterSpace.to_string(), "inter-space");
        assert_eq!(BindingPolicy::Adaptive.to_string(), "adaptive");
        assert_eq!(BindingPolicy::Static.to_string(), "static");
    }
}
