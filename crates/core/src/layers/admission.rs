//! [`AdmissionControlLayer`]: a per-space in-flight migration cap.
//!
//! The worked example of a policy layer (DESIGN.md §15): it implements a
//! single hook — [`MigrationLayer::wrap_transfer`] — and needs no state
//! of its own, reading the world's in-flight table instead. When the
//! destination space already has `cap` other migrations inbound, the
//! departure is refused; the driver rolls the application back to
//! Running at its source and the layers that had already entered their
//! `wrap_transfer` unwind through `on_abort` exactly once each.

use mdagent_agent::AgentId;
use mdagent_simnet::Simulator;

use crate::messages::Cargo;
use crate::middleware::Middleware;

use super::{MigrationLayer, TransferFlow};

/// Caps concurrent inbound migrations per destination space.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionControlLayer {
    cap: usize,
}

impl AdmissionControlLayer {
    /// Admits at most `cap` concurrent inbound migrations per space.
    pub fn new(cap: usize) -> AdmissionControlLayer {
        AdmissionControlLayer { cap }
    }
}

impl MigrationLayer for AdmissionControlLayer {
    fn name(&self) -> &'static str {
        "admission-control"
    }

    fn wrap_transfer(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        cargo: &Cargo,
    ) -> TransferFlow {
        let _ = sim;
        let Ok(dest_space) = world.space_of(cargo.plan.dest_host()) else {
            return TransferFlow::Proceed;
        };
        let inbound = world
            .in_flight
            .iter()
            .filter(|(key, flight)| {
                *key != ma && world.space_of(flight.dest_host).ok() == Some(dest_space)
            })
            .count();
        if inbound >= self.cap {
            world.env.metrics.incr_static("admission.rejected");
            return TransferFlow::Reject("admission cap");
        }
        TransferFlow::Proceed
    }
}
