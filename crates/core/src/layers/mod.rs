//! The onion layer chain around the migration lifecycle.
//!
//! Every migration runs the same fixed skeleton — suspend → wrap →
//! transfer → check-in → resume — but the cross-cutting concerns that
//! accreted around it over time (telemetry spans, fault watchdogs and
//! rollback, content elision and snapshot deltas, exactly-once check-in,
//! SLO feeds) are *policies*, not skeleton. This module restructures them
//! as a [`LayerStack`] of [`MigrationLayer`]s composed onion-style:
//! before/entry hooks fire first-in-first-called, after/exit hooks fire in
//! reverse order, and the two `wrap_*` hooks may short-circuit the wire
//! operation they guard (the unwind still runs the entered outer layers'
//! [`MigrationLayer::on_abort`] exactly once).
//!
//! The default stack — [`LayerStack::standard`] — reproduces the
//! pre-refactor inline behavior bit-for-bit:
//!
//! | Layer | Concern |
//! |-------|---------|
//! | [`TelemetryLayer`] | migration spans + wire trace-context propagation |
//! | [`FaultRetryLayer`] | watchdogs, bounded backoff, rollback |
//! | [`DataPathLayer`] | content-cache elision + snapshot deltas |
//! | [`ExactlyOnceLayer`] | digest-guarded duplicate/orphan check-in |
//! | [`SloLayer`] | burn-rate SLO feeds |
//!
//! Policy layers drop in without touching the skeleton:
//! [`AdmissionControlLayer`] caps in-flight migrations per destination
//! space purely through [`MigrationLayer::wrap_transfer`]. See DESIGN.md
//! §15 for the hook-by-hook catalog and a "write your own layer" guide.
//!
//! Hooks run with the stack checked out of the world, so a hook must not
//! synchronously re-enter the migration lifecycle (scheduling future
//! events — as the fault layer's watchdogs do — is fine).

mod admission;
mod datapath;
mod exactly_once;
mod fault_retry;
mod slo;
mod telemetry;

pub use admission::AdmissionControlLayer;
pub(crate) use datapath::ContentState;
pub use datapath::DataPathLayer;
pub(crate) use exactly_once::CheckinLedger;
pub use exactly_once::ExactlyOnceLayer;
pub use fault_retry::FaultRetryLayer;
pub use slo::SloLayer;
pub use telemetry::TelemetryLayer;

use mdagent_agent::AgentId;
use mdagent_simnet::{CpuFactor, HostId, SimDuration, SimTime, Simulator, SpanId};

use crate::app::AppId;
use crate::component::{Component, ComponentSet};
use crate::messages::Cargo;
use crate::middleware::Middleware;
use crate::mobility::MobilityMode;
use crate::snapshot::{Snapshot, SnapshotDelta};

/// Verdict of a [`MigrationLayer::wrap_transfer`] hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFlow {
    /// Let the transfer proceed to the next layer (and finally the wire).
    Proceed,
    /// Refuse the departure. The stack unwinds the already-entered outer
    /// layers' [`MigrationLayer::on_abort`] hooks and the driver aborts
    /// the flight (for follow-me, the application resumes at the source).
    Reject(&'static str),
}

/// Verdict of a [`MigrationLayer::wrap_checkin`] hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckinFlow {
    /// Let the check-in proceed to the next layer (and finally deploy).
    Proceed,
    /// Swallow the check-in (duplicate or orphan arrival); the layer that
    /// dropped it has already done any acknowledgement bookkeeping.
    Drop,
}

/// Why a flight is being abandoned, as reported to
/// [`MigrationLayer::on_abort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// A `wrap_transfer` layer (or the platform itself) refused the
    /// departure before any bytes moved.
    DepartureRejected,
    /// The destination rejected the arrived cargo at deploy time.
    ArrivalRejected,
}

/// Bookkeeping for one migration (or clone) currently in flight between
/// suspension and resume. Built by the driver from a [`FlightSetup`];
/// carried in the world and handed to the arrival-side hooks.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// The migrated (or cloned) application.
    pub app: AppId,
    /// Simulated suspension cost already paid at the source.
    pub suspend: SimDuration,
    /// Instant the cargo left the source (refined at hand-over).
    pub departed_at: SimTime,
    /// Bytes shipped inside the agent.
    pub shipped_bytes: u64,
    /// Bytes left behind for remote streaming.
    pub remote_bytes: u64,
    /// Root telemetry span for the whole migration; ends at resume.
    pub span: SpanId,
    /// Open `migration.migrate` child span; ends on arrival.
    pub migrate_span: SpanId,
    /// Transfer attempts so far (1-based; the initial send is attempt 1).
    pub attempts: u32,
    /// Clone-dispatch flight: never retried, aborted on loss.
    pub cloned: bool,
    /// Source host — rollback target.
    pub src_host: HostId,
    /// Destination host.
    pub dest_host: HostId,
    /// Instant the migration was requested (watchdog latency base).
    pub started_at: SimTime,
    /// Per-attempt transfer window the watchdog waits before declaring a
    /// timeout. Zero when faults are disabled (no watchdog armed).
    pub timeout: SimDuration,
}

impl InFlight {
    /// Builds the flight record for a departure the layers just prepared.
    pub fn from_setup(setup: &FlightSetup, now: SimTime) -> InFlight {
        InFlight {
            app: setup.app,
            suspend: setup.suspend_cost,
            departed_at: now, // refined when cargo is handed over
            shipped_bytes: setup.wrapped_bytes,
            remote_bytes: setup.remote_bytes,
            span: setup.span,
            migrate_span: SpanId::DISABLED,
            attempts: 1,
            cloned: setup.mode != MobilityMode::FollowMe,
            src_host: setup.src_host,
            dest_host: setup.dest_host,
            started_at: now,
            timeout: setup.timeout,
        }
    }
}

/// The cargo under assembly during the wrap phase, before it is sealed.
/// Layers may rewrite what ships (the data-path layer swaps components
/// for digests and the full snapshot for a delta).
#[derive(Debug)]
pub struct CargoDraft {
    /// The application being wrapped.
    pub app: AppId,
    /// Follow-me or clone-dispatch.
    pub mode: MobilityMode,
    /// Source host.
    pub src_host: HostId,
    /// Destination host.
    pub dest_host: HostId,
    /// The snapshot to ship (a layer may replace it with a header stub).
    pub snapshot: Snapshot,
    /// The components to ship (a layer may elide some).
    pub components: ComponentSet,
    /// Bytes left behind for remote streaming.
    pub remote_bytes: u64,
    /// Components elided as `(name, digest)` pairs.
    pub elided: Vec<(String, u64)>,
    /// Delta shipped instead of the full snapshot, when profitable.
    pub snapshot_delta: Option<SnapshotDelta>,
    /// Bytes the elision saved.
    pub bytes_saved_cache: u64,
    /// Bytes the delta saved.
    pub bytes_saved_delta: u64,
}

/// Facts about a departure, filled in by the layers before the flight
/// record is created: the telemetry layer contributes the root span, the
/// fault layer the per-attempt timeout window.
#[derive(Debug)]
pub struct FlightSetup {
    /// The application departing.
    pub app: AppId,
    /// Follow-me or clone-dispatch.
    pub mode: MobilityMode,
    /// Source host.
    pub src_host: HostId,
    /// Destination host.
    pub dest_host: HostId,
    /// Sealed cargo wire length.
    pub wrapped_bytes: u64,
    /// Bytes left behind for remote streaming.
    pub remote_bytes: u64,
    /// Simulated suspension cost.
    pub suspend_cost: SimDuration,
    /// Bytes saved by content elision (telemetry attribute).
    pub bytes_saved_cache: u64,
    /// Bytes saved by the snapshot delta (telemetry attribute).
    pub bytes_saved_delta: u64,
    /// Migration root span (disabled unless a telemetry layer opens one).
    pub span: SpanId,
    /// Per-attempt watchdog window (zero unless a fault layer computes
    /// one).
    pub timeout: SimDuration,
}

/// Arrival-side scratch state threaded through the check-in hooks.
#[derive(Debug)]
pub struct Arrival {
    /// Digest of the arrived cargo (the exactly-once identity).
    pub digest: u64,
    /// Snapshot resolved by a data-path layer (delta applied / full
    /// resend); the driver falls back to the cargo's own snapshot.
    pub snapshot: Option<Snapshot>,
    /// Elided components a data-path layer materialized from the store.
    pub components: Vec<Component>,
    /// Unscaled rebind cost the driver computed.
    pub rebind_cost: SimDuration,
    /// Unscaled adaptation cost the driver computed.
    pub adapt_cost: SimDuration,
    /// Scaled total resume cost.
    pub resume_cost: SimDuration,
    /// Number of bindings rebound (telemetry attribute).
    pub rebind_bindings: usize,
    /// Number of adaptation actions (telemetry attribute).
    pub adapt_actions: usize,
    /// Destination CPU factor (for phase-window scaling).
    pub cpu: CpuFactor,
    /// Replica installed by a clone arrival, if any.
    pub replica: Option<AppId>,
}

impl Arrival {
    /// Fresh arrival state for a cargo with the given digest.
    pub fn new(digest: u64) -> Arrival {
        Arrival {
            digest,
            snapshot: None,
            components: Vec::new(),
            rebind_cost: SimDuration::ZERO,
            adapt_cost: SimDuration::ZERO,
            resume_cost: SimDuration::ZERO,
            rebind_bindings: 0,
            adapt_actions: 0,
            cpu: CpuFactor::REFERENCE,
            replica: None,
        }
    }
}

/// A completed (or rolled-forward) resume, as reported to the resume
/// hooks.
#[derive(Debug, Clone, Copy)]
pub struct ResumeOutcome {
    /// The application that resumed.
    pub app: AppId,
    /// The migration root span (disabled when no telemetry layer ran).
    pub root: SpanId,
    /// Request-to-resume latency (suspend + migrate + resume).
    pub latency: SimDuration,
}

/// One cross-cutting concern wrapped around the migration lifecycle.
///
/// Every hook defaults to a pass-through, so a layer implements only the
/// phases it cares about. Hooks receive the world with the stack checked
/// out: they may mutate state and schedule future events, but must not
/// synchronously re-enter the migration lifecycle.
///
/// Entry hooks (`before_*`, `wrap_*` until a short-circuit) run in stack
/// order; exit hooks (`after_*`, `on_abort` during an unwind) run in
/// reverse stack order.
pub trait MigrationLayer: std::fmt::Debug {
    /// Short stable name (diagnostics, DESIGN.md catalog).
    fn name(&self) -> &'static str;

    /// Wrap phase: the cargo is assembled but not yet sealed.
    fn before_wrap(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        draft: &mut CargoDraft,
    ) {
        let _ = (world, sim, draft);
    }

    /// The cargo is sealed and costed; the flight record is about to be
    /// created from `setup`.
    fn before_depart(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        setup: &mut FlightSetup,
    ) {
        let _ = (world, sim, setup);
    }

    /// The flight record exists and the suspension is scheduled.
    fn after_suspend(&self, world: &mut Middleware, sim: &mut Simulator<Middleware>, ma: &AgentId) {
        let _ = (world, sim, ma);
    }

    /// The suspension cost has elapsed; the cargo is about to be handed
    /// to the mobile agent (last chance to stamp the wire).
    fn before_transfer(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        cargo: &mut Cargo,
    ) {
        let _ = (world, sim, ma, cargo);
    }

    /// Around the wire departure: may refuse it. On a rejection the
    /// already-entered outer layers unwind through
    /// [`MigrationLayer::on_abort`] exactly once each, in reverse order.
    fn wrap_transfer(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        cargo: &Cargo,
    ) -> TransferFlow {
        let _ = (world, sim, ma, cargo);
        TransferFlow::Proceed
    }

    /// Around the destination check-in: may swallow a duplicate or
    /// orphan arrival.
    fn wrap_checkin(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        cargo: &Cargo,
        arrival: &mut Arrival,
    ) -> CheckinFlow {
        let _ = (world, sim, ma, cargo, arrival);
        CheckinFlow::Proceed
    }

    /// The flight is accepted at the destination; runs before the
    /// application (or replica) is mutated. `flight` is `None` for an
    /// orphan clone arrival that installs anyway.
    fn before_checkin(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        cargo: &Cargo,
        flight: Option<&InFlight>,
        arrival: &mut Arrival,
    ) {
        let _ = (world, sim, cargo, flight, arrival);
    }

    /// The application (or replica) is installed and costed; runs in
    /// reverse order before the resume is scheduled.
    fn after_checkin(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        cargo: &Cargo,
        flight: Option<&InFlight>,
        arrival: &Arrival,
    ) {
        let _ = (world, sim, cargo, flight, arrival);
    }

    /// The resume cost has elapsed; runs (in reverse order) before the
    /// driver emits its `Resumed`/`ReplicaRunning` trace event.
    fn before_resume(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        outcome: &ResumeOutcome,
    ) {
        let _ = (world, sim, outcome);
    }

    /// The resume is fully recorded; runs in reverse order.
    fn after_resume(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        outcome: &ResumeOutcome,
    ) {
        let _ = (world, sim, outcome);
    }

    /// The flight is being abandoned (departure refused or arrival
    /// rejected). Cleanup of the flight record itself is owned by the
    /// driver/fault machinery; layers release their own state here.
    /// `flight` is the record being abandoned (already out of the world's
    /// in-flight table on the arrival side).
    fn on_abort(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        flight: Option<&InFlight>,
        reason: AbortReason,
    ) {
        let _ = (world, sim, ma, flight, reason);
    }
}

/// An ordered chain of [`MigrationLayer`]s. The first layer is the
/// outermost of the onion: first called on the way in, last on the way
/// out.
#[derive(Debug, Default)]
pub struct LayerStack {
    layers: Vec<Box<dyn MigrationLayer>>,
}

impl LayerStack {
    /// A stack over the given layers, outermost first. An empty vector
    /// yields the bare lifecycle skeleton with no cross-cutting concerns
    /// at all (no spans, no watchdogs, no elision, no duplicate guard,
    /// no SLO feeds).
    pub fn new(layers: Vec<Box<dyn MigrationLayer>>) -> LayerStack {
        LayerStack { layers }
    }

    /// The default five-layer stack, equivalent to the pre-refactor
    /// inline code paths (and byte-identical in every default
    /// configuration).
    pub fn standard() -> Vec<Box<dyn MigrationLayer>> {
        vec![
            Box::new(TelemetryLayer),
            Box::new(FaultRetryLayer),
            Box::new(DataPathLayer),
            Box::new(ExactlyOnceLayer),
            Box::new(SloLayer),
        ]
    }

    /// Appends a layer at the innermost position.
    pub fn push(&mut self, layer: Box<dyn MigrationLayer>) {
        self.layers.push(layer);
    }

    /// The layers, outermost first.
    pub fn layers(&self) -> &[Box<dyn MigrationLayer>] {
        &self.layers
    }
}

/// Checks the stack out of the world, runs `f` over it, and puts it
/// back. Hooks therefore see an empty stack if they (incorrectly)
/// re-enter the lifecycle synchronously.
fn with_stack<R>(world: &mut Middleware, f: impl FnOnce(&mut Middleware, &LayerStack) -> R) -> R {
    let stack = std::mem::take(&mut world.layers);
    let out = f(world, &stack);
    world.layers = stack;
    out
}

pub(crate) fn stack_before_wrap(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    draft: &mut CargoDraft,
) {
    with_stack(world, |world, stack| {
        for layer in stack.layers() {
            layer.before_wrap(world, sim, draft);
        }
    });
}

pub(crate) fn stack_before_depart(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    setup: &mut FlightSetup,
) {
    with_stack(world, |world, stack| {
        for layer in stack.layers() {
            layer.before_depart(world, sim, setup);
        }
    });
}

pub(crate) fn stack_after_suspend(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    ma: &AgentId,
) {
    with_stack(world, |world, stack| {
        for layer in stack.layers() {
            layer.after_suspend(world, sim, ma);
        }
    });
}

pub(crate) fn stack_before_transfer(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    ma: &AgentId,
    cargo: &mut Cargo,
) {
    with_stack(world, |world, stack| {
        for layer in stack.layers() {
            layer.before_transfer(world, sim, ma, cargo);
        }
    });
}

/// Runs the `wrap_transfer` chain. On the first rejection the entered
/// outer layers unwind through `on_abort` (reverse order, exactly once
/// each) and the rejection is returned.
pub(crate) fn stack_wrap_transfer(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    ma: &AgentId,
    cargo: &Cargo,
) -> TransferFlow {
    with_stack(world, |world, stack| {
        for (depth, layer) in stack.layers().iter().enumerate() {
            if let TransferFlow::Reject(why) = layer.wrap_transfer(world, sim, ma, cargo) {
                let flight = world.in_flight.get(ma).cloned();
                for outer in stack.layers()[..depth].iter().rev() {
                    outer.on_abort(
                        world,
                        sim,
                        ma,
                        flight.as_ref(),
                        AbortReason::DepartureRejected,
                    );
                }
                return TransferFlow::Reject(why);
            }
        }
        TransferFlow::Proceed
    })
}

/// Runs the `wrap_checkin` chain; the first `Drop` wins.
pub(crate) fn stack_wrap_checkin(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    ma: &AgentId,
    cargo: &Cargo,
    arrival: &mut Arrival,
) -> CheckinFlow {
    with_stack(world, |world, stack| {
        for layer in stack.layers() {
            if layer.wrap_checkin(world, sim, ma, cargo, arrival) == CheckinFlow::Drop {
                return CheckinFlow::Drop;
            }
        }
        CheckinFlow::Proceed
    })
}

pub(crate) fn stack_before_checkin(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    cargo: &Cargo,
    flight: Option<&InFlight>,
    arrival: &mut Arrival,
) {
    with_stack(world, |world, stack| {
        for layer in stack.layers() {
            layer.before_checkin(world, sim, cargo, flight, arrival);
        }
    });
}

pub(crate) fn stack_after_checkin(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    cargo: &Cargo,
    flight: Option<&InFlight>,
    arrival: &Arrival,
) {
    with_stack(world, |world, stack| {
        for layer in stack.layers().iter().rev() {
            layer.after_checkin(world, sim, cargo, flight, arrival);
        }
    });
}

pub(crate) fn stack_before_resume(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    outcome: &ResumeOutcome,
) {
    with_stack(world, |world, stack| {
        for layer in stack.layers().iter().rev() {
            layer.before_resume(world, sim, outcome);
        }
    });
}

pub(crate) fn stack_after_resume(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    outcome: &ResumeOutcome,
) {
    with_stack(world, |world, stack| {
        for layer in stack.layers().iter().rev() {
            layer.after_resume(world, sim, outcome);
        }
    });
}

impl Middleware {
    /// Asks the layer stack whether a departure may proceed to the wire.
    /// The unconfined front the mobile agent calls right before handing
    /// itself to the platform; a rejection has already unwound the
    /// entered layers' [`MigrationLayer::on_abort`] hooks.
    pub(crate) fn transfer_gate(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        cargo: &Cargo,
    ) -> TransferFlow {
        stack_wrap_transfer(world, sim, ma, cargo)
    }
}

/// Notifies every layer (reverse order) that a flight is being
/// abandoned at arrival time.
pub(crate) fn stack_on_abort(
    world: &mut Middleware,
    sim: &mut Simulator<Middleware>,
    ma: &AgentId,
    flight: Option<&InFlight>,
    reason: AbortReason,
) {
    with_stack(world, |world, stack| {
        for layer in stack.layers().iter().rev() {
            layer.on_abort(world, sim, ma, flight, reason);
        }
    });
}
