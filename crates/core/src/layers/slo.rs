//! [`SloLayer`]: burn-rate SLO feeds.
//!
//! Owns the SLO feeding of PR 7: every completed migration feeds the
//! completion and latency SLOs, rollbacks feed a bad completion (via the
//! fault layer calling [`Middleware::slo_record`]), and registry lookups
//! feed the lookup-latency SLO through the unconfined
//! [`Middleware::slo_observe_lookup`] front the autonomous agent calls.
//! All of it is a no-op unless SLO monitoring was enabled in
//! [`ObservabilityOptions`](crate::observability::ObservabilityOptions).

use mdagent_simnet::{SimDuration, SimTime, Simulator, SloEdge, TraceCategory, TraceEvent};

use crate::middleware::Middleware;
use crate::observability::{SLO_MIGRATION_COMPLETION, SLO_MIGRATION_LATENCY, SLO_REGISTRY_LOOKUP};

use super::{MigrationLayer, ResumeOutcome};

/// The SLO-feeding concern as a drop-in layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloLayer;

impl MigrationLayer for SloLayer {
    fn name(&self) -> &'static str {
        "slo"
    }

    fn after_resume(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        outcome: &ResumeOutcome,
    ) {
        Middleware::slo_migration_completed(world, sim.now(), outcome.latency);
    }
}

impl Middleware {
    /// Feeds one good/bad event into the named SLO and emits a structured
    /// trace event (plus an `slo.alerts_*` counter) on alerting-state
    /// edges. A no-op unless SLO monitoring is enabled.
    pub(crate) fn slo_record(world: &mut Middleware, now: SimTime, name: &'static str, good: bool) {
        let Some(monitor) = world.slo.as_mut() else {
            return;
        };
        let Some(signal) = monitor.record(name, now, good) else {
            return;
        };
        let (counter, event) = match signal.edge {
            SloEdge::Fired => (
                "slo.alerts_fired",
                TraceEvent::SloBurnAlert {
                    slo: signal.name.to_owned(),
                    short_burn_milli: signal.short_burn_milli,
                    long_burn_milli: signal.long_burn_milli,
                },
            ),
            SloEdge::Recovered => (
                "slo.alerts_recovered",
                TraceEvent::SloRecovered {
                    slo: signal.name.to_owned(),
                },
            ),
        };
        world.env.metrics.incr_static(counter);
        world
            .env
            .trace
            .record_event(now, TraceCategory::Agent, event);
    }

    /// Feeds a completed migration into the completion and latency SLOs.
    fn slo_migration_completed(world: &mut Middleware, now: SimTime, latency: SimDuration) {
        let Some(opts) = world.observability.slo else {
            return;
        };
        Middleware::slo_record(world, now, SLO_MIGRATION_COMPLETION, true);
        Middleware::slo_record(
            world,
            now,
            SLO_MIGRATION_LATENCY,
            latency <= opts.migration_latency_target,
        );
    }

    /// Feeds a modeled registry lookup latency into the lookup SLO. The
    /// unconfined front the autonomous agent calls.
    pub(crate) fn slo_observe_lookup(world: &mut Middleware, now: SimTime, latency: SimDuration) {
        let Some(opts) = world.observability.slo else {
            return;
        };
        world
            .env
            .metrics
            .observe_static("registry.lookup_latency", latency);
        Middleware::slo_record(
            world,
            now,
            SLO_REGISTRY_LOOKUP,
            latency <= opts.lookup_latency_target,
        );
    }
}
