//! [`DataPathLayer`]: content-cache elision + snapshot deltas.
//!
//! Owns the migration data-path optimizations of PR 3: components whose
//! bytes the destination already holds travel as digests only, and a
//! snapshot whose base the destination acknowledged travels as an
//! encoding diff. The arrival side resolves both against the
//! [`ContentState`] — and falls back to a full-snapshot resend when a
//! delta's base is gone. Both optimizations are opt-in through
//! [`DataPathOptions`](crate::datapath::DataPathOptions); with defaults
//! (off) this layer is a pass-through.

use mdagent_fx::FxHashMap;
use mdagent_simnet::{HostId, SimTime, Simulator};
use mdagent_wire::Wire;

use crate::component::{Component, ComponentSet};
use crate::datapath::ComponentCache;
use crate::error::CoreError;
use crate::messages::Cargo;
use crate::middleware::Middleware;
use crate::snapshot::{Snapshot, SnapshotDelta};

use super::{Arrival, CargoDraft, InFlight, MigrationLayer};

/// Content-addressed state backing the data-path layer: per-host LRU
/// caches, the byte store elided digests resolve against, and the
/// snapshot sequences each host acknowledged.
#[derive(Debug, Default)]
pub(crate) struct ContentState {
    /// Per-host caches of component encodings, keyed by content digest.
    pub(crate) caches: FxHashMap<HostId, ComponentCache>,
    /// Content-addressed store of component bytes known to the middleware;
    /// a destination resolves elided digests against it.
    pub(crate) store: FxHashMap<u64, Component>,
    /// Last snapshot sequence each host acknowledged per app — the base a
    /// delta may be computed against.
    pub(crate) snapshot_bases: FxHashMap<(u32, String), u64>,
}

/// The data-path concern as a drop-in layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct DataPathLayer;

impl MigrationLayer for DataPathLayer {
    fn name(&self) -> &'static str {
        "data-path"
    }

    fn before_wrap(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        draft: &mut CargoDraft,
    ) {
        let _ = sim;
        // Content-addressed elision: components whose bytes the
        // destination already holds travel as digests only.
        if world.data_path.component_cache {
            let components = std::mem::take(&mut draft.components);
            let mut kept = ComponentSet::new();
            for component in components.iter() {
                let digest = mdagent_wire::digest_of(component).as_u64();
                let encoded = component.encoded_len() as u64;
                world
                    .content
                    .store
                    .entry(digest)
                    .or_insert_with(|| component.clone());
                if world.host_holds_content(draft.dest_host, digest) {
                    draft.bytes_saved_cache += encoded;
                    draft.elided.push((component.name.clone(), digest));
                    world.env.metrics.incr_static("migration.cache_hits");
                } else {
                    world.env.metrics.incr_static("migration.cache_misses");
                    kept.insert(component.clone());
                }
            }
            draft.components = kept;
        }
        if draft.bytes_saved_cache > 0 {
            world
                .env
                .metrics
                .incr_by_static("migration.bytes_saved_cache", draft.bytes_saved_cache);
        }

        // Delta snapshots: when the destination acknowledged an earlier
        // snapshot, ship only the encoding diff against it (if smaller).
        if world.data_path.delta_snapshots {
            let key = (draft.dest_host.0, draft.snapshot.app_name.clone());
            if let Some(base) = world
                .content
                .snapshot_bases
                .get(&key)
                .and_then(|seq| world.snapshots.by_sequence(&draft.snapshot.app_name, *seq))
            {
                let delta = SnapshotDelta::between(base, &draft.snapshot);
                let header = draft.snapshot.header();
                let delta_len = delta.wire_len() + header.wire_len();
                let full_len = draft.snapshot.wire_len();
                if delta_len < full_len {
                    draft.bytes_saved_delta = full_len - delta_len;
                    draft.snapshot_delta = Some(delta);
                    draft.snapshot = header;
                    world
                        .env
                        .metrics
                        .incr_by_static("migration.bytes_saved_delta", draft.bytes_saved_delta);
                }
            }
        }
    }

    fn before_checkin(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        cargo: &Cargo,
        flight: Option<&InFlight>,
        arrival: &mut Arrival,
    ) {
        let _ = flight;
        let now = sim.now();
        let snapshot = match Middleware::resolve_snapshot(world, cargo) {
            Ok(snapshot) => snapshot,
            Err(_) => Middleware::resend_full_snapshot(world, now, cargo),
        };
        arrival.snapshot = Some(snapshot);
        arrival.components = Middleware::fetch_elided(world, cargo);
    }

    fn after_checkin(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        cargo: &Cargo,
        flight: Option<&InFlight>,
        arrival: &Arrival,
    ) {
        let _ = (sim, flight);
        let Some(snapshot) = arrival.snapshot.as_ref() else {
            return;
        };
        Middleware::note_arrival(world, cargo.plan.dest_host(), cargo, snapshot);
    }
}

impl Middleware {
    /// Records that `host` holds the bytes of `component` (content store +
    /// per-host LRU cache). No-op when the component cache is disabled.
    pub(crate) fn remember_content(&mut self, host: HostId, digest: u64, component: &Component) {
        if !self.data_path.component_cache {
            return;
        }
        let bytes = component.encoded_len() as u64;
        self.content
            .store
            .entry(digest)
            .or_insert_with(|| component.clone());
        self.content.caches.entry(host).or_default().insert(
            digest,
            bytes,
            self.data_path.cache_capacity_bytes,
        );
    }

    /// Whether `host` already holds content with this digest — via its LRU
    /// cache or a registry record advertising the digest for its space.
    fn host_holds_content(&self, host: HostId, digest: u64) -> bool {
        if self
            .content
            .caches
            .get(&host)
            .is_some_and(|c| c.contains(digest))
        {
            return true;
        }
        let Ok(space) = self.space_of(host) else {
            return false;
        };
        self.federation.center(space).is_some_and(|center| {
            center
                .applications()
                .any(|r| r.host == host && r.has_digest(digest))
        })
    }

    /// The snapshot a cargo carries: the full one, or the reconstruction
    /// of its delta against the base the destination holds.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotDeltaMismatch`] when the base is gone or its
    /// digest diverged — the caller must resend the full snapshot, never
    /// silently deploy the header stub.
    fn resolve_snapshot(world: &mut Middleware, cargo: &Cargo) -> Result<Snapshot, CoreError> {
        let Some(delta) = &cargo.snapshot_delta else {
            return Ok(cargo.snapshot.clone());
        };
        world
            .snapshots
            .by_sequence(&delta.app_name, delta.base_sequence)
            .and_then(|base| delta.apply(base).ok())
            .ok_or_else(|| {
                world.env.metrics.incr_static("migration.delta_base_miss");
                CoreError::SnapshotDeltaMismatch(delta.app_name.clone())
            })
    }

    /// Recovery from a rejected delta: fetch the full snapshot the delta
    /// stood for from the (world-global) snapshot manager — modeling the
    /// source resending it — and bill the resend in the metrics. The
    /// header stub is the last resort when even the manager evicted it.
    fn resend_full_snapshot(world: &mut Middleware, now: SimTime, cargo: &Cargo) -> Snapshot {
        let app_name = &cargo.snapshot.app_name;
        let full = cargo
            .snapshot_delta
            .as_ref()
            .and_then(|delta| world.snapshots.by_sequence(app_name, delta.sequence))
            .or_else(|| world.snapshots.latest(app_name))
            .cloned();
        match full {
            Some(snapshot) => {
                let bytes = snapshot.wire_len();
                world.env.metrics.incr_static("migration.delta_resends");
                world
                    .env
                    .metrics
                    .incr_by_static("migration.delta_resend_bytes", bytes);
                world.env.trace.record_event(
                    now,
                    mdagent_simnet::TraceCategory::Agent,
                    mdagent_simnet::TraceEvent::SnapshotResend {
                        app_name: app_name.clone(),
                        bytes,
                    },
                );
                snapshot
            }
            None => {
                world
                    .env
                    .metrics
                    .incr_static("migration.delta_unrecoverable");
                cargo.snapshot.clone()
            }
        }
    }

    /// Materializes cache-elided components from the content store.
    fn fetch_elided(world: &mut Middleware, cargo: &Cargo) -> Vec<Component> {
        let mut out = Vec::with_capacity(cargo.elided.len());
        for (_, digest) in &cargo.elided {
            match world.content.store.get(digest) {
                Some(component) => out.push(component.clone()),
                None => world.env.metrics.incr_static("migration.elided_miss"),
            }
        }
        out
    }

    /// Destination-side bookkeeping after a cargo lands: remember shipped
    /// content in the host's cache and record which snapshot sequence the
    /// host now holds (the base a future delta is computed against).
    fn note_arrival(world: &mut Middleware, dest: HostId, cargo: &Cargo, snapshot: &Snapshot) {
        if world.data_path.component_cache {
            for component in cargo.components.iter() {
                let digest = mdagent_wire::digest_of(component).as_u64();
                world.remember_content(dest, digest, component);
            }
            for (_, digest) in &cargo.elided {
                if let Some(cache) = world.content.caches.get_mut(&dest) {
                    cache.touch(*digest);
                }
            }
        }
        if world.data_path.delta_snapshots {
            world
                .content
                .snapshot_bases
                .insert((dest.0, snapshot.app_name.clone()), snapshot.sequence);
        }
    }
}
