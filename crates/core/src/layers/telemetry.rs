//! [`TelemetryLayer`]: migration spans + wire trace-context propagation.
//!
//! Owns every telemetry-span call of the migration lifecycle: the
//! detached `migration` root with its per-phase children
//! (suspend/wrap/migrate/rebind/adapt/resume), the destination-side
//! check-in marker spans parented across the wire via
//! [`TraceContext`], and the status attributes the tail sampler keys on
//! (`attempts`, `status=rejected`). Without this layer in the stack a
//! migration records no spans at all.

use mdagent_agent::AgentId;
use mdagent_simnet::{SimTime, Simulator, SpanId};

use crate::messages::{Cargo, TraceContext};
use crate::middleware::Middleware;
use crate::mobility::MobilityMode;

use super::{AbortReason, Arrival, FlightSetup, InFlight, MigrationLayer, ResumeOutcome};

/// The span/trace-propagation concern as a drop-in layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct TelemetryLayer;

impl MigrationLayer for TelemetryLayer {
    fn name(&self) -> &'static str {
        "telemetry"
    }

    fn before_depart(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        setup: &mut FlightSetup,
    ) {
        let now = sim.now();
        // Root span for the whole migration; one child per pipeline phase.
        // Detached: it rides the in-flight record and closes at arrival
        // or rollback.
        let root = world.env.telemetry.open("migration", None, now).detach();
        // Raw ids as integers: keeps this hot path free of formatting
        // allocations (the exporters render them).
        let tel = &mut world.env.telemetry;
        tel.attr(root, "app", u64::from(setup.app.0));
        tel.attr(root, "mode", setup.mode.tag());
        tel.attr(root, "src_host", u64::from(setup.src_host.0));
        tel.attr(root, "dest_host", u64::from(setup.dest_host.0));
        tel.attr(root, "bytes", setup.wrapped_bytes);
        if setup.bytes_saved_cache > 0 {
            tel.attr(root, "bytes_saved_cache", setup.bytes_saved_cache);
        }
        if setup.bytes_saved_delta > 0 {
            tel.attr(root, "bytes_saved_delta", setup.bytes_saved_delta);
        }
        let suspend_span = tel.record_span(
            "migration.suspend",
            Some(root),
            now,
            now + setup.suspend_cost,
        );
        let _ = suspend_span;
        setup.span = root;
    }

    fn before_transfer(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        cargo: &mut Cargo,
    ) {
        let now = sim.now();
        let Some(flight) = world.in_flight.get(ma) else {
            return;
        };
        let root = flight.span;
        let wrapped_bytes = flight.shipped_bytes;
        let tel = &mut world.env.telemetry;
        let wrap_span = tel.record_span("migration.wrap", Some(root), now, now);
        tel.attr(wrap_span, "bytes", wrapped_bytes);
        // Detached: closed when the transfer lands (or rolls back).
        let migrate_span = tel.open("migration.migrate", Some(root), now).detach();
        if let Some(flight) = world.in_flight.get_mut(ma) {
            flight.migrate_span = migrate_span;
        }
        // Stamp the trace context onto the wire so the destination parents
        // its check-in spans to the in-transit span of *this* trace.
        if world.observability.propagate_trace_ctx
            && !root.is_disabled()
            && !migrate_span.is_disabled()
        {
            cargo.trace_ctx = Some(TraceContext {
                trace_id: u64::from(root.raw()),
                parent_span: u64::from(migrate_span.raw()),
            });
        }
    }

    fn before_checkin(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        cargo: &Cargo,
        flight: Option<&InFlight>,
        arrival: &mut Arrival,
    ) {
        let _ = arrival;
        let now = sim.now();
        match cargo.plan.mode {
            MobilityMode::FollowMe => {
                let Some(flight) = flight else {
                    return;
                };
                let migrate = now.saturating_since(flight.departed_at);
                world
                    .env
                    .metrics
                    .observe_static("migration.migrate", migrate);
                world.env.telemetry.end(flight.migrate_span, now);
                Middleware::ctx_span(world, cargo.trace_ctx, "migration.checkin", now, now);
                if flight.attempts > 1 {
                    // Mark retried-but-successful migrations on the root so
                    // the tail sampler always keeps their traces.
                    world
                        .env
                        .telemetry
                        .attr(flight.span, "attempts", u64::from(flight.attempts));
                }
            }
            MobilityMode::CloneDispatch => match flight {
                Some(f) => {
                    world.env.telemetry.end(f.migrate_span, now);
                    Middleware::ctx_span(world, cargo.trace_ctx, "migration.checkin", now, now);
                }
                None => {
                    world.env.metrics.incr_static("migration.orphan_arrivals");
                    Middleware::ctx_span(
                        world,
                        cargo.trace_ctx,
                        "migration.orphan_arrival",
                        now,
                        now,
                    );
                }
            },
        }
    }

    fn after_checkin(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        cargo: &Cargo,
        flight: Option<&InFlight>,
        arrival: &Arrival,
    ) {
        let now = sim.now();
        let root = flight.map(|f| f.span).unwrap_or(SpanId::DISABLED);
        match cargo.plan.mode {
            MobilityMode::FollowMe => {
                // Child spans partition [now, now + resume_cost]: scaled
                // rebind and adapt windows first, then resume absorbs the
                // remainder (including any scaling-rounding residue), so
                // the children always sum to the root within
                // integer-microsecond rounding.
                let scaled_rebind = arrival.cpu.scale(arrival.rebind_cost);
                let scaled_adapt = arrival.cpu.scale(arrival.adapt_cost);
                let rebind_end = now + scaled_rebind;
                let adapt_end = rebind_end + scaled_adapt;
                let root_end = now + arrival.resume_cost;
                let tel = &mut world.env.telemetry;
                let rebind_span = tel.record_span(
                    "migration.rebind",
                    Some(root),
                    now,
                    rebind_end.min(root_end),
                );
                tel.attr(rebind_span, "bindings", arrival.rebind_bindings);
                let adapt_span = tel.record_span(
                    "migration.adapt",
                    Some(root),
                    rebind_end.min(root_end),
                    adapt_end.min(root_end),
                );
                tel.attr(adapt_span, "actions", arrival.adapt_actions);
                tel.record_span(
                    "migration.resume",
                    Some(root),
                    adapt_end.min(root_end),
                    root_end,
                );
            }
            MobilityMode::CloneDispatch => {
                let tel = &mut world.env.telemetry;
                tel.record_span(
                    "migration.resume",
                    Some(root),
                    now,
                    now + arrival.resume_cost,
                );
                if let Some(replica) = arrival.replica {
                    tel.attr(root, "replica", u64::from(replica.0));
                }
            }
        }
    }

    fn before_resume(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        outcome: &ResumeOutcome,
    ) {
        world.env.telemetry.end(outcome.root, sim.now());
    }

    fn on_abort(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        flight: Option<&InFlight>,
        reason: AbortReason,
    ) {
        let _ = ma;
        // A refused departure rolls back through the fault machinery,
        // which closes the spans itself; only a destination-side
        // rejection leaves the root dangling for us to close.
        if reason != AbortReason::ArrivalRejected {
            return;
        }
        let Some(flight) = flight else {
            return;
        };
        let now = sim.now();
        let tel = &mut world.env.telemetry;
        tel.attr(flight.span, "status", "rejected");
        tel.end(flight.span, now);
    }
}

impl Middleware {
    /// Records a destination-side span parented to the trace context the
    /// cargo carried over the wire (when propagation stamped one), so the
    /// arrival joins the source host's migration trace causally instead
    /// of starting a disconnected one.
    pub(crate) fn ctx_span(
        world: &mut Middleware,
        ctx: Option<TraceContext>,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        let Some(ctx) = ctx else { return };
        let parent = u32::try_from(ctx.parent_span)
            .ok()
            .map(SpanId::from_raw)
            .filter(|p| !p.is_disabled());
        let tel = &mut world.env.telemetry;
        let span = tel.record_span(name, parent, start, end);
        tel.attr(span, "trace_id", ctx.trace_id);
    }
}
