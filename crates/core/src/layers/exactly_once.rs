//! [`ExactlyOnceLayer`]: digest-guarded duplicate/orphan check-in.
//!
//! Owns the idempotency guard of PR 4: every follow-me deployment is
//! recorded in the [`CheckinLedger`] under the cargo's content digest, a
//! retried wrap whose predecessor already landed is acknowledged (never
//! deployed a second time), and an arrival whose flight bookkeeping is
//! gone is swallowed as an orphan. Clone arrivals install replicas
//! unconditionally, so this layer passes them through.

use mdagent_agent::AgentId;
use mdagent_fx::FxHashMap;
use mdagent_simnet::Simulator;

use crate::messages::Cargo;
use crate::middleware::Middleware;
use crate::mobility::MobilityMode;

use super::{Arrival, CheckinFlow, InFlight, MigrationLayer};

/// Digest of the cargo last deployed per app (raw id) — the idempotency
/// guard that turns a duplicate check-in into an acknowledgement.
#[derive(Debug, Default)]
pub(crate) struct CheckinLedger {
    deployed: FxHashMap<u32, u64>,
}

impl CheckinLedger {
    /// Whether `digest` is exactly what was last deployed for this app.
    fn matches(&self, app_raw: u32, digest: u64) -> bool {
        self.deployed.get(&app_raw) == Some(&digest)
    }

    /// Records the digest just deployed for this app.
    fn note(&mut self, app_raw: u32, digest: u64) {
        self.deployed.insert(app_raw, digest);
    }
}

/// The exactly-once check-in concern as a drop-in layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactlyOnceLayer;

impl MigrationLayer for ExactlyOnceLayer {
    fn name(&self) -> &'static str {
        "exactly-once"
    }

    fn wrap_checkin(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        cargo: &Cargo,
        arrival: &mut Arrival,
    ) -> CheckinFlow {
        if cargo.plan.mode != MobilityMode::FollowMe {
            return CheckinFlow::Proceed;
        }
        let app_id = cargo.plan.app();
        let dest = cargo.plan.dest_host();
        let now = sim.now();
        // Idempotent check-in: a retried wrap whose predecessor already
        // landed is acknowledged, never deployed a second time. The host
        // check distinguishes a true duplicate from a later, legitimately
        // identical re-migration.
        let already_here = world.app(app_id).map(|a| a.host) == Ok(dest)
            && world.checkin_ledger.matches(app_id.0, arrival.digest);
        if already_here {
            world
                .env
                .metrics
                .incr_static("migration.duplicate_checkins");
            Middleware::ctx_span(
                world,
                cargo.trace_ctx,
                "migration.duplicate_checkin",
                now,
                now,
            );
            if let Some(flight) = world.in_flight.remove(ma) {
                let tel = &mut world.env.telemetry;
                tel.end(flight.migrate_span, now);
                tel.attr(flight.span, "status", "duplicate");
                tel.end(flight.span, now);
            }
            return CheckinFlow::Drop;
        }
        if !world.in_flight.contains_key(ma) {
            world.env.metrics.incr_static("migration.orphan_arrivals");
            Middleware::ctx_span(world, cargo.trace_ctx, "migration.orphan_arrival", now, now);
            return CheckinFlow::Drop;
        }
        CheckinFlow::Proceed
    }

    fn after_checkin(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        cargo: &Cargo,
        flight: Option<&InFlight>,
        arrival: &Arrival,
    ) {
        let _ = (sim, flight);
        if cargo.plan.mode != MobilityMode::FollowMe {
            return;
        }
        world
            .checkin_ledger
            .note(cargo.plan.app().0, arrival.digest);
    }
}
