//! [`FaultRetryLayer`]: watchdogs, bounded backoff, rollback.
//!
//! Owns the fault-tolerance machinery of PR 4: the per-attempt transfer
//! timeout, the watchdog that distinguishes "still in transit" from
//! "transfer lost", RETRY nudges with bounded backoff, and the rollback
//! that restores a follow-me application at its source when attempts run
//! out. Without this layer nothing is armed and a lost transfer is simply
//! lost (exactly the pre-PR-4 behavior — only safe with faults off).

use mdagent_agent::{AclMessage, AgentId, LifecycleState, Performative, Platform};
use mdagent_simnet::{
    CpuFactor, SimDuration, SimTime, Simulator, SpanId, TraceCategory, TraceEvent,
};

use crate::app::{AppId, AppState};
use crate::messages::{ontologies, RetryNotice};
use crate::middleware::Middleware;
use crate::observability::SLO_MIGRATION_COMPLETION;
use crate::snapshot::SnapshotManager;

use super::{FlightSetup, InFlight, MigrationLayer};

/// The retry/rollback concern as a drop-in layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultRetryLayer;

impl MigrationLayer for FaultRetryLayer {
    fn name(&self) -> &'static str {
        "fault-retry"
    }

    fn before_depart(
        &self,
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        setup: &mut FlightSetup,
    ) {
        let _ = sim;
        // Per-attempt transfer window: setup + estimated pipelined transfer
        // plus the policy's slack. Only computed (and a watchdog armed)
        // when faults are on, so fault-free runs schedule nothing extra.
        if world.env.faults.enabled() {
            let transfer = world
                .env
                .topology
                .pipelined_transfer_time(
                    setup.src_host,
                    setup.dest_host,
                    setup.wrapped_bytes + mdagent_agent::AGENT_FRAME_BYTES,
                )
                .unwrap_or(SimDuration::ZERO);
            setup.timeout = mdagent_agent::MIGRATION_SETUP + transfer + world.retry.timeout_margin;
        }
    }

    fn after_suspend(&self, world: &mut Middleware, sim: &mut Simulator<Middleware>, ma: &AgentId) {
        // Clone flights get their own watchdog at dispatch time (the
        // source flight is transient bookkeeping); follow-me is guarded
        // from the start.
        let Some(flight) = world.in_flight.get(ma) else {
            return;
        };
        if world.env.faults.enabled() && !flight.cloned {
            Middleware::arm_watchdog(sim, ma.clone(), 1, flight.suspend + flight.timeout);
        }
    }
}

impl Middleware {
    /// The suspend cost recorded for an MA currently in flight (clone
    /// bookkeeping). The span pair is (migration root, open migrate child),
    /// handed over to the clone's in-flight record by
    /// [`Middleware::note_clone_departure`].
    fn in_flight_suspend(
        &self,
        ma: &AgentId,
    ) -> Option<(AppId, SimDuration, u64, (SpanId, SpanId))> {
        self.in_flight
            .get(ma)
            .map(|f| (f.app, f.suspend, f.shipped_bytes, (f.span, f.migrate_span)))
    }

    /// Notes a clone departure for timing purposes (called by the source
    /// MA when it dispatches a clone). Returns the watchdog delay the
    /// caller should arm for the clone's flight — `None` when faults are
    /// off (no watchdog; nothing extra is scheduled).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn note_clone_departure(
        world: &mut Middleware,
        now: SimTime,
        clone_id: AgentId,
        app: AppId,
        dest_host: mdagent_simnet::HostId,
        shipped_bytes: u64,
        suspend: SimDuration,
        spans: (SpanId, SpanId),
    ) -> Option<SimDuration> {
        // The migration root and open migrate spans travel with the clone:
        // the original MA's bookkeeping is cleared by the caller (which
        // never ends spans), and the clone's arrival ends both at the
        // destination.
        let (span, migrate_span) = spans;
        let src_host = world
            .apps
            .get(app.0 as usize)
            .map(|a| a.host)
            .unwrap_or(dest_host);
        let timeout = if world.env.faults.enabled() {
            let transfer = world
                .env
                .topology
                .pipelined_transfer_time(
                    src_host,
                    dest_host,
                    shipped_bytes + mdagent_agent::AGENT_FRAME_BYTES,
                )
                .unwrap_or(SimDuration::ZERO);
            mdagent_agent::MIGRATION_SETUP + transfer + world.retry.timeout_margin
        } else {
            SimDuration::ZERO
        };
        world.in_flight.insert(
            clone_id,
            InFlight {
                app,
                suspend,
                departed_at: now,
                shipped_bytes,
                remote_bytes: 0,
                span,
                migrate_span,
                attempts: 1,
                cloned: true,
                src_host,
                dest_host,
                started_at: now,
                timeout,
            },
        );
        world.env.faults.enabled().then_some(timeout)
    }

    /// The clone slot was created: hand the source MA's flight bookkeeping
    /// over to the clone's id and guard the clone's transfer with a
    /// watchdog (faults on only). The unconfined front the mobile agent
    /// calls, keeping the watchdog machinery inside the layer modules.
    pub(crate) fn note_clone_dispatched(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        source_ma: &AgentId,
        clone_id: AgentId,
        dest_host: mdagent_simnet::HostId,
    ) {
        let now = sim.now();
        let Some((app, suspend, shipped, spans)) = world.in_flight_suspend(source_ma) else {
            return;
        };
        let watchdog = Middleware::note_clone_departure(
            world,
            now,
            clone_id.clone(),
            app,
            dest_host,
            shipped,
            suspend,
            spans,
        );
        if let Some(delay) = watchdog {
            Middleware::arm_watchdog(sim, clone_id, 1, delay);
        }
    }

    /// Abandons a flight whose departure was refused before any bytes
    /// moved (platform rejection or a `wrap_transfer` veto): closes its
    /// spans and, for follow-me, resumes the application in place at the
    /// source. The unconfined front the mobile agent calls.
    pub(crate) fn abort_departure(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
    ) {
        Middleware::rollback_migration(world, sim, ma);
    }

    /// Unwinds a departure whose deferred move or clone failed at queue
    /// drain time. The platform reported `Ok` when the operation was
    /// queued, so this hook is the middleware's only notification: the
    /// clone's flight would otherwise linger with an open root span
    /// until a watchdog times out — or forever, when no watchdog is
    /// armed for it.
    pub(crate) fn deferred_departure_failed(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        failure: mdagent_agent::DeferredFailure,
    ) {
        match failure {
            mdagent_agent::DeferredFailure::Move { error } => {
                // A link-down refusal while faults are on is the armed
                // watchdog's business: its retry nudges the agent again
                // once the outage clears or attempts run out. Every other
                // failure has no guardian and must roll back here.
                if world.env.faults.enabled()
                    && matches!(error, mdagent_agent::AgentError::LinkDown(_))
                {
                    return;
                }
                Middleware::abort_departure(world, sim, ma);
            }
            mdagent_agent::DeferredFailure::Clone { clone_id, .. } => {
                // The clone's flight record owns the telemetry spans; the
                // source entry is transient bookkeeping the cargo timer
                // clears without closing them. Aborting now (instead of
                // waiting out the watchdog, when one is armed at all) is
                // deterministic and covers the fault-free leak.
                world.env.metrics.incr_static("ma.clone_failed");
                Middleware::abort_departure(world, sim, &clone_id);
            }
        }
    }

    // ---- fault-tolerant migration: watchdog, retry, rollback ----------------

    /// Arms a watchdog that re-examines a flight after `delay`. Only
    /// called when fault injection is on, so fault-free runs schedule
    /// nothing extra.
    pub(crate) fn arm_watchdog(
        sim: &mut Simulator<Middleware>,
        ma: AgentId,
        attempt: u32,
        delay: SimDuration,
    ) {
        sim.schedule_in(delay, move |w, sim| {
            Middleware::check_migration(w, sim, &ma, attempt);
        });
    }

    /// The watchdog body: decides between "still in transit — wait",
    /// "transfer lost — retry" and "out of attempts — roll back". A
    /// watchdog whose attempt number no longer matches the flight's is
    /// stale (a newer attempt owns the flight) and does nothing.
    fn check_migration(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        attempt: u32,
    ) {
        let Some(flight) = world.in_flight.get(ma) else {
            return; // arrived or already rolled back
        };
        if flight.attempts != attempt {
            return;
        }
        let cloned = flight.cloned;
        let timeout = flight.timeout;
        let app_id = flight.app;
        match world.platform.agent_state(ma) {
            Some(LifecycleState::InTransit) => {
                // Transfer still running — the estimate was short; wait
                // one more margin and look again.
                let margin = world.retry.timeout_margin;
                Middleware::arm_watchdog(sim, ma.clone(), attempt, margin);
            }
            Some(LifecycleState::Active | LifecycleState::Suspended)
                if !cloned && attempt < world.retry.max_attempts =>
            {
                // The agent bounced back to the source: the transfer was
                // dropped. Nudge it to re-dispatch after a backoff.
                let next = attempt + 1;
                if let Some(f) = world.in_flight.get_mut(ma) {
                    f.attempts = next;
                }
                world.env.metrics.incr_static("migration.retries");
                world.env.trace.record_event(
                    sim.now(),
                    TraceCategory::Agent,
                    TraceEvent::MigrationRetry {
                        app: app_id.to_string(),
                        attempt: next,
                    },
                );
                let backoff = world.retry.backoff(next - 1);
                let kernel_name = world.platform.name().to_owned();
                let target = ma.clone();
                sim.schedule_in(backoff, move |w, sim| {
                    let msg = AclMessage::new(
                        Performative::Inform,
                        AgentId::new("middleware", kernel_name),
                        target.clone(),
                    )
                    .with_ontology(ontologies::RETRY)
                    .with_payload(&RetryNotice { attempt: next });
                    Platform::send(w, sim, msg);
                });
                Middleware::arm_watchdog(sim, ma.clone(), next, backoff + timeout);
            }
            _ => Middleware::rollback_migration(world, sim, ma),
        }
    }

    /// Gives up on a flight: closes its telemetry spans and, for
    /// follow-me, restores the retained snapshot and resumes the
    /// application in place at the source. Clone flights are simply
    /// aborted — the original application never stopped running.
    fn rollback_migration(world: &mut Middleware, sim: &mut Simulator<Middleware>, ma: &AgentId) {
        let Some(flight) = world.in_flight.remove(ma) else {
            return;
        };
        let now = sim.now();
        let app_id = flight.app;
        {
            let tel = &mut world.env.telemetry;
            tel.end(flight.migrate_span, now);
            tel.attr(flight.span, "status", "aborted");
            tel.attr(flight.span, "attempts", u64::from(flight.attempts));
        }
        world.env.trace.record_event(
            now,
            TraceCategory::Agent,
            TraceEvent::MigrationAborted {
                app: app_id.to_string(),
                dest: flight.dest_host.to_string(),
                attempts: flight.attempts,
            },
        );
        Middleware::slo_record(world, now, SLO_MIGRATION_COMPLETION, false);
        if flight.cloned {
            world.env.telemetry.end(flight.span, now);
            world.env.metrics.incr_static("migration.clone_aborts");
            return;
        }
        // Unwrap the retained snapshot and resume where we started.
        {
            let Middleware {
                snapshots, apps, ..
            } = &mut *world;
            if let Some(app) = apps.get_mut(app_id.0 as usize) {
                if let Some(snap) = snapshots.latest(&app.name) {
                    let _ = SnapshotManager::restore(snap, app);
                }
                app.host = flight.src_host;
            }
        }
        let cpu = world
            .env
            .topology
            .host(flight.src_host)
            .map(|h| h.cpu())
            .unwrap_or(CpuFactor::REFERENCE);
        let resume_cost = cpu.scale(world.cost_model.resume_cost(flight.shipped_bytes, 0));
        world.env.metrics.incr_static("migration.rollbacks");
        world.env.metrics.observe_static(
            "migration.rollback_latency",
            now.saturating_since(flight.started_at) + resume_cost,
        );
        {
            let tel = &mut world.env.telemetry;
            tel.record_span(
                "migration.rollback",
                Some(flight.span),
                now,
                now + resume_cost,
            );
        }
        // The MA still holds the dead cargo; expire it through its own
        // timer path (a no-op if the agent itself was lost).
        Platform::set_timer(
            world,
            sim,
            ma,
            SimDuration::ZERO,
            crate::agents::TAG_CLEAR_CARGO,
        );
        let src = flight.src_host;
        let root = flight.span;
        sim.schedule_in(resume_cost, move |w, sim| {
            let now = sim.now();
            if let Ok(app) = w.app_mut(app_id) {
                app.state = AppState::Running;
                app.host = src;
            }
            w.env.telemetry.end(root, now);
            w.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::Resumed {
                    app: app_id.to_string(),
                    dest: src.to_string(),
                },
            );
        });
    }
}
