//! The two-level application model (paper Fig. 3).

use std::fmt;

use mdagent_agent::AgentId;
use mdagent_simnet::HostId;
use mdagent_wire::impl_wire_enum;

use crate::binding::Binding;
use crate::component::{ComponentKind, ComponentSet};
use crate::coordinator::Coordinator;
use crate::profile::UserProfile;

/// Identifier of a deployed application instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app-{}", self.0)
    }
}

/// Execution state of an application instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppState {
    /// Executing normally.
    Running,
    /// Suspended (state captured, awaiting migration or resumption).
    Suspended,
    /// Its components are in transit inside a mobile agent.
    Migrating,
    /// Stopped for good.
    Stopped,
}

impl_wire_enum!(AppState {
    Running = 0,
    Suspended = 1,
    Migrating = 2,
    Stopped = 3,
});

impl fmt::Display for AppState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AppState::Running => "running",
            AppState::Suspended => "suspended",
            AppState::Migrating => "migrating",
            AppState::Stopped => "stopped",
        };
        f.write_str(s)
    }
}

/// A deployed application instance.
///
/// Upper level: [`components`](Application::components) (logic,
/// presentation, data), [`bindings`](Application::bindings) and profiles.
/// Base level: the [`coordinator`](Application::coordinator) (observer
/// pattern + sync links) and the attached mobile agent; the snapshot
/// manager and adaptor operate on instances from the outside.
#[derive(Debug, Clone)]
pub struct Application {
    /// Instance id.
    pub id: AppId,
    /// Application name (registry key), e.g. `"smart-media-player"`.
    pub name: String,
    /// Host currently executing the instance.
    pub host: HostId,
    /// Execution state.
    pub state: AppState,
    /// Component inventory present at the current host.
    pub components: ComponentSet,
    /// Resource bindings.
    pub bindings: Vec<Binding>,
    /// Base-level coordinator.
    pub coordinator: Coordinator,
    /// Owner's profile (rides along on migration).
    pub user_profile: UserProfile,
    /// The mobile agent responsible for this instance, once attached.
    pub mobile_agent: Option<AgentId>,
    /// If this instance is a clone-dispatch replica, the original.
    pub cloned_from: Option<AppId>,
    /// Minimum device requirements (`key=value`; see
    /// [`DeviceProfile::satisfies`](crate::DeviceProfile::satisfies)).
    pub requirements: Vec<(String, String)>,
}

impl Application {
    /// Creates a running application instance.
    pub fn new(id: AppId, name: impl Into<String>, host: HostId) -> Self {
        Application {
            id,
            name: name.into(),
            host,
            state: AppState::Running,
            components: ComponentSet::new(),
            bindings: Vec::new(),
            coordinator: Coordinator::new(),
            user_profile: UserProfile::default(),
            mobile_agent: None,
            cloned_from: None,
            requirements: Vec::new(),
        }
    }

    /// Whether a device profile satisfies every requirement.
    pub fn device_compatible(&self, device: &crate::profile::DeviceProfile) -> bool {
        self.requirements
            .iter()
            .all(|(k, v)| device.satisfies(k, v))
    }

    /// Whether the inventory holds a component kind.
    pub fn has_kind(&self, kind: ComponentKind) -> bool {
        self.components.has_kind(kind)
    }

    /// Registry component tags for the current inventory.
    pub fn component_tags(&self) -> Vec<String> {
        let mut tags: Vec<String> = [
            ComponentKind::Logic,
            ComponentKind::Presentation,
            ComponentKind::Data,
            ComponentKind::Resource,
        ]
        .into_iter()
        .filter(|k| self.has_kind(*k))
        .map(|k| k.tag().to_owned())
        .collect();
        tags.sort();
        tags
    }

    /// Whether the instance is a clone-dispatch replica.
    pub fn is_replica(&self) -> bool {
        self.cloned_from.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Component;

    #[test]
    fn display_impls() {
        assert_eq!(AppId(4).to_string(), "app-4");
        assert_eq!(AppState::Migrating.to_string(), "migrating");
    }

    #[test]
    fn component_tags_sorted_unique() {
        let mut app = Application::new(AppId(0), "player", HostId(0));
        app.components
            .insert(Component::synthetic("codec", ComponentKind::Logic, 10));
        app.components
            .insert(Component::synthetic("ui", ComponentKind::Presentation, 10));
        app.components
            .insert(Component::synthetic("ui2", ComponentKind::Presentation, 10));
        assert_eq!(app.component_tags(), ["logic", "presentation"]);
        assert!(app.has_kind(ComponentKind::Logic));
        assert!(!app.has_kind(ComponentKind::Data));
        assert!(!app.is_replica());
    }

    #[test]
    fn app_state_wire_roundtrip() {
        for s in [
            AppState::Running,
            AppState::Suspended,
            AppState::Migrating,
            AppState::Stopped,
        ] {
            let back: AppState = mdagent_wire::from_bytes(&mdagent_wire::to_bytes(&s)).unwrap();
            assert_eq!(back, s);
        }
    }
}
