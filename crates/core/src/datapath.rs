//! Migration data-path options: content-addressed component caching and
//! delta-encoded snapshots.
//!
//! Both mechanisms are opt-in (default off) so the paper-calibrated
//! figures keep their exact byte counts; the migration bench enables them
//! to quantify the savings.

/// Opt-in switches for the optimized migration data path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataPathOptions {
    /// Elide components whose wire encoding the destination already holds
    /// (matched by content digest), shipping only the digest.
    pub component_cache: bool,
    /// Encode repeat snapshots as deltas against the last snapshot the
    /// destination acknowledged, when the delta is smaller.
    pub delta_snapshots: bool,
    /// Per-host budget of cached component bytes; least recently used
    /// entries are evicted first.
    pub cache_capacity_bytes: u64,
}

impl Default for DataPathOptions {
    fn default() -> Self {
        DataPathOptions {
            component_cache: false,
            delta_snapshots: false,
            cache_capacity_bytes: 8 * 1024 * 1024,
        }
    }
}

impl DataPathOptions {
    /// All optimizations on, with the default cache budget.
    pub fn all() -> Self {
        DataPathOptions {
            component_cache: true,
            delta_snapshots: true,
            ..DataPathOptions::default()
        }
    }
}

/// A per-host LRU cache of component encodings keyed by content digest.
///
/// Only digests and sizes are tracked — the actual bytes live once in the
/// middleware's content store; the cache answers "does this host already
/// hold these bytes" and enforces the per-host budget.
#[derive(Debug, Clone, Default)]
pub struct ComponentCache {
    /// Least recently used at the front, most recently used at the back.
    entries: Vec<(u64, u64)>,
    /// Running sum of the cached entry sizes — kept in lock-step with
    /// `entries` so the admission check is O(1) instead of a rescan.
    used: u64,
}

impl ComponentCache {
    /// An empty cache.
    pub fn new() -> Self {
        ComponentCache::default()
    }

    /// Whether the cache holds content with this digest.
    pub fn contains(&self, digest: u64) -> bool {
        self.entries.iter().any(|(d, _)| *d == digest)
    }

    /// Marks a digest as most recently used (a cache hit). Returns false
    /// if the digest was not present.
    pub fn touch(&mut self, digest: u64) -> bool {
        match self.entries.iter().position(|(d, _)| *d == digest) {
            Some(i) => {
                let entry = self.entries.remove(i);
                self.entries.push(entry);
                true
            }
            None => false,
        }
    }

    /// Removes the entry under `digest`, returning its recorded size.
    fn take(&mut self, digest: u64) -> Option<u64> {
        let i = self.entries.iter().position(|(d, _)| *d == digest)?;
        let (_, bytes) = self.entries.remove(i);
        self.used -= bytes;
        Some(bytes)
    }

    /// Inserts content of `bytes` size under `digest`, evicting least
    /// recently used entries to stay within `capacity_bytes`. Entries
    /// larger than the whole budget are not cached.
    ///
    /// Re-inserting a digest already present updates its recency (and
    /// recorded size) without counting its bytes twice against the
    /// budget: the old entry is removed before admission, so a full cache
    /// never evicts *other* entries just because one of its own residents
    /// was inserted again.
    pub fn insert(&mut self, digest: u64, bytes: u64, capacity_bytes: u64) {
        self.take(digest);
        if bytes > capacity_bytes {
            return;
        }
        while !self.entries.is_empty() && self.used + bytes > capacity_bytes {
            let (_, evicted) = self.entries.remove(0);
            self.used -= evicted;
        }
        self.entries.push((digest, bytes));
        self.used += bytes;
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total cached bytes.
    pub fn bytes_used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off() {
        let opts = DataPathOptions::default();
        assert!(!opts.component_cache);
        assert!(!opts.delta_snapshots);
        assert!(opts.cache_capacity_bytes > 0);
        let all = DataPathOptions::all();
        assert!(all.component_cache && all.delta_snapshots);
    }

    #[test]
    fn insert_contains_touch() {
        let mut c = ComponentCache::new();
        assert!(c.is_empty());
        c.insert(1, 100, 1000);
        c.insert(2, 200, 1000);
        assert!(c.contains(1) && c.contains(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.bytes_used(), 300);
        assert!(c.touch(1));
        assert!(!c.touch(42));
        // Re-insert of a present digest is a touch, not a duplicate.
        c.insert(2, 200, 1000);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = ComponentCache::new();
        c.insert(1, 400, 1000);
        c.insert(2, 400, 1000);
        c.touch(1); // 2 is now the LRU entry.
        c.insert(3, 400, 1000);
        assert!(!c.contains(2), "LRU entry must be evicted");
        assert!(c.contains(1) && c.contains(3));
        assert!(c.bytes_used() <= 1000);
    }

    #[test]
    fn reinsert_never_double_counts_or_evicts() {
        // A full cache re-inserting one of its own residents must not
        // count that resident's bytes twice against the budget — which
        // would spuriously evict the other entries.
        let mut c = ComponentCache::new();
        c.insert(1, 600, 1000);
        c.insert(2, 400, 1000); // exactly at capacity
        for _ in 0..10 {
            c.insert(1, 600, 1000);
            c.insert(2, 400, 1000);
            assert_eq!(c.len(), 2, "re-insert must never evict a co-resident");
            assert_eq!(c.bytes_used(), 1000, "bytes counted exactly once");
        }
        // Recency is still updated: after re-inserting 1 last, 2 is LRU.
        c.insert(1, 600, 1000);
        c.insert(3, 400, 1000);
        assert!(!c.contains(2), "LRU entry evicted");
        assert!(c.contains(1) && c.contains(3));
        assert_eq!(c.bytes_used(), 1000);
    }

    #[test]
    fn reinsert_revalidates_against_capacity() {
        // Re-insert runs the same admission path as a fresh insert: an
        // entry re-offered under a now-smaller budget is dropped rather
        // than silently retained past the cap.
        let mut c = ComponentCache::new();
        c.insert(1, 400, 1000);
        c.insert(1, 400, 300);
        assert!(!c.contains(1));
        assert_eq!(c.bytes_used(), 0);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut c = ComponentCache::new();
        c.insert(1, 100, 1000);
        c.insert(9, 5000, 1000);
        assert!(!c.contains(9));
        assert!(c.contains(1), "oversized insert must not evict the cache");
    }

    #[test]
    fn eviction_is_deterministic() {
        // Same operation sequence, same final state — the cache is a Vec,
        // not a hash map, so iteration and eviction order are fixed.
        let run = || {
            let mut c = ComponentCache::new();
            for d in 0..20u64 {
                c.insert(d, 128, 512);
                if d % 3 == 0 {
                    c.touch(d / 2);
                }
            }
            let mut out = Vec::new();
            for d in 0..20u64 {
                if c.contains(d) {
                    out.push(d);
                }
            }
            (out, c.bytes_used())
        };
        assert_eq!(run(), run());
    }
}
