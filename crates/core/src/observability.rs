//! Opt-in observability pipeline configuration.
//!
//! Everything here defaults to *off* so a default-built [`Middleware`]
//! behaves — and serializes — exactly as before: the passthrough span
//! collector keeps every span, no trace context rides on the wire, and
//! no SLO monitor runs. Each piece is enabled independently through
//! [`MiddlewareBuilder::observability`]:
//!
//! * [`ObservabilityOptions::sampler`] — swaps the collector for a
//!   bounded tail-based sampler ([`mdagent_simnet::Telemetry::sampled`]).
//! * [`ObservabilityOptions::propagate_trace_ctx`] — stamps a
//!   [`TraceContext`](crate::messages::TraceContext) into migration
//!   cargo so destination-side spans join the source's trace.
//! * [`ObservabilityOptions::slo`] — runs rolling-window objectives with
//!   multi-window burn-rate alert edges emitted as structured
//!   [`TraceEvent`](mdagent_simnet::TraceEvent)s.
//!
//! [`Middleware`]: crate::Middleware
//! [`MiddlewareBuilder::observability`]: crate::MiddlewareBuilder::observability

use mdagent_simnet::{SamplerOptions, SimDuration, SloMonitor, SloSpec};

/// Opt-in observability pipeline options (all off by default).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ObservabilityOptions {
    /// Tail-based span sampling; `None` keeps the passthrough collector.
    pub sampler: Option<SamplerOptions>,
    /// Stamp `(trace_id, parent_span_id)` into migration cargo so
    /// follow-me/clone migrations yield one causally-linked trace across
    /// source host, gateway and destination.
    pub propagate_trace_ctx: bool,
    /// SLO monitoring with burn-rate alerting; `None` disables it.
    pub slo: Option<SloOptions>,
}

impl ObservabilityOptions {
    /// Whether any part of the pipeline is enabled.
    pub fn is_enabled(&self) -> bool {
        self.sampler.is_some() || self.propagate_trace_ctx || self.slo.is_some()
    }
}

/// Targets and windows for the middleware's three built-in objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloOptions {
    /// A migration counts as latency-good when its request-to-resume time
    /// is at most this.
    pub migration_latency_target: SimDuration,
    /// Good fraction objective for migration latency.
    pub migration_latency_objective: f64,
    /// Good fraction objective for migration completion (vs. rollback).
    pub completion_objective: f64,
    /// A registry lookup counts as good when its modeled latency is at
    /// most this.
    pub lookup_latency_target: SimDuration,
    /// Good fraction objective for registry lookup latency.
    pub lookup_latency_objective: f64,
    /// Fast alerting window (sim time).
    pub short_window: SimDuration,
    /// Slow alerting window (sim time).
    pub long_window: SimDuration,
    /// Burn-rate multiple both windows must reach to fire.
    pub burn_threshold: f64,
}

impl Default for SloOptions {
    fn default() -> Self {
        SloOptions {
            // Fig. 8's largest follow-me case (8 MB) completes in ~15 s
            // of simulated time; 20 s is "seamless enough" headroom.
            migration_latency_target: SimDuration::from_millis(20_000),
            migration_latency_objective: 0.9,
            completion_objective: 0.95,
            // Registry lookup is modeled at 25 ms; an inter-space hop can
            // roughly double it.
            lookup_latency_target: SimDuration::from_millis(60),
            lookup_latency_objective: 0.99,
            short_window: SimDuration::from_millis(30_000),
            long_window: SimDuration::from_millis(300_000),
            burn_threshold: 1.0,
        }
    }
}

/// Built-in objective name: migration request-to-resume latency.
pub const SLO_MIGRATION_LATENCY: &str = "migration-latency";
/// Built-in objective name: migration completion (vs. rollback/abort).
pub const SLO_MIGRATION_COMPLETION: &str = "migration-completion";
/// Built-in objective name: registry lookup latency.
pub const SLO_REGISTRY_LOOKUP: &str = "registry-lookup";

impl SloOptions {
    /// Builds the monitor with the three built-in objectives.
    pub fn build_monitor(&self) -> SloMonitor {
        SloMonitor::new()
            .with_slo(SloSpec {
                name: SLO_MIGRATION_LATENCY,
                objective: self.migration_latency_objective,
                short_window: self.short_window,
                long_window: self.long_window,
                burn_threshold: self.burn_threshold,
            })
            .with_slo(SloSpec {
                name: SLO_MIGRATION_COMPLETION,
                objective: self.completion_objective,
                short_window: self.short_window,
                long_window: self.long_window,
                burn_threshold: self.burn_threshold,
            })
            .with_slo(SloSpec {
                name: SLO_REGISTRY_LOOKUP,
                objective: self.lookup_latency_objective,
                short_window: self.short_window,
                long_window: self.long_window,
                burn_threshold: self.burn_threshold,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_fully_off() {
        let opts = ObservabilityOptions::default();
        assert!(!opts.is_enabled());
        assert!(opts.sampler.is_none() && opts.slo.is_none());
        assert!(!opts.propagate_trace_ctx);
    }

    #[test]
    fn monitor_has_the_three_builtin_objectives() {
        let monitor = SloOptions::default().build_monitor();
        for name in [
            SLO_MIGRATION_LATENCY,
            SLO_MIGRATION_COMPLETION,
            SLO_REGISTRY_LOOKUP,
        ] {
            assert!(monitor.get(name).is_some(), "{name} registered");
        }
        assert_eq!(monitor.slos().len(), 3);
    }
}
