//! The MDAgent middleware: the world that ties all four layers together.

use mdagent_agent::{
    AclMessage, Agent, AgentId, ContainerId, LifecycleState, Performative, Platform, PlatformEnv,
    PlatformHost,
};
use mdagent_context::{
    BadgeId, BadgePosition, ContextData, ContextEvent, ContextKernel, SensorField, SubscriberId,
    UserId,
};
use mdagent_fx::FxHashMap;
use mdagent_registry::{ApplicationRecord, RegistryFederation, ResourceRecord};
use mdagent_simnet::{
    CpuFactor, EventData, FaultInjector, FaultOptions, HostId, LinkKind, SimDuration, SimRng,
    SimTime, Simulator, SloEdge, SloMonitor, SpaceId, SpanId, Telemetry, Topology, TraceCategory,
    TraceEvent,
};
use mdagent_wire::Wire;

use crate::adaptor::{adapt, AdaptationReport};
use crate::app::{AppId, AppState, Application};
use crate::binding::{rebind, BindingTarget, RebindOutcome};
use crate::component::{Component, ComponentKind, ComponentSet};
use crate::datapath::{ComponentCache, DataPathOptions};
use crate::error::CoreError;
use crate::messages::{ontologies, Cargo, ContextNotice, RetryNotice, SyncUpdate, TraceContext};
use crate::mobility::{BindingPolicy, DataStrategy, MigrationPlan, MobilityMode};
use crate::observability::{
    ObservabilityOptions, SLO_MIGRATION_COMPLETION, SLO_MIGRATION_LATENCY, SLO_REGISTRY_LOOKUP,
};
use crate::profile::{DeviceProfile, UserProfile};
use crate::snapshot::{Snapshot, SnapshotDelta, SnapshotManager};
use crate::timing::{CostModel, HostClock, PhaseTimes, RetryPolicy};

/// A completed migration, as recorded for the benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// The migrated (or cloned) application.
    pub app: AppId,
    /// Application name.
    pub app_name: String,
    /// Follow-me or clone-dispatch.
    pub mode: MobilityMode,
    /// Binding policy in force.
    pub policy: BindingPolicy,
    /// Per-phase durations.
    pub phases: PhaseTimes,
    /// Bytes shipped inside the agent.
    pub shipped_bytes: u64,
    /// Bytes left behind for remote streaming.
    pub remote_bytes: u64,
    /// Destination host.
    pub dest_host: HostId,
    /// Completion instant.
    pub completed_at: SimTime,
    /// Adaptations applied on arrival.
    pub adaptation: AdaptationReport,
}

#[derive(Debug, Clone)]
struct InFlight {
    app: AppId,
    suspend: SimDuration,
    departed_at: SimTime,
    shipped_bytes: u64,
    remote_bytes: u64,
    /// Root telemetry span for the whole migration; ends at resume.
    span: SpanId,
    /// Open `migration.migrate` child span; ends on arrival.
    migrate_span: SpanId,
    /// Transfer attempts so far (1-based; the initial send is attempt 1).
    attempts: u32,
    /// Clone-dispatch flight: never retried, aborted on loss.
    cloned: bool,
    /// Source host — rollback target.
    src_host: HostId,
    /// Destination host.
    dest_host: HostId,
    /// Instant the migration was requested (watchdog latency base).
    started_at: SimTime,
    /// Per-attempt transfer window the watchdog waits before declaring a
    /// timeout. Zero when faults are disabled (no watchdog armed).
    timeout: SimDuration,
}

/// The middleware world: platform + context kernel + registries +
/// applications, driven by one deterministic simulator.
///
/// Construct it through [`MiddlewareBuilder`]; drive scenarios with the
/// associated functions that take `(&mut Middleware, &mut Simulator<_>)`.
pub struct Middleware {
    pub(crate) platform: Platform<Middleware>,
    pub(crate) env: PlatformEnv,
    /// The context layer.
    pub kernel: ContextKernel,
    /// Per-space registries.
    pub federation: RegistryFederation,
    /// Snapshot manager (base level of every application).
    pub snapshots: SnapshotManager,
    /// Cost constants.
    pub cost_model: CostModel,
    /// Migration retry/backoff policy (only consulted when faults are on).
    pub retry: RetryPolicy,
    /// Deterministic randomness.
    pub rng: SimRng,
    apps: Vec<Application>,
    containers: FxHashMap<HostId, ContainerId>,
    device_profiles: FxHashMap<HostId, DeviceProfile>,
    user_profiles: FxHashMap<UserId, UserProfile>,
    space_primary: FxHashMap<SpaceId, HostId>,
    subscriber_agents: FxHashMap<SubscriberId, AgentId>,
    host_clocks: FxHashMap<HostId, HostClock>,
    preinstalled: FxHashMap<(u32, String), ComponentSet>,
    in_flight: FxHashMap<AgentId, InFlight>,
    /// Opt-in migration data-path optimizations (cache + delta).
    data_path: DataPathOptions,
    /// Opt-in observability pipeline configuration.
    observability: ObservabilityOptions,
    /// SLO monitor, present iff [`ObservabilityOptions::slo`] was set.
    slo: Option<SloMonitor>,
    /// Per-host caches of component encodings, keyed by content digest.
    component_caches: FxHashMap<HostId, ComponentCache>,
    /// Content-addressed store of component bytes known to the middleware;
    /// a destination resolves elided digests against it.
    content_store: FxHashMap<u64, Component>,
    /// Last snapshot sequence each host acknowledged per app — the base a
    /// delta may be computed against.
    snapshot_bases: FxHashMap<(u32, String), u64>,
    /// Digest of the cargo last deployed per app (raw id) — the idempotency
    /// guard that turns a duplicate check-in into an acknowledgement.
    deployed_digests: FxHashMap<u32, u64>,
    migration_log: Vec<MigrationReport>,
    rule_bases: FxHashMap<String, String>,
    sense_period: SimDuration,
    sensing: bool,
    /// Registered recurring probe rounds: `(host pairs, period)`. The
    /// recurring probe event carries only an index into this table, so
    /// each round schedules allocation-free.
    probe_sets: Vec<(Vec<(HostId, HostId)>, SimDuration)>,
}

impl std::fmt::Debug for Middleware {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Middleware")
            .field("apps", &self.apps.len())
            .field("hosts", &self.containers.len())
            .field("migrations", &self.migration_log.len())
            .finish()
    }
}

impl PlatformHost for Middleware {
    fn platform(&self) -> &Platform<Middleware> {
        &self.platform
    }
    fn platform_mut(&mut self) -> &mut Platform<Middleware> {
        &mut self.platform
    }
    fn env(&self) -> &PlatformEnv {
        &self.env
    }
    fn env_mut(&mut self) -> &mut PlatformEnv {
        &mut self.env
    }
}

/// Builder assembling the environment: spaces, hosts, links, sensors.
#[derive(Debug)]
pub struct MiddlewareBuilder {
    topology: Topology,
    sensor_noise_m: f64,
    beacons: Vec<(SpaceId, f64)>,
    device_profiles: FxHashMap<HostId, DeviceProfile>,
    space_primary: FxHashMap<SpaceId, HostId>,
    host_clock_skews: FxHashMap<HostId, i64>,
    seed: u64,
    sense_period: SimDuration,
    cost_model: CostModel,
    data_path: DataPathOptions,
    faults: FaultOptions,
    retry: RetryPolicy,
    observability: ObservabilityOptions,
}

impl Default for MiddlewareBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MiddlewareBuilder {
    /// Starts an empty environment.
    pub fn new() -> Self {
        MiddlewareBuilder {
            topology: Topology::new(),
            sensor_noise_m: 0.08,
            beacons: Vec::new(),
            device_profiles: FxHashMap::default(),
            space_primary: FxHashMap::default(),
            host_clock_skews: FxHashMap::default(),
            seed: 42,
            sense_period: SimDuration::from_millis(200),
            cost_model: CostModel::default(),
            data_path: DataPathOptions::default(),
            faults: FaultOptions::default(),
            retry: RetryPolicy::default(),
            observability: ObservabilityOptions::default(),
        }
    }

    /// Adds a smart space.
    pub fn space(&mut self, name: &str) -> SpaceId {
        self.topology.add_space(name)
    }

    /// Adds a host; the first host of each space becomes its primary. A
    /// beacon is mounted automatically at position 2 m.
    pub fn host(
        &mut self,
        name: &str,
        space: SpaceId,
        cpu: CpuFactor,
        profile_for: fn(HostId) -> DeviceProfile,
    ) -> HostId {
        let host = self.topology.add_host(name, space, cpu);
        self.device_profiles.insert(host, profile_for(host));
        self.space_primary.entry(space).or_insert(host);
        if !self.beacons.iter().any(|(s, _)| *s == space) {
            self.beacons.push((space, 2.0));
        }
        host
    }

    /// Connects two same-space hosts with the paper's 10 Mbps Ethernet
    /// (1 ms latency, 80% efficiency).
    ///
    /// # Errors
    ///
    /// Propagates topology errors.
    pub fn ethernet(&mut self, a: HostId, b: HostId) -> Result<(), CoreError> {
        self.topology
            .add_lan_link(a, b, SimDuration::from_millis(1), 10_000_000, 0.8)?;
        Ok(())
    }

    /// Connects two spaces' hosts with a gateway link (5 ms latency, 70%
    /// efficiency at 10 Mbps).
    ///
    /// # Errors
    ///
    /// Propagates topology errors.
    pub fn gateway(&mut self, a: HostId, b: HostId) -> Result<(), CoreError> {
        self.topology
            .add_gateway_link(a, b, SimDuration::from_millis(5), 10_000_000, 0.7)?;
        Ok(())
    }

    /// Adds a link with explicit parameters. `gateway` links must cross a
    /// space boundary; LAN links must not.
    ///
    /// # Errors
    ///
    /// Propagates topology errors.
    pub fn link(
        &mut self,
        a: HostId,
        b: HostId,
        latency: SimDuration,
        bandwidth_bps: u64,
        efficiency: f64,
        gateway: bool,
    ) -> Result<(), CoreError> {
        if gateway {
            self.topology
                .add_gateway_link(a, b, latency, bandwidth_bps, efficiency)?;
        } else {
            self.topology
                .add_lan_link(a, b, latency, bandwidth_bps, efficiency)?;
        }
        Ok(())
    }

    /// Gives a host a skewed wall clock (µs; used to exercise Fig. 7's
    /// measurement method).
    pub fn clock_skew(&mut self, host: HostId, skew_micros: i64) -> &mut Self {
        self.host_clock_skews.insert(host, skew_micros);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the sensing period.
    pub fn sense_period(&mut self, period: SimDuration) -> &mut Self {
        self.sense_period = period;
        self
    }

    /// Overrides the cost model.
    pub fn cost_model(&mut self, model: CostModel) -> &mut Self {
        self.cost_model = model;
        self
    }

    /// Enables migration data-path optimizations (component cache,
    /// delta snapshots). Off by default.
    pub fn data_path(&mut self, options: DataPathOptions) -> &mut Self {
        self.data_path = options;
        self
    }

    /// Enables network fault injection (per-link drops, outages). Off by
    /// default; when off, nothing in the migration path changes.
    pub fn faults(&mut self, options: FaultOptions) -> &mut Self {
        self.faults = options;
        self
    }

    /// Overrides the migration retry/backoff policy.
    pub fn retry_policy(&mut self, policy: RetryPolicy) -> &mut Self {
        self.retry = policy;
        self
    }

    /// Enables the observability pipeline (tail-based span sampling,
    /// wire trace-context propagation, SLO burn-rate monitoring). Off by
    /// default; when off, telemetry, wire bytes and trace output are
    /// identical to a build without this call.
    pub fn observability(&mut self, options: ObservabilityOptions) -> &mut Self {
        self.observability = options;
        self
    }

    /// Finalizes the world and a simulator to drive it.
    pub fn build(self) -> (Middleware, Simulator<Middleware>) {
        let mut field = SensorField::new(self.sensor_noise_m);
        for (space, pos) in &self.beacons {
            field.add_beacon(*space, *pos);
        }
        let mut platform = Platform::new("mdagent");
        let mut containers = FxHashMap::default();
        for host in self.topology.hosts() {
            let container = platform.create_container(host.name().to_owned(), host.id());
            containers.insert(host.id(), container);
        }
        platform.register_factory(
            "mobile-agent",
            Box::new(|bytes| {
                mdagent_wire::from_bytes::<crate::agents::MobileAgent>(bytes)
                    .map(|a| Box::new(a) as Box<dyn Agent<Middleware>>)
            }),
        );
        platform.register_factory(
            "autonomous-agent",
            Box::new(|bytes| {
                mdagent_wire::from_bytes::<crate::agents::AutonomousAgent>(bytes)
                    .map(|a| Box::new(a) as Box<dyn Agent<Middleware>>)
            }),
        );
        let mut federation = RegistryFederation::new();
        let mut host_clocks = FxHashMap::default();
        for host in self.topology.hosts() {
            let skew = self.host_clock_skews.get(&host.id()).copied().unwrap_or(0);
            host_clocks.insert(host.id(), HostClock::with_skew(skew));
        }
        for idx in 0..self.topology.space_count() {
            federation.add_center(SpaceId(idx as u32));
        }
        let mut env = PlatformEnv::new(self.topology);
        env.faults = FaultInjector::new(self.faults, self.seed ^ 0xFAD7_5EED);
        if let Some(sampler) = self.observability.sampler {
            env.telemetry = Telemetry::sampled(sampler);
        }
        let slo = self.observability.slo.map(|opts| opts.build_monitor());
        let world = Middleware {
            platform,
            env,
            kernel: ContextKernel::new(field),
            federation,
            snapshots: SnapshotManager::new(8),
            cost_model: self.cost_model,
            retry: self.retry,
            rng: SimRng::seed_from(self.seed),
            apps: Vec::new(),
            containers,
            device_profiles: self.device_profiles,
            user_profiles: FxHashMap::default(),
            space_primary: self.space_primary,
            subscriber_agents: FxHashMap::default(),
            host_clocks,
            preinstalled: FxHashMap::default(),
            in_flight: FxHashMap::default(),
            data_path: self.data_path,
            observability: self.observability,
            slo,
            component_caches: FxHashMap::default(),
            content_store: FxHashMap::default(),
            snapshot_bases: FxHashMap::default(),
            deployed_digests: FxHashMap::default(),
            migration_log: Vec::new(),
            rule_bases: FxHashMap::from_iter([(
                "default".to_owned(),
                crate::rules::PAPER_RULES.to_owned(),
            )]),
            sense_period: self.sense_period,
            sensing: false,
            probe_sets: Vec::new(),
        };
        (world, Simulator::new())
    }
}

impl Middleware {
    /// Starts building an environment.
    pub fn builder() -> MiddlewareBuilder {
        MiddlewareBuilder::new()
    }

    // ---- accessors ---------------------------------------------------------

    /// The application with the given id.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownApp`] for bad ids.
    pub fn app(&self, id: AppId) -> Result<&Application, CoreError> {
        self.apps
            .get(id.0 as usize)
            .ok_or(CoreError::UnknownApp(id))
    }

    /// Mutable application access.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownApp`] for bad ids.
    pub fn app_mut(&mut self, id: AppId) -> Result<&mut Application, CoreError> {
        self.apps
            .get_mut(id.0 as usize)
            .ok_or(CoreError::UnknownApp(id))
    }

    /// Number of deployed applications (including replicas).
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// All applications.
    pub fn apps(&self) -> impl Iterator<Item = &Application> {
        self.apps.iter()
    }

    /// The agent container on a host.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoContainer`] when the host has none.
    pub fn container_on(&self, host: HostId) -> Result<ContainerId, CoreError> {
        self.containers
            .get(&host)
            .copied()
            .ok_or(CoreError::NoContainer(host))
    }

    /// The primary (migration-target) host of a space.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoHostInSpace`] when the space has no hosts.
    pub fn primary_host(&self, space: SpaceId) -> Result<HostId, CoreError> {
        self.space_primary
            .get(&space)
            .copied()
            .ok_or(CoreError::NoHostInSpace(space))
    }

    /// The space a host belongs to.
    ///
    /// # Errors
    ///
    /// Propagates topology errors.
    pub fn space_of(&self, host: HostId) -> Result<SpaceId, CoreError> {
        Ok(self.env.topology.host(host)?.space())
    }

    /// The device profile of a host (PC default when not configured).
    pub fn device_profile(&self, host: HostId) -> DeviceProfile {
        self.device_profiles
            .get(&host)
            .cloned()
            .unwrap_or_else(|| DeviceProfile::pc(host))
    }

    /// The wall clock of a host (synchronized default).
    pub fn host_clock(&self, host: HostId) -> HostClock {
        self.host_clocks
            .get(&host)
            .copied()
            .unwrap_or_else(HostClock::synchronized)
    }

    /// All completed migrations, oldest first.
    pub fn migration_log(&self) -> &[MigrationReport] {
        &self.migration_log
    }

    /// The shared trace.
    pub fn trace(&self) -> &mdagent_simnet::Trace {
        &self.env.trace
    }

    /// The shared metrics.
    pub fn metrics(&self) -> &mdagent_simnet::MetricsRegistry {
        &self.env.metrics
    }

    /// The network fault injector.
    pub fn faults(&self) -> &FaultInjector {
        &self.env.faults
    }

    /// Mutable fault-injector access (schedule outages mid-run).
    pub fn faults_mut(&mut self) -> &mut FaultInjector {
        &mut self.env.faults
    }

    /// Number of migrations currently in flight (should drain to zero).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the registry of `space` is reachable from `from` under the
    /// current fault regime. With faults off this is always true; a
    /// gateway outage severs every inter-space registry.
    pub fn registry_reachable(&self, from: HostId, space: SpaceId) -> bool {
        if !self.env.faults.enabled() {
            return true;
        }
        let Ok(primary) = self.primary_host(space) else {
            return false;
        };
        let Ok(links) = self.env.topology.route(from, primary) else {
            return false;
        };
        if self.env.faults.gateway_outage() {
            let crosses_gateway = links.iter().any(|l| {
                self.env
                    .topology
                    .link(*l)
                    .is_some_and(|link| link.kind() == LinkKind::Gateway)
            });
            if crosses_gateway {
                return false;
            }
        }
        true
    }

    /// The shared telemetry collector.
    pub fn telemetry(&self) -> &mdagent_simnet::Telemetry {
        &self.env.telemetry
    }

    /// Replaces the telemetry collector — pass
    /// [`mdagent_simnet::Telemetry::disabled`] to turn span collection
    /// into a no-op for overhead-sensitive runs.
    pub fn set_telemetry(&mut self, telemetry: mdagent_simnet::Telemetry) {
        self.env.telemetry = telemetry;
    }

    /// The observability configuration this world was built with.
    pub fn observability(&self) -> &ObservabilityOptions {
        &self.observability
    }

    /// The SLO monitor, present iff SLO monitoring was enabled.
    pub fn slo_monitor(&self) -> Option<&SloMonitor> {
        self.slo.as_ref()
    }

    /// Feeds one good/bad event into the named SLO and emits a structured
    /// trace event (plus an `slo.alerts_*` counter) on alerting-state
    /// edges. A no-op unless SLO monitoring is enabled.
    fn slo_record(world: &mut Middleware, now: SimTime, name: &'static str, good: bool) {
        let Some(monitor) = world.slo.as_mut() else {
            return;
        };
        let Some(signal) = monitor.record(name, now, good) else {
            return;
        };
        let (counter, event) = match signal.edge {
            SloEdge::Fired => (
                "slo.alerts_fired",
                TraceEvent::SloBurnAlert {
                    slo: signal.name.to_owned(),
                    short_burn_milli: signal.short_burn_milli,
                    long_burn_milli: signal.long_burn_milli,
                },
            ),
            SloEdge::Recovered => (
                "slo.alerts_recovered",
                TraceEvent::SloRecovered {
                    slo: signal.name.to_owned(),
                },
            ),
        };
        world.env.metrics.incr_static(counter);
        world
            .env
            .trace
            .record_event(now, TraceCategory::Agent, event);
    }

    /// Feeds a completed migration into the completion and latency SLOs.
    fn slo_migration_completed(world: &mut Middleware, now: SimTime, latency: SimDuration) {
        let Some(opts) = world.observability.slo else {
            return;
        };
        Middleware::slo_record(world, now, SLO_MIGRATION_COMPLETION, true);
        Middleware::slo_record(
            world,
            now,
            SLO_MIGRATION_LATENCY,
            latency <= opts.migration_latency_target,
        );
    }

    /// Feeds a modeled registry lookup latency into the lookup SLO.
    pub(crate) fn slo_observe_lookup(world: &mut Middleware, now: SimTime, latency: SimDuration) {
        let Some(opts) = world.observability.slo else {
            return;
        };
        world
            .env
            .metrics
            .observe_static("registry.lookup_latency", latency);
        Middleware::slo_record(
            world,
            now,
            SLO_REGISTRY_LOOKUP,
            latency <= opts.lookup_latency_target,
        );
    }

    /// Installs a named rule base after validating that it parses (the AA
    /// manager's rule-manager role, §4.1). Autonomous agents reference
    /// rule bases by name via
    /// [`AutonomousAgent::with_rule_base`](crate::AutonomousAgent::with_rule_base).
    ///
    /// # Errors
    ///
    /// Propagates rule parse errors; nothing is installed on failure.
    pub fn install_rule_base(
        &mut self,
        name: impl Into<String>,
        text: impl Into<String>,
    ) -> Result<(), mdagent_ontology::parser::ParseError> {
        let text = text.into();
        let mut scratch = mdagent_ontology::Graph::new();
        mdagent_ontology::parser::parse_rules(&text, &mut scratch)?;
        self.rule_bases.insert(name.into(), text);
        Ok(())
    }

    /// The text of a named rule base; unknown names fall back to the
    /// shipped Fig. 6 default.
    pub fn rule_base(&self, name: &str) -> &str {
        self.rule_bases
            .get(name)
            .map(String::as_str)
            .unwrap_or(crate::rules::PAPER_RULES)
    }

    /// A stored user profile (empty default).
    pub fn user_profile(&self, user: UserId) -> UserProfile {
        self.user_profiles
            .get(&user)
            .cloned()
            .unwrap_or_else(|| UserProfile::new(user))
    }

    // ---- environment setup --------------------------------------------------

    /// Registers a user: profile, badge binding and initial placement.
    pub fn attach_user(
        &mut self,
        profile: UserProfile,
        badge: BadgeId,
        space: SpaceId,
        position_m: f64,
    ) {
        let user = profile.user();
        self.kernel.fusion.bind_badge(badge, user);
        self.kernel
            .field
            .place_badge(badge, BadgePosition { space, position_m });
        self.user_profiles.insert(user, profile);
    }

    /// Moves a user's badge (scenario ground truth); the sensing loop will
    /// notice within a few rounds.
    pub fn move_user(&mut self, badge: BadgeId, space: SpaceId, position_m: f64) {
        self.kernel
            .field
            .place_badge(badge, BadgePosition { space, position_m });
    }

    /// Declares that `host` has `components` of application `app_name`
    /// preinstalled, and registers that fact in the host's space registry.
    ///
    /// # Errors
    ///
    /// Propagates topology errors for unknown hosts.
    pub fn provision(
        &mut self,
        host: HostId,
        app_name: &str,
        components: ComponentSet,
    ) -> Result<(), CoreError> {
        let space = self.space_of(host)?;
        let mut record = ApplicationRecord::new(app_name, space, host);
        for kind in [
            ComponentKind::Logic,
            ComponentKind::Presentation,
            ComponentKind::Data,
            ComponentKind::Resource,
        ] {
            if components.has_kind(kind) {
                record = record.with_component(kind.tag());
            }
        }
        if self.data_path.component_cache {
            for component in components.iter() {
                let digest = mdagent_wire::digest_of(component).as_u64();
                record.set_digest(component.name.clone(), digest);
                self.remember_content(host, digest, component);
            }
        }
        self.federation
            .add_center(space)
            .register_application(record);
        self.preinstalled
            .insert((host.0, app_name.to_owned()), components);
        Ok(())
    }

    /// Registers a shareable resource in its space's registry center
    /// (creating the center if needed). Its ontology facts flush lazily
    /// at the next semantic lookup.
    pub fn register_space_resource(&mut self, record: ResourceRecord) {
        self.federation
            .add_center(record.space)
            .register_resource(record);
    }

    /// Deregisters a resource from `space`'s registry and repairs the
    /// ontology closure incrementally (no full re-materialization),
    /// under an `aa.retract` telemetry span; the modeled repair cost
    /// lands in the `reasoner.retract_latency` histogram.
    pub fn deregister_space_resource(&mut self, space: SpaceId, name: &str, now: SimTime) -> bool {
        let Some(center) = self.federation.center_mut(space) else {
            return false;
        };
        if !center.deregister_resource(name) {
            return false;
        }
        self.record_retract_flush(space, now);
        true
    }

    /// Expires lapsed resource leases in every space registry. Each space
    /// with expiries gets one incremental repair and one `aa.retract`
    /// span. Returns the number of records expired.
    pub fn expire_resource_leases(&mut self, now: SimTime) -> usize {
        let mut expired = 0;
        for space in self.federation.spaces() {
            let Some(center) = self.federation.center_mut(space) else {
                continue;
            };
            let n = center.expire_leases(now.as_micros());
            if n > 0 {
                expired += n;
                self.record_retract_flush(space, now);
            }
        }
        expired
    }

    /// Flushes `space`'s pending deltas now and emits the `aa.retract`
    /// span plus latency histogram from the reasoner's repair counters.
    fn record_retract_flush(&mut self, space: SpaceId, now: SimTime) {
        let Some(center) = self.federation.center_mut(space) else {
            return;
        };
        center.flush_deltas();
        let stats = center.last_retract_stats().clone();
        let cost = self.cost_model.retraction;
        let tel = &mut self.env.telemetry;
        let span = tel.record_span("aa.retract", None, now, now + cost);
        tel.attr(span, "space", space.0);
        tel.attr(span, "requested", stats.requested);
        tel.attr(span, "retracted_base", stats.retracted_base);
        tel.attr(span, "overdeleted", stats.overdeleted);
        tel.attr(span, "rederived", stats.rederived);
        tel.attr(span, "waves", stats.waves);
        tel.attr(span, "removed", stats.removed);
        self.env.metrics.incr_static("aa.retract");
        self.env
            .metrics
            .observe_hist_static("reasoner.retract_latency", cost);
    }

    /// Records that `host` holds the bytes of `component` (content store +
    /// per-host LRU cache). No-op when the component cache is disabled.
    fn remember_content(&mut self, host: HostId, digest: u64, component: &Component) {
        if !self.data_path.component_cache {
            return;
        }
        let bytes = component.encoded_len() as u64;
        self.content_store
            .entry(digest)
            .or_insert_with(|| component.clone());
        self.component_caches.entry(host).or_default().insert(
            digest,
            bytes,
            self.data_path.cache_capacity_bytes,
        );
    }

    /// Whether `host` already holds content with this digest — via its LRU
    /// cache or a registry record advertising the digest for its space.
    fn host_holds_content(&self, host: HostId, digest: u64) -> bool {
        if self
            .component_caches
            .get(&host)
            .is_some_and(|c| c.contains(digest))
        {
            return true;
        }
        let Ok(space) = self.space_of(host) else {
            return false;
        };
        self.federation.center(space).is_some_and(|center| {
            center
                .applications()
                .any(|r| r.host == host && r.has_digest(digest))
        })
    }

    /// Components of `app_name` preinstalled on `host` (empty default).
    pub fn preinstalled_components(&self, host: HostId, app_name: &str) -> ComponentSet {
        self.preinstalled
            .get(&(host.0, app_name.to_owned()))
            .cloned()
            .unwrap_or_default()
    }

    // ---- application deployment ---------------------------------------------

    /// Deploys an application on a host and spawns its mobile agent.
    ///
    /// # Errors
    ///
    /// Container/topology/agent errors.
    pub fn deploy_app(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        name: &str,
        host: HostId,
        components: ComponentSet,
        profile: UserProfile,
    ) -> Result<AppId, CoreError> {
        let container = world.container_on(host)?;
        let id = AppId(world.apps.len() as u32);
        let mut app = Application::new(id, name, host);
        app.components = components;
        app.user_profile = profile;
        world.apps.push(app);
        let local_name = format!("ma-{name}-{}", id.0);
        let ma = Platform::spawn(
            world,
            sim,
            container,
            &local_name,
            Box::new(crate::agents::MobileAgent::new(id)),
        )?;
        world.platform.df_mut().register(
            &ma,
            mdagent_agent::ServiceDescription::new("mobile-agent", name),
        );
        world.apps[id.0 as usize].mobile_agent = Some(ma);
        Middleware::register_app_record(world, id)?;
        let now = sim.now();
        world.env.trace.record_event(
            now,
            TraceCategory::Application,
            TraceEvent::Deployed {
                app_name: name.to_owned(),
                app: id.to_string(),
                host: host.to_string(),
            },
        );
        Ok(id)
    }

    fn register_app_record(world: &mut Middleware, id: AppId) -> Result<(), CoreError> {
        let (name, host, tags, requirements) = {
            let app = world.app(id)?;
            (
                app.name.clone(),
                app.host,
                app.component_tags(),
                app.requirements.clone(),
            )
        };
        let space = world.space_of(host)?;
        let mut record = ApplicationRecord::new(&name, space, host);
        for tag in tags {
            record = record.with_component(tag);
        }
        for (k, v) in requirements {
            record = record.with_requirement(k, v);
        }
        if world.data_path.component_cache {
            let digests: Vec<(String, u64)> = world
                .app(id)?
                .components
                .iter()
                .map(|c| (c.name.clone(), mdagent_wire::digest_of(c).as_u64()))
                .collect();
            for (name, digest) in digests {
                record.set_digest(name, digest);
            }
        }
        world
            .federation
            .add_center(space)
            .register_application(record);
        Ok(())
    }

    /// Sets an application's minimum device requirements and refreshes its
    /// registry record. The AA refuses destinations whose device profile
    /// does not satisfy them (paper §4.3: the AA checks "whether the
    /// devices are compatible").
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownApp`] for bad ids.
    pub fn set_app_requirements(
        world: &mut Middleware,
        id: AppId,
        requirements: Vec<(String, String)>,
    ) -> Result<(), CoreError> {
        world.app_mut(id)?.requirements = requirements;
        Middleware::register_app_record(world, id)
    }

    /// Spawns an autonomous agent watching a user on behalf of an app.
    ///
    /// # Errors
    ///
    /// Container/agent errors.
    pub fn spawn_autonomous_agent(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        host: HostId,
        agent: crate::agents::AutonomousAgent,
    ) -> Result<AgentId, CoreError> {
        let container = world.container_on(host)?;
        let local_name = format!("aa-u{}-a{}", agent.user_raw, agent.app_raw);
        let id = Platform::spawn(world, sim, container, &local_name, Box::new(agent))?;
        let sub = world.kernel.bus.subscribe("context.*");
        world.platform.df_mut().register(
            &id,
            mdagent_agent::ServiceDescription::new("autonomous-agent", "context-watcher"),
        );
        world.subscriber_agents.insert(sub, id.clone());
        Ok(id)
    }

    // ---- sensing loop ---------------------------------------------------------

    /// Starts the recurring sensing loop (idempotent).
    pub fn start_sensing(world: &mut Middleware, sim: &mut Simulator<Middleware>) {
        if world.sensing {
            return;
        }
        world.sensing = true;
        sim.schedule_fn_in(world.sense_period, Middleware::sense_event);
    }

    /// One round of the recurring sensing loop. A plain function-pointer
    /// event (the period lives in the world), so each round is
    /// allocation-free no matter how many sensors fire.
    fn sense_event(world: &mut Middleware, sim: &mut Simulator<Middleware>) {
        Middleware::sense_once(world, sim);
        sim.schedule_fn_in(world.sense_period, Middleware::sense_event);
    }

    fn sense_once(world: &mut Middleware, sim: &mut Simulator<Middleware>) {
        let now = sim.now();
        let mut rng = world.rng.fork(now.as_micros());
        let results = world.kernel.sense_round(now, &mut rng);
        for (event, outcome) in results {
            world.env.trace.record_event(
                now,
                TraceCategory::Context,
                TraceEvent::ContextEvent {
                    description: format!("{:?}", event.data),
                    subscribers: outcome.subscribers.len(),
                },
            );
            Middleware::route_event(world, sim, &event, &outcome.subscribers);
        }
        world
            .env
            .metrics
            .set_gauge_static("sim.event_queue", "scheduler", sim.pending() as u64);
    }

    /// Publishes an externally produced context event (user indications,
    /// probes) and routes it to subscribed agents.
    pub fn publish_context(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        data: ContextData,
    ) {
        let now = sim.now();
        // Preference context also updates the stored (static) user profile.
        if let ContextData::Preference { user, key, value } = &data {
            world
                .user_profiles
                .entry(*user)
                .or_insert_with(|| UserProfile::new(*user))
                .set_preference(key.clone(), value.clone());
        }
        let event = ContextEvent::new(now, data);
        world.env.trace.record_event(
            now,
            TraceCategory::Context,
            TraceEvent::Published {
                description: format!("{:?}", event.data),
            },
        );
        // Trace and notice are derived before publish so the event moves
        // into the kernel without a clone.
        let notice = ContextNotice::from_event(&event);
        let outcome = world.kernel.publish(event);
        Middleware::route_notice(world, sim, notice, &outcome.subscribers);
    }

    fn route_event(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        event: &ContextEvent,
        subscribers: &[SubscriberId],
    ) {
        let notice = ContextNotice::from_event(event);
        Middleware::route_notice(world, sim, notice, subscribers);
    }

    fn route_notice(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        notice: ContextNotice,
        subscribers: &[SubscriberId],
    ) {
        let kernel_id = AgentId::new("context-kernel", world.platform.name().to_owned());
        for sub in subscribers {
            let Some(agent) = world.subscriber_agents.get(sub).cloned() else {
                continue;
            };
            let msg = AclMessage::new(Performative::Inform, kernel_id.clone(), agent)
                .with_ontology(ontologies::CONTEXT)
                .with_payload(&notice);
            Platform::send(world, sim, msg);
        }
    }

    // ---- network utilities ------------------------------------------------------

    /// Measured round-trip time between two hosts for a 1 kB probe, in
    /// milliseconds. Also published as a context event by callers that
    /// probe explicitly.
    pub fn response_time_ms(&self, from: HostId, to: HostId) -> f64 {
        match self
            .env
            .topology
            .transfer_time(from, to, CostModel::PROBE_PAYLOAD_BYTES)
        {
            Ok(one_way) => one_way.as_millis_f64() * 2.0,
            Err(_) => f64::INFINITY,
        }
    }

    /// Starts recurring network probes between the given host pairs; each
    /// round measures the response time and publishes it as a context
    /// event (the "network connectivity, latency" sensors of §4.1).
    pub fn start_network_probes(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        pairs: Vec<(HostId, HostId)>,
        period: SimDuration,
    ) {
        let idx = world.probe_sets.len() as u64;
        world.probe_sets.push((pairs, period));
        sim.schedule_data_in(period, Middleware::probe_event, EventData::one(idx));
    }

    /// One probe round for the registered pair set `d.a`. The pair list is
    /// taken out of the world while probing (publishing needs `&mut`), then
    /// restored — no per-round clone.
    fn probe_event(world: &mut Middleware, sim: &mut Simulator<Middleware>, d: EventData) {
        let idx = d.a as usize;
        let Some(entry) = world.probe_sets.get_mut(idx) else {
            return;
        };
        let pairs = std::mem::take(&mut entry.0);
        let period = entry.1;
        for &(from, to) in &pairs {
            let millis = world.response_time_ms(from, to);
            if millis.is_finite() {
                Middleware::publish_context(
                    world,
                    sim,
                    ContextData::ResponseTime { from, to, millis },
                );
                world.env.metrics.incr_static("probe.rounds");
            }
        }
        if let Some(entry) = world.probe_sets.get_mut(idx) {
            entry.0 = pairs;
        }
        sim.schedule_data_in(period, Middleware::probe_event, EventData::one(d.a));
    }

    // ---- state updates & replica sync ---------------------------------------------

    /// Updates application state through the coordinator; local observers
    /// are notified synchronously and replica apps receive sync messages.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownApp`] for bad ids.
    pub fn update_app_state(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        id: AppId,
        key: &str,
        value: &str,
    ) -> Result<u64, CoreError> {
        let (version, links, sender) = {
            let app = world.app_mut(id)?;
            let version = app.coordinator.set_state(key, value);
            // Local observers see it immediately (observer pattern).
            let names: Vec<String> = app.coordinator.stale_observers();
            for name in names {
                app.coordinator.mark_seen(&name, version);
            }
            (
                version,
                app.coordinator.sync_links(),
                app.mobile_agent.clone(),
            )
        };
        let Some(sender) = sender else {
            return Ok(version);
        };
        for link in links {
            let Ok(linked) = world.app(link) else {
                continue;
            };
            let Some(receiver) = linked.mobile_agent.clone() else {
                continue;
            };
            let update = SyncUpdate {
                app_raw: link.0,
                key: key.to_owned(),
                value: value.to_owned(),
                version,
            };
            let msg = AclMessage::new(Performative::Inform, sender.clone(), receiver)
                .with_ontology(ontologies::SYNC)
                .with_payload(&update);
            Platform::send(world, sim, msg);
        }
        world.env.metrics.incr_static("sync.updates_sent");
        Ok(version)
    }

    /// Applies a replica sync update (invoked by the receiving MA).
    pub(crate) fn apply_sync(world: &mut Middleware, update: &SyncUpdate) {
        let Ok(app) = world.app_mut(AppId(update.app_raw)) else {
            return;
        };
        if app
            .coordinator
            .apply_remote(&update.key, &update.value, update.version)
        {
            let names: Vec<String> = app.coordinator.stale_observers();
            let version = app.coordinator.version();
            for name in names {
                app.coordinator.mark_seen(&name, version);
            }
            world.env.metrics.incr_static("sync.updates_applied");
        } else {
            world.env.metrics.incr_static("sync.updates_stale");
        }
    }

    /// Pre-stages an application's logic and presentation components at a
    /// host ahead of a predicted migration (§3.4: "prediction
    /// functionalities should also be provided to improve the
    /// performance"). The copy travels at normal network cost in the
    /// background; once landed it counts as preinstalled, so a later
    /// adaptive migration ships only the application states.
    ///
    /// Returns the simulated transfer duration.
    ///
    /// # Errors
    ///
    /// Unknown apps/hosts or unreachable destinations.
    pub fn prestage(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        app_id: AppId,
        dest_host: HostId,
    ) -> Result<SimDuration, CoreError> {
        let (name, src_host, staged) = {
            let app = world.app(app_id)?;
            let staged: ComponentSet = app
                .components
                .iter()
                .filter(|c| matches!(c.kind, ComponentKind::Logic | ComponentKind::Presentation))
                .cloned()
                .collect();
            (app.name.clone(), app.host, staged)
        };
        if staged.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let bytes = staged.wire_len();
        let cost = world
            .env
            .topology
            .transfer_time(src_host, dest_host, bytes)?;
        let now = sim.now();
        world.env.trace.record_event(
            now,
            TraceCategory::Agent,
            TraceEvent::PreStage {
                bytes,
                app_name: name.clone(),
                dest_host: dest_host.to_string(),
            },
        );
        world.env.metrics.incr_static("prestage.transfers");
        world.env.metrics.incr_by_static("prestage.bytes", bytes);
        sim.schedule_in(cost, move |w, _sim| {
            let mut existing = w.preinstalled_components(dest_host, &name);
            existing.merge(staged);
            let _ = w.provision(dest_host, &name, existing);
        });
        Ok(cost)
    }

    /// Plans and starts a migration immediately, bypassing the AA's
    /// context trigger (used by scenario drivers and the benchmarks; the
    /// pipeline from suspension onward is identical).
    ///
    /// # Errors
    ///
    /// [`CoreError::Registry`] when no plan can be built, plus the
    /// pipeline's own errors.
    pub fn migrate_now(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        app: AppId,
        dest_host: HostId,
        mode: MobilityMode,
        policy: BindingPolicy,
    ) -> Result<(), CoreError> {
        let plan = crate::agents::plan_migration(world, app, dest_host, mode, policy)
            .ok_or_else(|| CoreError::Registry("no migration plan could be built".into()))?;
        let ma = world
            .app(app)?
            .mobile_agent
            .clone()
            .ok_or(CoreError::NoMobileAgent(app))?;
        Middleware::suspend_and_wrap(world, sim, plan, ma)
    }

    // ---- the migration pipeline -----------------------------------------------------

    /// Phase 1 (paper Fig. 4): the coordinator suspends the application,
    /// the snapshot manager records its states, and after the simulated
    /// suspension cost the wrapped cargo is handed to the mobile agent.
    ///
    /// For clone-dispatch the application keeps running; the snapshot is
    /// taken from the live state ("the application clone first").
    ///
    /// # Errors
    ///
    /// [`CoreError`] variants for unknown apps/hosts or bad states.
    pub fn suspend_and_wrap(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        plan: MigrationPlan,
        ma: AgentId,
    ) -> Result<(), CoreError> {
        let app_id = plan.app();
        let now = sim.now();
        // Validate reachability up front: failing here leaves the
        // application untouched instead of stranding it suspended.
        {
            let src_host = world.app(app_id)?.host;
            world.env.topology.transfer_time(
                src_host,
                plan.dest_host(),
                CostModel::CONTROL_PAYLOAD_BYTES,
            )?;
            world.container_on(plan.dest_host())?;
        }
        let (snapshot, components, remote_bytes, src_host) = {
            // Split borrows so the snapshot is captured straight from the
            // live application instead of a full clone of it.
            let Middleware {
                snapshots, apps, ..
            } = &mut *world;
            let app = apps
                .get(app_id.0 as usize)
                .ok_or(CoreError::UnknownApp(app_id))?;
            if app.state != AppState::Running {
                return Err(CoreError::BadAppState(app_id, "running"));
            }
            let src_host = app.host;
            let shipped = app.components.subset(&plan.ship_components);
            let remote_bytes = match plan.data_strategy {
                DataStrategy::RemoteStream => app.components.bytes_of_kind(ComponentKind::Data),
                _ => 0,
            };
            (snapshots.capture(app), shipped, remote_bytes, src_host)
        };

        if plan.mode == MobilityMode::FollowMe {
            let app = world.app_mut(app_id)?;
            app.state = AppState::Suspended;
            world.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::Suspend {
                    app: app_id.to_string(),
                },
            );
        } else {
            world.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::SnapshotClone {
                    app: app_id.to_string(),
                },
            );
        }

        // Content-addressed elision: components whose bytes the destination
        // already holds travel as digests only.
        let dest_host = plan.dest_host();
        let mut elided: Vec<(String, u64)> = Vec::new();
        let mut bytes_saved_cache: u64 = 0;
        let components = if world.data_path.component_cache {
            let mut kept = ComponentSet::new();
            for component in components.iter() {
                let digest = mdagent_wire::digest_of(component).as_u64();
                let encoded = component.encoded_len() as u64;
                world
                    .content_store
                    .entry(digest)
                    .or_insert_with(|| component.clone());
                if world.host_holds_content(dest_host, digest) {
                    bytes_saved_cache += encoded;
                    elided.push((component.name.clone(), digest));
                    world.env.metrics.incr_static("migration.cache_hits");
                } else {
                    world.env.metrics.incr_static("migration.cache_misses");
                    kept.insert(component.clone());
                }
            }
            kept
        } else {
            components
        };
        if bytes_saved_cache > 0 {
            world
                .env
                .metrics
                .incr_by_static("migration.bytes_saved_cache", bytes_saved_cache);
        }

        // Delta snapshots: when the destination acknowledged an earlier
        // snapshot, ship only the encoding diff against it (if smaller).
        let mut bytes_saved_delta: u64 = 0;
        let mut snapshot_delta = None;
        let mut ship_snapshot = snapshot;
        if world.data_path.delta_snapshots {
            let key = (dest_host.0, ship_snapshot.app_name.clone());
            if let Some(base) = world
                .snapshot_bases
                .get(&key)
                .and_then(|seq| world.snapshots.by_sequence(&ship_snapshot.app_name, *seq))
            {
                let delta = SnapshotDelta::between(base, &ship_snapshot);
                let header = ship_snapshot.header();
                let delta_len = delta.wire_len() + header.wire_len();
                let full_len = ship_snapshot.wire_len();
                if delta_len < full_len {
                    bytes_saved_delta = full_len - delta_len;
                    snapshot_delta = Some(delta);
                    ship_snapshot = header;
                    world
                        .env
                        .metrics
                        .incr_by_static("migration.bytes_saved_delta", bytes_saved_delta);
                }
            }
        }

        let cargo = Cargo {
            plan,
            snapshot: ship_snapshot,
            components,
            remote_bytes,
            elided,
            snapshot_delta,
            trace_ctx: None,
        };
        let wrapped_bytes = cargo.wire_len();
        let cpu = world.env.topology.host(src_host)?.cpu();
        let suspend_cost = cpu.scale(world.cost_model.suspend_cost(wrapped_bytes));
        world
            .env
            .metrics
            .observe_static("migration.suspend", suspend_cost);
        // Root span for the whole migration; one child per pipeline phase.
        // Detached: it rides the in-flight record and closes at arrival
        // or rollback.
        let root = world.env.telemetry.open("migration", None, now).detach();
        {
            // Raw ids as integers: keeps this hot path free of formatting
            // allocations (the exporters render them).
            let tel = &mut world.env.telemetry;
            tel.attr(root, "app", u64::from(app_id.0));
            tel.attr(root, "mode", cargo.plan.mode.tag());
            tel.attr(root, "src_host", u64::from(src_host.0));
            tel.attr(root, "dest_host", u64::from(cargo.plan.dest_host().0));
            tel.attr(root, "bytes", wrapped_bytes);
            if bytes_saved_cache > 0 {
                tel.attr(root, "bytes_saved_cache", bytes_saved_cache);
            }
            if bytes_saved_delta > 0 {
                tel.attr(root, "bytes_saved_delta", bytes_saved_delta);
            }
            let suspend_span =
                tel.record_span("migration.suspend", Some(root), now, now + suspend_cost);
            let _ = suspend_span;
        }
        // Per-attempt transfer window: setup + estimated pipelined transfer
        // plus the policy's slack. Only computed (and a watchdog armed)
        // when faults are on, so fault-free runs schedule nothing extra.
        let faults_on = world.env.faults.enabled();
        let attempt_timeout = if faults_on {
            let transfer = world
                .env
                .topology
                .pipelined_transfer_time(
                    src_host,
                    dest_host,
                    wrapped_bytes + mdagent_agent::AGENT_FRAME_BYTES,
                )
                .unwrap_or(SimDuration::ZERO);
            mdagent_agent::MIGRATION_SETUP + transfer + world.retry.timeout_margin
        } else {
            SimDuration::ZERO
        };
        world.in_flight.insert(
            ma.clone(),
            InFlight {
                app: app_id,
                suspend: suspend_cost,
                departed_at: now, // refined when cargo is handed over
                shipped_bytes: wrapped_bytes,
                remote_bytes,
                span: root,
                migrate_span: SpanId::DISABLED,
                attempts: 1,
                cloned: cargo.plan.mode != MobilityMode::FollowMe,
                src_host,
                dest_host,
                started_at: now,
                timeout: attempt_timeout,
            },
        );
        // Clone flights get their own watchdog at dispatch time (the
        // source flight is transient bookkeeping); follow-me is guarded
        // from the start.
        if faults_on && cargo.plan.mode == MobilityMode::FollowMe {
            Middleware::arm_watchdog(sim, ma.clone(), 1, suspend_cost + attempt_timeout);
        }
        let kernel_name = world.platform.name().to_owned();
        let propagate_ctx = world.observability.propagate_trace_ctx;
        sim.schedule_in(suspend_cost, move |w, sim| {
            let mut cargo = cargo;
            let now = sim.now();
            let root = match w.in_flight.get_mut(&ma) {
                Some(flight) => {
                    flight.departed_at = now;
                    Some(flight.span)
                }
                None => None,
            };
            if let Some(root) = root {
                let tel = &mut w.env.telemetry;
                let wrap_span = tel.record_span("migration.wrap", Some(root), now, now);
                tel.attr(wrap_span, "bytes", wrapped_bytes);
                // Detached: closed when the transfer lands (or rolls back).
                let migrate_span = tel.open("migration.migrate", Some(root), now).detach();
                if let Some(flight) = w.in_flight.get_mut(&ma) {
                    flight.migrate_span = migrate_span;
                }
                // Stamp the trace context onto the wire so the
                // destination parents its check-in spans to the
                // in-transit span of *this* trace.
                if propagate_ctx && !root.is_disabled() && !migrate_span.is_disabled() {
                    cargo.trace_ctx = Some(TraceContext {
                        trace_id: u64::from(root.raw()),
                        parent_span: u64::from(migrate_span.raw()),
                    });
                }
            }
            w.env.trace.record_event(
                now,
                TraceCategory::Agent,
                TraceEvent::Wrap {
                    bytes: wrapped_bytes,
                },
            );
            let msg = AclMessage::new(
                Performative::Inform,
                AgentId::new("middleware", kernel_name),
                ma.clone(),
            )
            .with_ontology(ontologies::CARGO)
            .with_payload(&cargo);
            Platform::send(w, sim, msg);
        });
        Ok(())
    }

    /// Records a destination-side span parented to the trace context the
    /// cargo carried over the wire (when propagation stamped one), so the
    /// arrival joins the source host's migration trace causally instead
    /// of starting a disconnected one.
    fn ctx_span(
        world: &mut Middleware,
        ctx: Option<TraceContext>,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        let Some(ctx) = ctx else { return };
        let parent = u32::try_from(ctx.parent_span)
            .ok()
            .map(SpanId::from_raw)
            .filter(|p| !p.is_disabled());
        let tel = &mut world.env.telemetry;
        let span = tel.record_span(name, parent, start, end);
        tel.attr(span, "trace_id", ctx.trace_id);
    }

    /// Phase 3 for follow-me: the MA has checked in at the destination;
    /// restore, rebind, adapt and resume the application there.
    pub(crate) fn arrive_follow_me(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        cargo: Cargo,
    ) {
        let app_id = cargo.plan.app();
        let dest = cargo.plan.dest_host();
        let now = sim.now();
        // Idempotent check-in: a retried wrap whose predecessor already
        // landed is acknowledged, never deployed a second time. The host
        // check distinguishes a true duplicate from a later, legitimately
        // identical re-migration.
        let digest = mdagent_wire::digest_of(&cargo).as_u64();
        let arrival_ctx = cargo.trace_ctx;
        let already_here = world.app(app_id).map(|a| a.host) == Ok(dest)
            && world.deployed_digests.get(&app_id.0) == Some(&digest);
        if already_here {
            world
                .env
                .metrics
                .incr_static("migration.duplicate_checkins");
            Middleware::ctx_span(world, arrival_ctx, "migration.duplicate_checkin", now, now);
            if let Some(flight) = world.in_flight.remove(ma) {
                let tel = &mut world.env.telemetry;
                tel.end(flight.migrate_span, now);
                tel.attr(flight.span, "status", "duplicate");
                tel.end(flight.span, now);
            }
            return;
        }
        let Some(flight) = world.in_flight.remove(ma) else {
            world.env.metrics.incr_static("migration.orphan_arrivals");
            Middleware::ctx_span(world, arrival_ctx, "migration.orphan_arrival", now, now);
            return;
        };
        let migrate = now.saturating_since(flight.departed_at);
        world
            .env
            .metrics
            .observe_static("migration.migrate", migrate);
        world.env.telemetry.end(flight.migrate_span, now);
        Middleware::ctx_span(world, arrival_ctx, "migration.checkin", now, now);
        if flight.attempts > 1 {
            // Mark retried-but-successful migrations on the root so the
            // tail sampler always keeps their traces.
            world
                .env
                .telemetry
                .attr(flight.span, "attempts", u64::from(flight.attempts));
        }

        // Move the application record to the destination.
        let src_host = world.app(app_id).map(|a| a.host).unwrap_or(dest);
        let src_space = world.space_of(src_host).ok();
        let dest_space = world.space_of(dest).ok();
        let snapshot = match Middleware::resolve_snapshot(world, &cargo) {
            Ok(snapshot) => snapshot,
            Err(_) => Middleware::resend_full_snapshot(world, now, &cargo),
        };
        let elided_components = Middleware::fetch_elided(world, &cargo);
        {
            let preinstalled = world.preinstalled_components(dest, &snapshot.app_name);
            let Ok(app) = world.app_mut(app_id) else {
                // Destination rejected the check-in: close the telemetry
                // root instead of leaking an open span and a dead flight.
                world.env.metrics.incr_static("migration.arrival_failures");
                let tel = &mut world.env.telemetry;
                tel.attr(flight.span, "status", "rejected");
                tel.end(flight.span, now);
                return;
            };
            app.host = dest;
            app.state = AppState::Migrating;
            // Destination inventory = what was preinstalled there + cargo
            // (shipped bytes and cache-elided components alike).
            let mut inventory = preinstalled;
            inventory.merge(cargo.components.clone());
            for component in elided_components {
                inventory.insert(component);
            }
            // Data left behind: replace data bindings with remote URLs.
            app.components = inventory;
            let _ = SnapshotManager::restore(&snapshot, app);
        }
        world.deployed_digests.insert(app_id.0, digest);
        Middleware::note_arrival(world, dest, &cargo, &snapshot);
        // Rebind each binding according to the destination inventory.
        let mut rebind_cost = SimDuration::ZERO;
        let rebind_outcomes = Middleware::rebind_app(world, app_id, &cargo, src_host);
        for outcome in &rebind_outcomes {
            rebind_cost += match outcome {
                RebindOutcome::RebindLocal | RebindOutcome::Carried => {
                    world.cost_model.rebind_local
                }
                RebindOutcome::StreamRemote => SimDuration::ZERO, // costed below
            };
        }

        // Adaptation.
        let src_profile = world.device_profile(src_host);
        let dst_profile = world.device_profile(dest);
        let user_profile = world
            .app(app_id)
            .map(|a| a.user_profile.clone())
            .unwrap_or_default();
        let adaptation = adapt(800, 600, &src_profile, &dst_profile, &user_profile);
        let adapt_cost = if adaptation.actions.is_empty() {
            SimDuration::ZERO
        } else {
            world.cost_model.adapt
        };

        let cpu = world
            .env
            .topology
            .host(dest)
            .map(|h| h.cpu())
            .unwrap_or(CpuFactor::REFERENCE);
        let resume_cost = cpu.scale(
            world
                .cost_model
                .resume_cost(flight.shipped_bytes, flight.remote_bytes)
                + rebind_cost
                + adapt_cost,
        );
        world
            .env
            .metrics
            .observe_static("migration.resume", resume_cost);
        // Child spans partition [now, now + resume_cost]: scaled rebind and
        // adapt windows first, then resume absorbs the remainder (including
        // any scaling-rounding residue), so the children always sum to the
        // root within integer-microsecond rounding.
        {
            let root = flight.span;
            let scaled_rebind = cpu.scale(rebind_cost);
            let scaled_adapt = cpu.scale(adapt_cost);
            let rebind_end = now + scaled_rebind;
            let adapt_end = rebind_end + scaled_adapt;
            let root_end = now + resume_cost;
            let tel = &mut world.env.telemetry;
            let rebind_span = tel.record_span(
                "migration.rebind",
                Some(root),
                now,
                rebind_end.min(root_end),
            );
            tel.attr(rebind_span, "bindings", rebind_outcomes.len());
            let adapt_span = tel.record_span(
                "migration.adapt",
                Some(root),
                rebind_end.min(root_end),
                adapt_end.min(root_end),
            );
            tel.attr(adapt_span, "actions", adaptation.actions.len());
            tel.record_span(
                "migration.resume",
                Some(root),
                adapt_end.min(root_end),
                root_end,
            );
        }
        world.env.trace.record_event(
            now,
            TraceCategory::Agent,
            TraceEvent::Restore {
                app: app_id.to_string(),
                dest: dest.to_string(),
            },
        );

        // Registry check-out / check-in.
        if let (Some(src_space), Some(dest_space)) = (src_space, dest_space) {
            if src_space != dest_space {
                if let Some(center) = world.federation.center_mut(src_space) {
                    let name = cargo.snapshot.app_name.clone();
                    center.deregister_application(&name);
                }
            }
        }
        let _ = Middleware::register_app_record(world, app_id);

        let report_base = MigrationReport {
            app: app_id,
            app_name: cargo.snapshot.app_name.clone(),
            mode: cargo.plan.mode,
            policy: cargo.plan.policy,
            phases: PhaseTimes {
                suspend: flight.suspend,
                migrate,
                resume: resume_cost,
            },
            shipped_bytes: flight.shipped_bytes,
            remote_bytes: flight.remote_bytes,
            dest_host: dest,
            completed_at: now + resume_cost,
            adaptation,
        };
        let root = flight.span;
        sim.schedule_in(resume_cost, move |w, sim| {
            let now = sim.now();
            if let Ok(app) = w.app_mut(app_id) {
                app.state = AppState::Running;
            }
            w.env.telemetry.end(root, now);
            w.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::Resumed {
                    app: app_id.to_string(),
                    dest: dest.to_string(),
                },
            );
            let latency =
                report_base.phases.suspend + report_base.phases.migrate + report_base.phases.resume;
            w.migration_log.push(report_base.clone());
            w.env.metrics.incr_static("migration.completed");
            Middleware::slo_migration_completed(w, now, latency);
        });
    }

    /// The snapshot a cargo carries: the full one, or the reconstruction
    /// of its delta against the base the destination holds.
    ///
    /// # Errors
    ///
    /// [`CoreError::SnapshotDeltaMismatch`] when the base is gone or its
    /// digest diverged — the caller must resend the full snapshot, never
    /// silently deploy the header stub.
    fn resolve_snapshot(world: &mut Middleware, cargo: &Cargo) -> Result<Snapshot, CoreError> {
        let Some(delta) = &cargo.snapshot_delta else {
            return Ok(cargo.snapshot.clone());
        };
        world
            .snapshots
            .by_sequence(&delta.app_name, delta.base_sequence)
            .and_then(|base| delta.apply(base).ok())
            .ok_or_else(|| {
                world.env.metrics.incr_static("migration.delta_base_miss");
                CoreError::SnapshotDeltaMismatch(delta.app_name.clone())
            })
    }

    /// Recovery from a rejected delta: fetch the full snapshot the delta
    /// stood for from the (world-global) snapshot manager — modeling the
    /// source resending it — and bill the resend in the metrics. The
    /// header stub is the last resort when even the manager evicted it.
    fn resend_full_snapshot(world: &mut Middleware, now: SimTime, cargo: &Cargo) -> Snapshot {
        let app_name = &cargo.snapshot.app_name;
        let full = cargo
            .snapshot_delta
            .as_ref()
            .and_then(|delta| world.snapshots.by_sequence(app_name, delta.sequence))
            .or_else(|| world.snapshots.latest(app_name))
            .cloned();
        match full {
            Some(snapshot) => {
                let bytes = snapshot.wire_len();
                world.env.metrics.incr_static("migration.delta_resends");
                world
                    .env
                    .metrics
                    .incr_by_static("migration.delta_resend_bytes", bytes);
                world.env.trace.record_event(
                    now,
                    TraceCategory::Agent,
                    TraceEvent::SnapshotResend {
                        app_name: app_name.clone(),
                        bytes,
                    },
                );
                snapshot
            }
            None => {
                world
                    .env
                    .metrics
                    .incr_static("migration.delta_unrecoverable");
                cargo.snapshot.clone()
            }
        }
    }

    /// Materializes cache-elided components from the content store.
    fn fetch_elided(world: &mut Middleware, cargo: &Cargo) -> Vec<Component> {
        let mut out = Vec::with_capacity(cargo.elided.len());
        for (_, digest) in &cargo.elided {
            match world.content_store.get(digest) {
                Some(component) => out.push(component.clone()),
                None => world.env.metrics.incr_static("migration.elided_miss"),
            }
        }
        out
    }

    /// Destination-side bookkeeping after a cargo lands: remember shipped
    /// content in the host's cache and record which snapshot sequence the
    /// host now holds (the base a future delta is computed against).
    fn note_arrival(world: &mut Middleware, dest: HostId, cargo: &Cargo, snapshot: &Snapshot) {
        if world.data_path.component_cache {
            for component in cargo.components.iter() {
                let digest = mdagent_wire::digest_of(component).as_u64();
                world.remember_content(dest, digest, component);
            }
            for (_, digest) in &cargo.elided {
                if let Some(cache) = world.component_caches.get_mut(&dest) {
                    cache.touch(*digest);
                }
            }
        }
        if world.data_path.delta_snapshots {
            world
                .snapshot_bases
                .insert((dest.0, snapshot.app_name.clone()), snapshot.sequence);
        }
    }

    fn rebind_app(
        world: &mut Middleware,
        app_id: AppId,
        cargo: &Cargo,
        src_host: HostId,
    ) -> Vec<RebindOutcome> {
        let data_strategy = cargo.plan.data_strategy;
        let Ok(app) = world.app_mut(app_id) else {
            return Vec::new();
        };
        let mut outcomes = Vec::new();
        for binding in &mut app.bindings {
            let outcome = match data_strategy {
                DataStrategy::AlreadyPresent => rebind(true, false),
                DataStrategy::Carry => rebind(false, true),
                DataStrategy::RemoteStream => rebind(false, false),
            };
            if outcome == RebindOutcome::StreamRemote {
                binding.target = BindingTarget::RemoteUrl {
                    url: format!("mdagent://host-{}/{}", src_host.0, binding.name),
                    host_raw: src_host.0,
                };
            }
            outcomes.push(outcome);
        }
        outcomes
    }

    /// Phase 3 for clone-dispatch: install a replica application at the
    /// destination, linked for synchronization with its original.
    /// Returns the replica id.
    pub(crate) fn arrive_clone(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        clone_ma: &AgentId,
        cargo: Cargo,
    ) -> Option<AppId> {
        let dest = cargo.plan.dest_host();
        let source_app = cargo.plan.app();
        let now = sim.now();

        let snapshot = match Middleware::resolve_snapshot(world, &cargo) {
            Ok(snapshot) => snapshot,
            Err(_) => Middleware::resend_full_snapshot(world, now, &cargo),
        };
        let elided_components = Middleware::fetch_elided(world, &cargo);
        let replica_id = AppId(world.apps.len() as u32);
        let mut replica = Application::new(replica_id, snapshot.app_name.clone(), dest);
        let mut inventory = world.preinstalled_components(dest, &snapshot.app_name);
        inventory.merge(cargo.components.clone());
        for component in elided_components {
            inventory.insert(component);
        }
        replica.components = inventory;
        replica.state = AppState::Migrating;
        replica.mobile_agent = Some(clone_ma.clone());
        replica.cloned_from = Some(source_app);
        let _ = SnapshotManager::restore(&snapshot, &mut replica);
        Middleware::note_arrival(world, dest, &cargo, &snapshot);
        // The replica's own sync links start from the original's links; it
        // must at least link back to the source.
        replica.coordinator.add_sync_link(source_app);
        world.apps.push(replica);

        // Link the source to the new replica.
        if let Ok(src) = world.app_mut(source_app) {
            src.coordinator.add_sync_link(replica_id);
        }

        let shipped = cargo.wire_len();
        let cpu = world
            .env
            .topology
            .host(dest)
            .map(|h| h.cpu())
            .unwrap_or(CpuFactor::REFERENCE);
        let resume_cost = cpu.scale(world.cost_model.resume_cost(shipped, 0));
        let flight = world.in_flight.remove(clone_ma);
        let (suspend, migrate, root) = match flight {
            Some(f) => {
                world.env.telemetry.end(f.migrate_span, now);
                Middleware::ctx_span(world, cargo.trace_ctx, "migration.checkin", now, now);
                (f.suspend, now.saturating_since(f.departed_at), f.span)
            }
            None => {
                world.env.metrics.incr_static("migration.orphan_arrivals");
                Middleware::ctx_span(world, cargo.trace_ctx, "migration.orphan_arrival", now, now);
                (SimDuration::ZERO, SimDuration::ZERO, SpanId::DISABLED)
            }
        };
        {
            let tel = &mut world.env.telemetry;
            tel.record_span("migration.resume", Some(root), now, now + resume_cost);
            tel.attr(root, "replica", u64::from(replica_id.0));
        }
        world.env.trace.record_event(
            now,
            TraceCategory::Agent,
            TraceEvent::ReplicaInstalled {
                replica: replica_id.to_string(),
                source: source_app.to_string(),
                dest: dest.to_string(),
            },
        );
        let report = MigrationReport {
            app: replica_id,
            app_name: cargo.snapshot.app_name.clone(),
            mode: MobilityMode::CloneDispatch,
            policy: cargo.plan.policy,
            phases: PhaseTimes {
                suspend,
                migrate,
                resume: resume_cost,
            },
            shipped_bytes: shipped,
            remote_bytes: cargo.remote_bytes,
            dest_host: dest,
            completed_at: now + resume_cost,
            adaptation: AdaptationReport::default(),
        };
        let _ = Middleware::register_app_record(world, replica_id);
        sim.schedule_in(resume_cost, move |w, sim| {
            let now = sim.now();
            if let Ok(app) = w.app_mut(replica_id) {
                app.state = AppState::Running;
            }
            w.env.telemetry.end(root, now);
            w.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::ReplicaRunning {
                    replica: replica_id.to_string(),
                },
            );
            let latency = report.phases.suspend + report.phases.migrate + report.phases.resume;
            w.migration_log.push(report.clone());
            w.env.metrics.incr_static("migration.clones_completed");
            Middleware::slo_migration_completed(w, now, latency);
        });
        Some(replica_id)
    }

    /// Notes a clone departure for timing purposes (called by the source
    /// MA when it dispatches a clone). Returns the watchdog delay the
    /// caller should arm for the clone's flight — `None` when faults are
    /// off (no watchdog; nothing extra is scheduled).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn note_clone_departure(
        world: &mut Middleware,
        now: SimTime,
        clone_id: AgentId,
        app: AppId,
        dest_host: HostId,
        shipped_bytes: u64,
        suspend: SimDuration,
        spans: (SpanId, SpanId),
    ) -> Option<SimDuration> {
        // The migration root and open migrate spans travel with the clone:
        // the original MA's bookkeeping is cleared by the caller (which
        // never ends spans), and the clone's arrival ends both at the
        // destination.
        let (span, migrate_span) = spans;
        let src_host = world
            .apps
            .get(app.0 as usize)
            .map(|a| a.host)
            .unwrap_or(dest_host);
        let timeout = if world.env.faults.enabled() {
            let transfer = world
                .env
                .topology
                .pipelined_transfer_time(
                    src_host,
                    dest_host,
                    shipped_bytes + mdagent_agent::AGENT_FRAME_BYTES,
                )
                .unwrap_or(SimDuration::ZERO);
            mdagent_agent::MIGRATION_SETUP + transfer + world.retry.timeout_margin
        } else {
            SimDuration::ZERO
        };
        world.in_flight.insert(
            clone_id,
            InFlight {
                app,
                suspend,
                departed_at: now,
                shipped_bytes,
                remote_bytes: 0,
                span,
                migrate_span,
                attempts: 1,
                cloned: true,
                src_host,
                dest_host,
                started_at: now,
                timeout,
            },
        );
        world.env.faults.enabled().then_some(timeout)
    }

    /// The suspend cost recorded for an MA currently in flight (clone
    /// bookkeeping). The span pair is (migration root, open migrate child),
    /// handed over to the clone's in-flight record by
    /// [`Middleware::note_clone_departure`].
    pub(crate) fn in_flight_suspend(
        &self,
        ma: &AgentId,
    ) -> Option<(AppId, SimDuration, u64, (SpanId, SpanId))> {
        self.in_flight
            .get(ma)
            .map(|f| (f.app, f.suspend, f.shipped_bytes, (f.span, f.migrate_span)))
    }

    /// Drops in-flight bookkeeping for an MA (after clone dispatch).
    pub(crate) fn remove_in_flight(&mut self, ma: &AgentId) {
        self.in_flight.remove(ma);
    }

    // ---- fault-tolerant migration: watchdog, retry, rollback -------------------------

    /// Arms a watchdog that re-examines a flight after `delay`. Only
    /// called when fault injection is on, so fault-free runs schedule
    /// nothing extra.
    pub(crate) fn arm_watchdog(
        sim: &mut Simulator<Middleware>,
        ma: AgentId,
        attempt: u32,
        delay: SimDuration,
    ) {
        sim.schedule_in(delay, move |w, sim| {
            Middleware::check_migration(w, sim, &ma, attempt);
        });
    }

    /// The watchdog body: decides between "still in transit — wait",
    /// "transfer lost — retry" and "out of attempts — roll back". A
    /// watchdog whose attempt number no longer matches the flight's is
    /// stale (a newer attempt owns the flight) and does nothing.
    fn check_migration(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        attempt: u32,
    ) {
        let Some(flight) = world.in_flight.get(ma) else {
            return; // arrived or already rolled back
        };
        if flight.attempts != attempt {
            return;
        }
        let cloned = flight.cloned;
        let timeout = flight.timeout;
        let app_id = flight.app;
        match world.platform.agent_state(ma) {
            Some(LifecycleState::InTransit) => {
                // Transfer still running — the estimate was short; wait
                // one more margin and look again.
                let margin = world.retry.timeout_margin;
                Middleware::arm_watchdog(sim, ma.clone(), attempt, margin);
            }
            Some(LifecycleState::Active | LifecycleState::Suspended)
                if !cloned && attempt < world.retry.max_attempts =>
            {
                // The agent bounced back to the source: the transfer was
                // dropped. Nudge it to re-dispatch after a backoff.
                let next = attempt + 1;
                if let Some(f) = world.in_flight.get_mut(ma) {
                    f.attempts = next;
                }
                world.env.metrics.incr_static("migration.retries");
                world.env.trace.record_event(
                    sim.now(),
                    TraceCategory::Agent,
                    TraceEvent::MigrationRetry {
                        app: app_id.to_string(),
                        attempt: next,
                    },
                );
                let backoff = world.retry.backoff(next - 1);
                let kernel_name = world.platform.name().to_owned();
                let target = ma.clone();
                sim.schedule_in(backoff, move |w, sim| {
                    let msg = AclMessage::new(
                        Performative::Inform,
                        AgentId::new("middleware", kernel_name),
                        target.clone(),
                    )
                    .with_ontology(ontologies::RETRY)
                    .with_payload(&RetryNotice { attempt: next });
                    Platform::send(w, sim, msg);
                });
                Middleware::arm_watchdog(sim, ma.clone(), next, backoff + timeout);
            }
            _ => Middleware::rollback_migration(world, sim, ma),
        }
    }

    /// Gives up on a flight: closes its telemetry spans and, for
    /// follow-me, restores the retained snapshot and resumes the
    /// application in place at the source. Clone flights are simply
    /// aborted — the original application never stopped running.
    fn rollback_migration(world: &mut Middleware, sim: &mut Simulator<Middleware>, ma: &AgentId) {
        let Some(flight) = world.in_flight.remove(ma) else {
            return;
        };
        let now = sim.now();
        let app_id = flight.app;
        {
            let tel = &mut world.env.telemetry;
            tel.end(flight.migrate_span, now);
            tel.attr(flight.span, "status", "aborted");
            tel.attr(flight.span, "attempts", u64::from(flight.attempts));
        }
        world.env.trace.record_event(
            now,
            TraceCategory::Agent,
            TraceEvent::MigrationAborted {
                app: app_id.to_string(),
                dest: flight.dest_host.to_string(),
                attempts: flight.attempts,
            },
        );
        Middleware::slo_record(world, now, SLO_MIGRATION_COMPLETION, false);
        if flight.cloned {
            world.env.telemetry.end(flight.span, now);
            world.env.metrics.incr_static("migration.clone_aborts");
            return;
        }
        // Unwrap the retained snapshot and resume where we started.
        {
            let Middleware {
                snapshots, apps, ..
            } = &mut *world;
            if let Some(app) = apps.get_mut(app_id.0 as usize) {
                if let Some(snap) = snapshots.latest(&app.name) {
                    let _ = SnapshotManager::restore(snap, app);
                }
                app.host = flight.src_host;
            }
        }
        let cpu = world
            .env
            .topology
            .host(flight.src_host)
            .map(|h| h.cpu())
            .unwrap_or(CpuFactor::REFERENCE);
        let resume_cost = cpu.scale(world.cost_model.resume_cost(flight.shipped_bytes, 0));
        world.env.metrics.incr_static("migration.rollbacks");
        world.env.metrics.observe_static(
            "migration.rollback_latency",
            now.saturating_since(flight.started_at) + resume_cost,
        );
        {
            let tel = &mut world.env.telemetry;
            tel.record_span(
                "migration.rollback",
                Some(flight.span),
                now,
                now + resume_cost,
            );
        }
        // The MA still holds the dead cargo; expire it through its own
        // timer path (a no-op if the agent itself was lost).
        Platform::set_timer(
            world,
            sim,
            ma,
            SimDuration::ZERO,
            crate::agents::TAG_CLEAR_CARGO,
        );
        let src = flight.src_host;
        let root = flight.span;
        sim.schedule_in(resume_cost, move |w, sim| {
            let now = sim.now();
            if let Ok(app) = w.app_mut(app_id) {
                app.state = AppState::Running;
                app.host = src;
            }
            w.env.telemetry.end(root, now);
            w.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::Resumed {
                    app: app_id.to_string(),
                    dest: src.to_string(),
                },
            );
        });
    }
}
