//! The MDAgent middleware: the world that ties all four layers together.

use mdagent_agent::{
    AclMessage, Agent, AgentId, ContainerId, Performative, Platform, PlatformEnv, PlatformHost,
};
use mdagent_context::{
    BadgeId, BadgePosition, ContextData, ContextEvent, ContextKernel, SensorField, SubscriberId,
    UserId,
};
use mdagent_fx::FxHashMap;
use mdagent_registry::{ApplicationRecord, RegistryFederation, ResourceRecord};
use mdagent_simnet::{
    CpuFactor, EventData, FaultInjector, FaultOptions, HostId, LinkKind, SimDuration, SimRng,
    SimTime, Simulator, SloMonitor, SpaceId, SpanId, Telemetry, Topology, TraceCategory,
    TraceEvent,
};

use crate::adaptor::{adapt, AdaptationReport};
use crate::app::{AppId, AppState, Application};
use crate::binding::{rebind, BindingTarget, RebindOutcome};
use crate::component::{ComponentKind, ComponentSet};
use crate::datapath::DataPathOptions;
use crate::error::CoreError;
use crate::layers::{
    self, Arrival, CargoDraft, CheckinFlow, CheckinLedger, ContentState, FlightSetup, InFlight,
    LayerStack, MigrationLayer, ResumeOutcome,
};
use crate::messages::{ontologies, Cargo, ContextNotice, SyncUpdate};
use crate::mobility::{BindingPolicy, DataStrategy, MigrationPlan, MobilityMode};
use crate::observability::ObservabilityOptions;
use crate::profile::{DeviceProfile, UserProfile};
use crate::snapshot::SnapshotManager;
use crate::timing::{CostModel, HostClock, PhaseTimes, RetryPolicy};

/// A completed migration, as recorded for the benchmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// The migrated (or cloned) application.
    pub app: AppId,
    /// Application name.
    pub app_name: String,
    /// Follow-me or clone-dispatch.
    pub mode: MobilityMode,
    /// Binding policy in force.
    pub policy: BindingPolicy,
    /// Per-phase durations.
    pub phases: PhaseTimes,
    /// Bytes shipped inside the agent.
    pub shipped_bytes: u64,
    /// Bytes left behind for remote streaming.
    pub remote_bytes: u64,
    /// Destination host.
    pub dest_host: HostId,
    /// Completion instant.
    pub completed_at: SimTime,
    /// Adaptations applied on arrival.
    pub adaptation: AdaptationReport,
}

/// The middleware world: platform + context kernel + registries +
/// applications, driven by one deterministic simulator.
///
/// Construct it through [`MiddlewareBuilder`]; drive scenarios with the
/// associated functions that take `(&mut Middleware, &mut Simulator<_>)`.
pub struct Middleware {
    pub(crate) platform: Platform<Middleware>,
    pub(crate) env: PlatformEnv,
    /// The context layer.
    pub kernel: ContextKernel,
    /// Per-space registries.
    pub federation: RegistryFederation,
    /// Snapshot manager (base level of every application).
    pub snapshots: SnapshotManager,
    /// Cost constants.
    pub cost_model: CostModel,
    /// Migration retry/backoff policy (only consulted when faults are on).
    pub retry: RetryPolicy,
    /// Deterministic randomness.
    pub rng: SimRng,
    pub(crate) apps: Vec<Application>,
    containers: FxHashMap<HostId, ContainerId>,
    device_profiles: FxHashMap<HostId, DeviceProfile>,
    user_profiles: FxHashMap<UserId, UserProfile>,
    space_primary: FxHashMap<SpaceId, HostId>,
    subscriber_agents: FxHashMap<SubscriberId, AgentId>,
    host_clocks: FxHashMap<HostId, HostClock>,
    preinstalled: FxHashMap<(u32, String), ComponentSet>,
    pub(crate) in_flight: FxHashMap<AgentId, InFlight>,
    /// Opt-in migration data-path optimizations (cache + delta).
    pub(crate) data_path: DataPathOptions,
    /// Opt-in observability pipeline configuration.
    pub(crate) observability: ObservabilityOptions,
    /// SLO monitor, present iff [`ObservabilityOptions::slo`] was set.
    pub(crate) slo: Option<SloMonitor>,
    /// Content-addressed state backing the data-path layer.
    pub(crate) content: ContentState,
    /// Exactly-once check-in ledger backing the exactly-once layer.
    pub(crate) checkin_ledger: CheckinLedger,
    /// The onion chain of cross-cutting concerns around the migration
    /// lifecycle.
    pub(crate) layers: LayerStack,
    migration_log: Vec<MigrationReport>,
    rule_bases: FxHashMap<String, String>,
    sense_period: SimDuration,
    sensing: bool,
    /// Registered recurring probe rounds: `(host pairs, period)`. The
    /// recurring probe event carries only an index into this table, so
    /// each round schedules allocation-free.
    probe_sets: Vec<(Vec<(HostId, HostId)>, SimDuration)>,
}

impl std::fmt::Debug for Middleware {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Middleware")
            .field("apps", &self.apps.len())
            .field("hosts", &self.containers.len())
            .field("migrations", &self.migration_log.len())
            .finish()
    }
}

impl PlatformHost for Middleware {
    fn platform(&self) -> &Platform<Middleware> {
        &self.platform
    }
    fn platform_mut(&mut self) -> &mut Platform<Middleware> {
        &mut self.platform
    }
    fn env(&self) -> &PlatformEnv {
        &self.env
    }
    fn env_mut(&mut self) -> &mut PlatformEnv {
        &mut self.env
    }
    fn deferred_op_failed(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        id: &AgentId,
        failure: mdagent_agent::DeferredFailure,
    ) {
        Middleware::deferred_departure_failed(world, sim, id, failure);
    }
}

/// Builder assembling the environment: spaces, hosts, links, sensors.
#[derive(Debug)]
pub struct MiddlewareBuilder {
    topology: Topology,
    sensor_noise_m: f64,
    beacons: Vec<(SpaceId, f64)>,
    device_profiles: FxHashMap<HostId, DeviceProfile>,
    space_primary: FxHashMap<SpaceId, HostId>,
    host_clock_skews: FxHashMap<HostId, i64>,
    seed: u64,
    sense_period: SimDuration,
    cost_model: CostModel,
    data_path: DataPathOptions,
    faults: FaultOptions,
    retry: RetryPolicy,
    observability: ObservabilityOptions,
    base_layers: Option<Vec<Box<dyn MigrationLayer>>>,
    extra_layers: Vec<Box<dyn MigrationLayer>>,
}

impl Default for MiddlewareBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MiddlewareBuilder {
    /// Starts an empty environment.
    pub fn new() -> Self {
        MiddlewareBuilder {
            topology: Topology::new(),
            sensor_noise_m: 0.08,
            beacons: Vec::new(),
            device_profiles: FxHashMap::default(),
            space_primary: FxHashMap::default(),
            host_clock_skews: FxHashMap::default(),
            seed: 42,
            sense_period: SimDuration::from_millis(200),
            cost_model: CostModel::default(),
            data_path: DataPathOptions::default(),
            faults: FaultOptions::default(),
            retry: RetryPolicy::default(),
            observability: ObservabilityOptions::default(),
            base_layers: None,
            extra_layers: Vec::new(),
        }
    }

    /// Adds a smart space.
    pub fn space(&mut self, name: &str) -> SpaceId {
        self.topology.add_space(name)
    }

    /// Adds a host; the first host of each space becomes its primary. A
    /// beacon is mounted automatically at position 2 m.
    pub fn host(
        &mut self,
        name: &str,
        space: SpaceId,
        cpu: CpuFactor,
        profile_for: fn(HostId) -> DeviceProfile,
    ) -> HostId {
        let host = self.topology.add_host(name, space, cpu);
        self.device_profiles.insert(host, profile_for(host));
        self.space_primary.entry(space).or_insert(host);
        if !self.beacons.iter().any(|(s, _)| *s == space) {
            self.beacons.push((space, 2.0));
        }
        host
    }

    /// Connects two same-space hosts with the paper's 10 Mbps Ethernet
    /// (1 ms latency, 80% efficiency).
    ///
    /// # Errors
    ///
    /// Propagates topology errors.
    pub fn ethernet(&mut self, a: HostId, b: HostId) -> Result<(), CoreError> {
        self.topology
            .add_lan_link(a, b, SimDuration::from_millis(1), 10_000_000, 0.8)?;
        Ok(())
    }

    /// Connects two spaces' hosts with a gateway link (5 ms latency, 70%
    /// efficiency at 10 Mbps).
    ///
    /// # Errors
    ///
    /// Propagates topology errors.
    pub fn gateway(&mut self, a: HostId, b: HostId) -> Result<(), CoreError> {
        self.topology
            .add_gateway_link(a, b, SimDuration::from_millis(5), 10_000_000, 0.7)?;
        Ok(())
    }

    /// Adds a link with explicit parameters. `gateway` links must cross a
    /// space boundary; LAN links must not.
    ///
    /// # Errors
    ///
    /// Propagates topology errors.
    pub fn link(
        &mut self,
        a: HostId,
        b: HostId,
        latency: SimDuration,
        bandwidth_bps: u64,
        efficiency: f64,
        gateway: bool,
    ) -> Result<(), CoreError> {
        if gateway {
            self.topology
                .add_gateway_link(a, b, latency, bandwidth_bps, efficiency)?;
        } else {
            self.topology
                .add_lan_link(a, b, latency, bandwidth_bps, efficiency)?;
        }
        Ok(())
    }

    /// Gives a host a skewed wall clock (µs; used to exercise Fig. 7's
    /// measurement method).
    pub fn clock_skew(&mut self, host: HostId, skew_micros: i64) -> &mut Self {
        self.host_clock_skews.insert(host, skew_micros);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the sensing period.
    pub fn sense_period(&mut self, period: SimDuration) -> &mut Self {
        self.sense_period = period;
        self
    }

    /// Overrides the cost model.
    pub fn cost_model(&mut self, model: CostModel) -> &mut Self {
        self.cost_model = model;
        self
    }

    /// Enables migration data-path optimizations (component cache,
    /// delta snapshots). Off by default.
    pub fn data_path(&mut self, options: DataPathOptions) -> &mut Self {
        self.data_path = options;
        self
    }

    /// Enables network fault injection (per-link drops, outages). Off by
    /// default; when off, nothing in the migration path changes.
    pub fn faults(&mut self, options: FaultOptions) -> &mut Self {
        self.faults = options;
        self
    }

    /// Overrides the migration retry/backoff policy.
    pub fn retry_policy(&mut self, policy: RetryPolicy) -> &mut Self {
        self.retry = policy;
        self
    }

    /// Enables the observability pipeline (tail-based span sampling,
    /// wire trace-context propagation, SLO burn-rate monitoring). Off by
    /// default; when off, telemetry, wire bytes and trace output are
    /// identical to a build without this call.
    pub fn observability(&mut self, options: ObservabilityOptions) -> &mut Self {
        self.observability = options;
        self
    }

    /// Replaces the whole migration layer stack (outermost first). The
    /// default is [`LayerStack::standard`] — the five built-in concerns
    /// in their byte-identical pre-refactor order. Passing an empty list
    /// runs the bare lifecycle skeleton: no spans, no watchdogs, no
    /// elision, no duplicate guard, no SLO feeds.
    pub fn layers(&mut self, layers: Vec<Box<dyn MigrationLayer>>) -> &mut Self {
        self.base_layers = Some(layers);
        self
    }

    /// Appends one layer at the innermost position of the stack (after
    /// the base layers — the standard five unless [`Self::layers`]
    /// replaced them). The extension point for drop-in policy layers such
    /// as [`crate::AdmissionControlLayer`].
    pub fn layer(&mut self, layer: Box<dyn MigrationLayer>) -> &mut Self {
        self.extra_layers.push(layer);
        self
    }

    /// Finalizes the world and a simulator to drive it.
    pub fn build(self) -> (Middleware, Simulator<Middleware>) {
        let mut field = SensorField::new(self.sensor_noise_m);
        for (space, pos) in &self.beacons {
            field.add_beacon(*space, *pos);
        }
        let mut platform = Platform::new("mdagent");
        let mut containers = FxHashMap::default();
        for host in self.topology.hosts() {
            let container = platform.create_container(host.name().to_owned(), host.id());
            containers.insert(host.id(), container);
        }
        platform.register_factory(
            "mobile-agent",
            Box::new(|bytes| {
                mdagent_wire::from_bytes::<crate::agents::MobileAgent>(bytes)
                    .map(|a| Box::new(a) as Box<dyn Agent<Middleware>>)
            }),
        );
        platform.register_factory(
            "autonomous-agent",
            Box::new(|bytes| {
                mdagent_wire::from_bytes::<crate::agents::AutonomousAgent>(bytes)
                    .map(|a| Box::new(a) as Box<dyn Agent<Middleware>>)
            }),
        );
        let mut federation = RegistryFederation::new();
        let mut host_clocks = FxHashMap::default();
        for host in self.topology.hosts() {
            let skew = self.host_clock_skews.get(&host.id()).copied().unwrap_or(0);
            host_clocks.insert(host.id(), HostClock::with_skew(skew));
        }
        for idx in 0..self.topology.space_count() {
            federation.add_center(SpaceId(idx as u32));
        }
        let mut env = PlatformEnv::new(self.topology);
        env.faults = FaultInjector::new(self.faults, self.seed ^ 0xFAD7_5EED);
        if let Some(sampler) = self.observability.sampler {
            env.telemetry = Telemetry::sampled(sampler);
        }
        let slo = self.observability.slo.map(|opts| opts.build_monitor());
        let mut stack = self.base_layers.unwrap_or_else(LayerStack::standard);
        stack.extend(self.extra_layers);
        let world = Middleware {
            platform,
            env,
            kernel: ContextKernel::new(field),
            federation,
            snapshots: SnapshotManager::new(8),
            cost_model: self.cost_model,
            retry: self.retry,
            rng: SimRng::seed_from(self.seed),
            apps: Vec::new(),
            containers,
            device_profiles: self.device_profiles,
            user_profiles: FxHashMap::default(),
            space_primary: self.space_primary,
            subscriber_agents: FxHashMap::default(),
            host_clocks,
            preinstalled: FxHashMap::default(),
            in_flight: FxHashMap::default(),
            data_path: self.data_path,
            observability: self.observability,
            slo,
            content: ContentState::default(),
            checkin_ledger: CheckinLedger::default(),
            layers: LayerStack::new(stack),
            migration_log: Vec::new(),
            rule_bases: FxHashMap::from_iter([(
                "default".to_owned(),
                crate::rules::PAPER_RULES.to_owned(),
            )]),
            sense_period: self.sense_period,
            sensing: false,
            probe_sets: Vec::new(),
        };
        (world, Simulator::new())
    }
}

impl Middleware {
    /// Starts building an environment.
    pub fn builder() -> MiddlewareBuilder {
        MiddlewareBuilder::new()
    }

    // ---- accessors ---------------------------------------------------------

    /// The application with the given id.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownApp`] for bad ids.
    pub fn app(&self, id: AppId) -> Result<&Application, CoreError> {
        self.apps
            .get(id.0 as usize)
            .ok_or(CoreError::UnknownApp(id))
    }

    /// Mutable application access.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownApp`] for bad ids.
    pub fn app_mut(&mut self, id: AppId) -> Result<&mut Application, CoreError> {
        self.apps
            .get_mut(id.0 as usize)
            .ok_or(CoreError::UnknownApp(id))
    }

    /// Number of deployed applications (including replicas).
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// All applications.
    pub fn apps(&self) -> impl Iterator<Item = &Application> {
        self.apps.iter()
    }

    /// The agent container on a host.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoContainer`] when the host has none.
    pub fn container_on(&self, host: HostId) -> Result<ContainerId, CoreError> {
        self.containers
            .get(&host)
            .copied()
            .ok_or(CoreError::NoContainer(host))
    }

    /// The primary (migration-target) host of a space.
    ///
    /// # Errors
    ///
    /// [`CoreError::NoHostInSpace`] when the space has no hosts.
    pub fn primary_host(&self, space: SpaceId) -> Result<HostId, CoreError> {
        self.space_primary
            .get(&space)
            .copied()
            .ok_or(CoreError::NoHostInSpace(space))
    }

    /// The space a host belongs to.
    ///
    /// # Errors
    ///
    /// Propagates topology errors.
    pub fn space_of(&self, host: HostId) -> Result<SpaceId, CoreError> {
        Ok(self.env.topology.host(host)?.space())
    }

    /// The device profile of a host (PC default when not configured).
    pub fn device_profile(&self, host: HostId) -> DeviceProfile {
        self.device_profiles
            .get(&host)
            .cloned()
            .unwrap_or_else(|| DeviceProfile::pc(host))
    }

    /// The wall clock of a host (synchronized default).
    pub fn host_clock(&self, host: HostId) -> HostClock {
        self.host_clocks
            .get(&host)
            .copied()
            .unwrap_or_else(HostClock::synchronized)
    }

    /// All completed migrations, oldest first.
    pub fn migration_log(&self) -> &[MigrationReport] {
        &self.migration_log
    }

    /// The shared trace.
    pub fn trace(&self) -> &mdagent_simnet::Trace {
        &self.env.trace
    }

    /// The shared metrics.
    pub fn metrics(&self) -> &mdagent_simnet::MetricsRegistry {
        &self.env.metrics
    }

    /// The network fault injector.
    pub fn faults(&self) -> &FaultInjector {
        &self.env.faults
    }

    /// Mutable fault-injector access (schedule outages mid-run).
    pub fn faults_mut(&mut self) -> &mut FaultInjector {
        &mut self.env.faults
    }

    /// Number of migrations currently in flight (should drain to zero).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the registry of `space` is reachable from `from` under the
    /// current fault regime. With faults off this is always true; a
    /// gateway outage severs every inter-space registry.
    pub fn registry_reachable(&self, from: HostId, space: SpaceId) -> bool {
        if !self.env.faults.enabled() {
            return true;
        }
        let Ok(primary) = self.primary_host(space) else {
            return false;
        };
        let Ok(links) = self.env.topology.route(from, primary) else {
            return false;
        };
        if self.env.faults.gateway_outage() {
            let crosses_gateway = links.iter().any(|l| {
                self.env
                    .topology
                    .link(*l)
                    .is_some_and(|link| link.kind() == LinkKind::Gateway)
            });
            if crosses_gateway {
                return false;
            }
        }
        true
    }

    /// The shared telemetry collector.
    pub fn telemetry(&self) -> &mdagent_simnet::Telemetry {
        &self.env.telemetry
    }

    /// Replaces the telemetry collector — pass
    /// [`mdagent_simnet::Telemetry::disabled`] to turn span collection
    /// into a no-op for overhead-sensitive runs.
    pub fn set_telemetry(&mut self, telemetry: mdagent_simnet::Telemetry) {
        self.env.telemetry = telemetry;
    }

    /// The observability configuration this world was built with.
    pub fn observability(&self) -> &ObservabilityOptions {
        &self.observability
    }

    /// The SLO monitor, present iff SLO monitoring was enabled.
    pub fn slo_monitor(&self) -> Option<&SloMonitor> {
        self.slo.as_ref()
    }

    /// Installs a named rule base after validating that it parses (the AA
    /// manager's rule-manager role, §4.1). Autonomous agents reference
    /// rule bases by name via
    /// [`AutonomousAgent::with_rule_base`](crate::AutonomousAgent::with_rule_base).
    ///
    /// # Errors
    ///
    /// Propagates rule parse errors; nothing is installed on failure.
    pub fn install_rule_base(
        &mut self,
        name: impl Into<String>,
        text: impl Into<String>,
    ) -> Result<(), mdagent_ontology::parser::ParseError> {
        let text = text.into();
        let mut scratch = mdagent_ontology::Graph::new();
        mdagent_ontology::parser::parse_rules(&text, &mut scratch)?;
        self.rule_bases.insert(name.into(), text);
        Ok(())
    }

    /// The text of a named rule base; unknown names fall back to the
    /// shipped Fig. 6 default.
    pub fn rule_base(&self, name: &str) -> &str {
        self.rule_bases
            .get(name)
            .map(String::as_str)
            .unwrap_or(crate::rules::PAPER_RULES)
    }

    /// A stored user profile (empty default).
    pub fn user_profile(&self, user: UserId) -> UserProfile {
        self.user_profiles
            .get(&user)
            .cloned()
            .unwrap_or_else(|| UserProfile::new(user))
    }

    // ---- environment setup --------------------------------------------------

    /// Registers a user: profile, badge binding and initial placement.
    // mdlint::entry
    pub fn attach_user(
        &mut self,
        profile: UserProfile,
        badge: BadgeId,
        space: SpaceId,
        position_m: f64,
    ) {
        let user = profile.user();
        self.kernel.fusion.bind_badge(badge, user);
        self.kernel
            .field
            .place_badge(badge, BadgePosition { space, position_m });
        self.user_profiles.insert(user, profile);
    }

    /// Moves a user's badge (scenario ground truth); the sensing loop will
    /// notice within a few rounds.
    // mdlint::entry
    pub fn move_user(&mut self, badge: BadgeId, space: SpaceId, position_m: f64) {
        self.kernel
            .field
            .place_badge(badge, BadgePosition { space, position_m });
    }

    /// Declares that `host` has `components` of application `app_name`
    /// preinstalled, and registers that fact in the host's space registry.
    ///
    /// # Errors
    ///
    /// Propagates topology errors for unknown hosts.
    // mdlint::entry
    pub fn provision(
        &mut self,
        host: HostId,
        app_name: &str,
        components: ComponentSet,
    ) -> Result<(), CoreError> {
        let space = self.space_of(host)?;
        let mut record = ApplicationRecord::new(app_name, space, host);
        for kind in [
            ComponentKind::Logic,
            ComponentKind::Presentation,
            ComponentKind::Data,
            ComponentKind::Resource,
        ] {
            if components.has_kind(kind) {
                record = record.with_component(kind.tag());
            }
        }
        if self.data_path.component_cache {
            for component in components.iter() {
                let digest = mdagent_wire::digest_of(component).as_u64();
                record.set_digest(component.name.clone(), digest);
                self.remember_content(host, digest, component);
            }
        }
        self.federation
            .add_center(space)
            .register_application(record);
        self.preinstalled
            .insert((host.0, app_name.to_owned()), components);
        Ok(())
    }

    /// Registers a shareable resource in its space's registry center
    /// (creating the center if needed). Its ontology facts flush lazily
    /// at the next semantic lookup.
    // mdlint::entry
    pub fn register_space_resource(&mut self, record: ResourceRecord) {
        self.federation
            .add_center(record.space)
            .register_resource(record);
    }

    /// Deregisters a resource from `space`'s registry and repairs the
    /// ontology closure incrementally (no full re-materialization),
    /// under an `aa.retract` telemetry span; the modeled repair cost
    /// lands in the `reasoner.retract_latency` histogram.
    // mdlint::entry
    pub fn deregister_space_resource(&mut self, space: SpaceId, name: &str, now: SimTime) -> bool {
        let Some(center) = self.federation.center_mut(space) else {
            return false;
        };
        if !center.deregister_resource(name) {
            return false;
        }
        self.record_retract_flush(space, now);
        true
    }

    /// Expires lapsed resource leases in every space registry. Each space
    /// with expiries gets one incremental repair and one `aa.retract`
    /// span. Returns the number of records expired.
    ///
    /// A lease expiring exactly at `now` is already lapsed — the same
    /// endpoint-exclusive boundary lease-aware lookups
    /// ([`RegistryFederation::find_resources_at`]) apply, so the sweep and
    /// a lookup at the same instant never disagree about liveness.
    // mdlint::entry
    pub fn expire_resource_leases(&mut self, now: SimTime) -> usize {
        let mut expired = 0;
        for space in self.federation.spaces() {
            let Some(center) = self.federation.center_mut(space) else {
                continue;
            };
            let n = center.expire_leases(now.as_micros());
            if n > 0 {
                expired += n;
                self.record_retract_flush(space, now);
            }
        }
        expired
    }

    /// Flushes `space`'s pending deltas now and emits the `aa.retract`
    /// span plus latency histogram from the reasoner's repair counters.
    fn record_retract_flush(&mut self, space: SpaceId, now: SimTime) {
        let Some(center) = self.federation.center_mut(space) else {
            return;
        };
        center.flush_deltas();
        let stats = center.last_retract_stats().clone();
        let cost = self.cost_model.retraction;
        let tel = &mut self.env.telemetry;
        let span = tel.record_span("aa.retract", None, now, now + cost);
        tel.attr(span, "space", space.0);
        tel.attr(span, "requested", stats.requested);
        tel.attr(span, "retracted_base", stats.retracted_base);
        tel.attr(span, "overdeleted", stats.overdeleted);
        tel.attr(span, "rederived", stats.rederived);
        tel.attr(span, "waves", stats.waves);
        tel.attr(span, "removed", stats.removed);
        self.env.metrics.incr_static("aa.retract");
        self.env
            .metrics
            .observe_hist_static("reasoner.retract_latency", cost);
    }

    /// Components of `app_name` preinstalled on `host` (empty default).
    pub fn preinstalled_components(&self, host: HostId, app_name: &str) -> ComponentSet {
        self.preinstalled
            .get(&(host.0, app_name.to_owned()))
            .cloned()
            .unwrap_or_default()
    }

    // ---- application deployment ---------------------------------------------

    /// Deploys an application on a host and spawns its mobile agent.
    ///
    /// # Errors
    ///
    /// Container/topology/agent errors.
    // mdlint::entry
    pub fn deploy_app(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        name: &str,
        host: HostId,
        components: ComponentSet,
        profile: UserProfile,
    ) -> Result<AppId, CoreError> {
        let container = world.container_on(host)?;
        let id = AppId(world.apps.len() as u32);
        let mut app = Application::new(id, name, host);
        app.components = components;
        app.user_profile = profile;
        world.apps.push(app);
        let local_name = format!("ma-{name}-{}", id.0);
        let ma = Platform::spawn(
            world,
            sim,
            container,
            &local_name,
            Box::new(crate::agents::MobileAgent::new(id)),
        )?;
        world.platform.df_mut().register(
            &ma,
            mdagent_agent::ServiceDescription::new("mobile-agent", name),
        );
        match world.apps.get_mut(id.0 as usize) {
            Some(app) => app.mobile_agent = Some(ma),
            None => return Err(CoreError::UnknownApp(id)),
        }
        Middleware::register_app_record(world, id)?;
        let now = sim.now();
        world.env.trace.record_event(
            now,
            TraceCategory::Application,
            TraceEvent::Deployed {
                app_name: name.to_owned(),
                app: id.to_string(),
                host: host.to_string(),
            },
        );
        Ok(id)
    }

    fn register_app_record(world: &mut Middleware, id: AppId) -> Result<(), CoreError> {
        let (name, host, tags, requirements) = {
            let app = world.app(id)?;
            (
                app.name.clone(),
                app.host,
                app.component_tags(),
                app.requirements.clone(),
            )
        };
        let space = world.space_of(host)?;
        let mut record = ApplicationRecord::new(&name, space, host);
        for tag in tags {
            record = record.with_component(tag);
        }
        for (k, v) in requirements {
            record = record.with_requirement(k, v);
        }
        if world.data_path.component_cache {
            let digests: Vec<(String, u64)> = world
                .app(id)?
                .components
                .iter()
                .map(|c| (c.name.clone(), mdagent_wire::digest_of(c).as_u64()))
                .collect();
            for (name, digest) in digests {
                record.set_digest(name, digest);
            }
        }
        world
            .federation
            .add_center(space)
            .register_application(record);
        Ok(())
    }

    /// Sets an application's minimum device requirements and refreshes its
    /// registry record. The AA refuses destinations whose device profile
    /// does not satisfy them (paper §4.3: the AA checks "whether the
    /// devices are compatible").
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownApp`] for bad ids.
    pub fn set_app_requirements(
        world: &mut Middleware,
        id: AppId,
        requirements: Vec<(String, String)>,
    ) -> Result<(), CoreError> {
        world.app_mut(id)?.requirements = requirements;
        Middleware::register_app_record(world, id)
    }

    /// Spawns an autonomous agent watching a user on behalf of an app.
    ///
    /// # Errors
    ///
    /// Container/agent errors.
    // mdlint::entry
    pub fn spawn_autonomous_agent(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        host: HostId,
        agent: crate::agents::AutonomousAgent,
    ) -> Result<AgentId, CoreError> {
        let container = world.container_on(host)?;
        let local_name = format!("aa-u{}-a{}", agent.user_raw, agent.app_raw);
        let id = Platform::spawn(world, sim, container, &local_name, Box::new(agent))?;
        let sub = world.kernel.bus.subscribe("context.*");
        world.platform.df_mut().register(
            &id,
            mdagent_agent::ServiceDescription::new("autonomous-agent", "context-watcher"),
        );
        world.subscriber_agents.insert(sub, id.clone());
        Ok(id)
    }

    // ---- sensing loop ---------------------------------------------------------

    /// Starts the recurring sensing loop (idempotent).
    // mdlint::entry
    pub fn start_sensing(world: &mut Middleware, sim: &mut Simulator<Middleware>) {
        if world.sensing {
            return;
        }
        world.sensing = true;
        sim.schedule_fn_in(world.sense_period, Middleware::sense_event);
    }

    /// One round of the recurring sensing loop. A plain function-pointer
    /// event (the period lives in the world), so each round is
    /// allocation-free no matter how many sensors fire.
    fn sense_event(world: &mut Middleware, sim: &mut Simulator<Middleware>) {
        Middleware::sense_once(world, sim);
        sim.schedule_fn_in(world.sense_period, Middleware::sense_event);
    }

    fn sense_once(world: &mut Middleware, sim: &mut Simulator<Middleware>) {
        let now = sim.now();
        let mut rng = world.rng.fork(now.as_micros());
        let results = world.kernel.sense_round(now, &mut rng);
        for (event, outcome) in results {
            world.env.trace.record_event(
                now,
                TraceCategory::Context,
                TraceEvent::ContextEvent {
                    description: format!("{:?}", event.data),
                    subscribers: outcome.subscribers.len(),
                },
            );
            Middleware::route_event(world, sim, &event, &outcome.subscribers);
        }
        world
            .env
            .metrics
            .set_gauge_static("sim.event_queue", "scheduler", sim.pending() as u64);
    }

    /// Publishes an externally produced context event (user indications,
    /// probes) and routes it to subscribed agents.
    // mdlint::entry
    pub fn publish_context(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        data: ContextData,
    ) {
        let now = sim.now();
        // Preference context also updates the stored (static) user profile.
        if let ContextData::Preference { user, key, value } = &data {
            world
                .user_profiles
                .entry(*user)
                .or_insert_with(|| UserProfile::new(*user))
                .set_preference(key.clone(), value.clone());
        }
        let event = ContextEvent::new(now, data);
        world.env.trace.record_event(
            now,
            TraceCategory::Context,
            TraceEvent::Published {
                description: format!("{:?}", event.data),
            },
        );
        // Trace and notice are derived before publish so the event moves
        // into the kernel without a clone.
        let notice = ContextNotice::from_event(&event);
        let outcome = world.kernel.publish(event);
        Middleware::route_notice(world, sim, notice, &outcome.subscribers);
    }

    fn route_event(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        event: &ContextEvent,
        subscribers: &[SubscriberId],
    ) {
        let notice = ContextNotice::from_event(event);
        Middleware::route_notice(world, sim, notice, subscribers);
    }

    fn route_notice(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        notice: ContextNotice,
        subscribers: &[SubscriberId],
    ) {
        let kernel_id = AgentId::new("context-kernel", world.platform.name().to_owned());
        for sub in subscribers {
            let Some(agent) = world.subscriber_agents.get(sub).cloned() else {
                continue;
            };
            let msg = AclMessage::new(Performative::Inform, kernel_id.clone(), agent)
                .with_ontology(ontologies::CONTEXT)
                .with_payload(&notice);
            Platform::send(world, sim, msg);
        }
    }

    // ---- network utilities ------------------------------------------------------

    /// Measured round-trip time between two hosts for a 1 kB probe, in
    /// milliseconds. Also published as a context event by callers that
    /// probe explicitly.
    pub fn response_time_ms(&self, from: HostId, to: HostId) -> f64 {
        match self
            .env
            .topology
            .transfer_time(from, to, CostModel::PROBE_PAYLOAD_BYTES)
        {
            Ok(one_way) => one_way.as_millis_f64() * 2.0,
            Err(_) => f64::INFINITY,
        }
    }

    /// Starts recurring network probes between the given host pairs; each
    /// round measures the response time and publishes it as a context
    /// event (the "network connectivity, latency" sensors of §4.1).
    // mdlint::entry
    pub fn start_network_probes(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        pairs: Vec<(HostId, HostId)>,
        period: SimDuration,
    ) {
        let idx = world.probe_sets.len() as u64;
        world.probe_sets.push((pairs, period));
        sim.schedule_data_in(period, Middleware::probe_event, EventData::one(idx));
    }

    /// One probe round for the registered pair set `d.a`. The pair list is
    /// taken out of the world while probing (publishing needs `&mut`), then
    /// restored — no per-round clone.
    fn probe_event(world: &mut Middleware, sim: &mut Simulator<Middleware>, d: EventData) {
        let idx = d.a as usize;
        let Some(entry) = world.probe_sets.get_mut(idx) else {
            return;
        };
        let pairs = std::mem::take(&mut entry.0);
        let period = entry.1;
        for &(from, to) in &pairs {
            let millis = world.response_time_ms(from, to);
            if millis.is_finite() {
                Middleware::publish_context(
                    world,
                    sim,
                    ContextData::ResponseTime { from, to, millis },
                );
                world.env.metrics.incr_static("probe.rounds");
            }
        }
        if let Some(entry) = world.probe_sets.get_mut(idx) {
            entry.0 = pairs;
        }
        sim.schedule_data_in(period, Middleware::probe_event, EventData::one(d.a));
    }

    // ---- state updates & replica sync ---------------------------------------------

    /// Updates application state through the coordinator; local observers
    /// are notified synchronously and replica apps receive sync messages.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownApp`] for bad ids.
    // mdlint::entry
    pub fn update_app_state(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        id: AppId,
        key: &str,
        value: &str,
    ) -> Result<u64, CoreError> {
        let (version, links, sender) = {
            let app = world.app_mut(id)?;
            let version = app.coordinator.set_state(key, value);
            // Local observers see it immediately (observer pattern).
            let names: Vec<String> = app.coordinator.stale_observers();
            for name in names {
                app.coordinator.mark_seen(&name, version);
            }
            (
                version,
                app.coordinator.sync_links(),
                app.mobile_agent.clone(),
            )
        };
        let Some(sender) = sender else {
            return Ok(version);
        };
        for link in links {
            let Ok(linked) = world.app(link) else {
                continue;
            };
            let Some(receiver) = linked.mobile_agent.clone() else {
                continue;
            };
            let update = SyncUpdate {
                app_raw: link.0,
                key: key.to_owned(),
                value: value.to_owned(),
                version,
            };
            let msg = AclMessage::new(Performative::Inform, sender.clone(), receiver)
                .with_ontology(ontologies::SYNC)
                .with_payload(&update);
            Platform::send(world, sim, msg);
        }
        world.env.metrics.incr_static("sync.updates_sent");
        Ok(version)
    }

    /// Applies a replica sync update (invoked by the receiving MA).
    // mdlint::entry
    pub(crate) fn apply_sync(world: &mut Middleware, update: &SyncUpdate) {
        let Ok(app) = world.app_mut(AppId(update.app_raw)) else {
            return;
        };
        if app
            .coordinator
            .apply_remote(&update.key, &update.value, update.version)
        {
            let names: Vec<String> = app.coordinator.stale_observers();
            let version = app.coordinator.version();
            for name in names {
                app.coordinator.mark_seen(&name, version);
            }
            world.env.metrics.incr_static("sync.updates_applied");
        } else {
            world.env.metrics.incr_static("sync.updates_stale");
        }
    }

    /// Pre-stages an application's logic and presentation components at a
    /// host ahead of a predicted migration (§3.4: "prediction
    /// functionalities should also be provided to improve the
    /// performance"). The copy travels at normal network cost in the
    /// background; once landed it counts as preinstalled, so a later
    /// adaptive migration ships only the application states.
    ///
    /// Returns the simulated transfer duration.
    ///
    /// # Errors
    ///
    /// Unknown apps/hosts or unreachable destinations.
    // mdlint::entry
    pub fn prestage(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        app_id: AppId,
        dest_host: HostId,
    ) -> Result<SimDuration, CoreError> {
        let (name, src_host, staged) = {
            let app = world.app(app_id)?;
            let staged: ComponentSet = app
                .components
                .iter()
                .filter(|c| matches!(c.kind, ComponentKind::Logic | ComponentKind::Presentation))
                .cloned()
                .collect();
            (app.name.clone(), app.host, staged)
        };
        if staged.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let bytes = staged.wire_len();
        let cost = world
            .env
            .topology
            .transfer_time(src_host, dest_host, bytes)?;
        let now = sim.now();
        world.env.trace.record_event(
            now,
            TraceCategory::Agent,
            TraceEvent::PreStage {
                bytes,
                app_name: name.clone(),
                dest_host: dest_host.to_string(),
            },
        );
        world.env.metrics.incr_static("prestage.transfers");
        world.env.metrics.incr_by_static("prestage.bytes", bytes);
        sim.schedule_in(cost, move |w, _sim| {
            let mut existing = w.preinstalled_components(dest_host, &name);
            existing.merge(staged);
            let _ = w.provision(dest_host, &name, existing);
        });
        Ok(cost)
    }

    /// Plans and starts a migration immediately, bypassing the AA's
    /// context trigger (used by scenario drivers and the benchmarks; the
    /// pipeline from suspension onward is identical).
    ///
    /// # Errors
    ///
    /// [`CoreError::Registry`] when no plan can be built, plus the
    /// pipeline's own errors.
    // mdlint::entry
    pub fn migrate_now(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        app: AppId,
        dest_host: HostId,
        mode: MobilityMode,
        policy: BindingPolicy,
    ) -> Result<(), CoreError> {
        let plan = crate::agents::plan_migration(world, app, dest_host, mode, policy)
            .ok_or_else(|| CoreError::Registry("no migration plan could be built".into()))?;
        let ma = world
            .app(app)?
            .mobile_agent
            .clone()
            .ok_or(CoreError::NoMobileAgent(app))?;
        Middleware::suspend_and_wrap(world, sim, plan, ma)
    }

    // ---- the migration pipeline -----------------------------------------------------

    /// Phase 1 (paper Fig. 4): the coordinator suspends the application,
    /// the snapshot manager records its states, and after the simulated
    /// suspension cost the wrapped cargo is handed to the mobile agent.
    ///
    /// For clone-dispatch the application keeps running; the snapshot is
    /// taken from the live state ("the application clone first").
    ///
    /// # Errors
    ///
    /// [`CoreError`] variants for unknown apps/hosts or bad states.
    // mdlint::entry
    pub fn suspend_and_wrap(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        plan: MigrationPlan,
        ma: AgentId,
    ) -> Result<(), CoreError> {
        let app_id = plan.app();
        let now = sim.now();
        // Validate reachability up front: failing here leaves the
        // application untouched instead of stranding it suspended.
        {
            let src_host = world.app(app_id)?.host;
            world.env.topology.transfer_time(
                src_host,
                plan.dest_host(),
                CostModel::CONTROL_PAYLOAD_BYTES,
            )?;
            world.container_on(plan.dest_host())?;
        }
        let (snapshot, components, remote_bytes, src_host) = {
            // Split borrows so the snapshot is captured straight from the
            // live application instead of a full clone of it.
            let Middleware {
                snapshots, apps, ..
            } = &mut *world;
            let app = apps
                .get(app_id.0 as usize)
                .ok_or(CoreError::UnknownApp(app_id))?;
            if app.state != AppState::Running {
                return Err(CoreError::BadAppState(app_id, "running"));
            }
            let src_host = app.host;
            let shipped = app.components.subset(&plan.ship_components);
            let remote_bytes = match plan.data_strategy {
                DataStrategy::RemoteStream => app.components.bytes_of_kind(ComponentKind::Data),
                _ => 0,
            };
            (snapshots.capture(app), shipped, remote_bytes, src_host)
        };

        if plan.mode == MobilityMode::FollowMe {
            let app = world.app_mut(app_id)?;
            app.state = AppState::Suspended;
            world.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::Suspend {
                    app: app_id.to_string(),
                },
            );
        } else {
            world.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::SnapshotClone {
                    app: app_id.to_string(),
                },
            );
        }

        // The wrap-phase layers rewrite what ships (the data-path layer
        // elides cached components and swaps the snapshot for a delta).
        let dest_host = plan.dest_host();
        let mode = plan.mode;
        let mut draft = CargoDraft {
            app: app_id,
            mode,
            src_host,
            dest_host,
            snapshot,
            components,
            remote_bytes,
            elided: Vec::new(),
            snapshot_delta: None,
            bytes_saved_cache: 0,
            bytes_saved_delta: 0,
        };
        layers::stack_before_wrap(world, sim, &mut draft);

        let cargo = Cargo {
            plan,
            snapshot: draft.snapshot,
            components: draft.components,
            remote_bytes: draft.remote_bytes,
            elided: draft.elided,
            snapshot_delta: draft.snapshot_delta,
            trace_ctx: None,
        };
        let wrapped_bytes = cargo.wire_len();
        let cpu = world.env.topology.host(src_host)?.cpu();
        let suspend_cost = cpu.scale(world.cost_model.suspend_cost(wrapped_bytes));
        world
            .env
            .metrics
            .observe_static("migration.suspend", suspend_cost);
        // The departure layers fill in the rest of the flight record: the
        // telemetry layer opens the migration root span, the fault layer
        // computes the per-attempt watchdog window.
        let mut setup = FlightSetup {
            app: app_id,
            mode,
            src_host,
            dest_host,
            wrapped_bytes,
            remote_bytes: cargo.remote_bytes,
            suspend_cost,
            bytes_saved_cache: draft.bytes_saved_cache,
            bytes_saved_delta: draft.bytes_saved_delta,
            span: SpanId::DISABLED,
            timeout: SimDuration::ZERO,
        };
        layers::stack_before_depart(world, sim, &mut setup);
        world
            .in_flight
            .insert(ma.clone(), InFlight::from_setup(&setup, now));
        layers::stack_after_suspend(world, sim, &ma);
        let kernel_name = world.platform.name().to_owned();
        sim.schedule_in(suspend_cost, move |w, sim| {
            let mut cargo = cargo;
            let now = sim.now();
            if let Some(flight) = w.in_flight.get_mut(&ma) {
                flight.departed_at = now;
            }
            // Last chance to stamp the wire (the telemetry layer opens the
            // wrap/migrate spans and propagates the trace context here).
            layers::stack_before_transfer(w, sim, &ma, &mut cargo);
            w.env.trace.record_event(
                now,
                TraceCategory::Agent,
                TraceEvent::Wrap {
                    bytes: wrapped_bytes,
                },
            );
            let msg = AclMessage::new(
                Performative::Inform,
                AgentId::new("middleware", kernel_name),
                ma.clone(),
            )
            .with_ontology(ontologies::CARGO)
            .with_payload(&cargo);
            Platform::send(w, sim, msg);
        });
        Ok(())
    }

    /// Phase 3 for follow-me: the MA has checked in at the destination;
    /// restore, rebind, adapt and resume the application there.
    // mdlint::entry
    pub(crate) fn arrive_follow_me(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        ma: &AgentId,
        cargo: Cargo,
    ) {
        let app_id = cargo.plan.app();
        let dest = cargo.plan.dest_host();
        let now = sim.now();
        let mut arrival = Arrival::new(mdagent_wire::digest_of(&cargo).as_u64());
        // The exactly-once layer swallows duplicate and orphan check-ins
        // here; any layer may veto the arrival.
        if let CheckinFlow::Drop = layers::stack_wrap_checkin(world, sim, ma, &cargo, &mut arrival)
        {
            return;
        }
        let Some(flight) = world.in_flight.remove(ma) else {
            // Without a bookkeeping record there is nothing to deploy
            // against (the exactly-once layer normally catches this).
            return;
        };
        let migrate = now.saturating_since(flight.departed_at);
        world
            .env
            .metrics
            .observe_static("migration.migrate", migrate);
        layers::stack_before_checkin(world, sim, &cargo, Some(&flight), &mut arrival);

        // Move the application record to the destination.
        let src_host = world.app(app_id).map(|a| a.host).unwrap_or(dest);
        let src_space = world.space_of(src_host).ok();
        let dest_space = world.space_of(dest).ok();
        // The data-path layer resolves deltas/elision into the arrival;
        // with an empty stack the wire payload deploys as-is.
        let snapshot = arrival
            .snapshot
            .take()
            .unwrap_or_else(|| cargo.snapshot.clone());
        let elided_components = std::mem::take(&mut arrival.components);
        {
            let preinstalled = world.preinstalled_components(dest, &snapshot.app_name);
            let Ok(app) = world.app_mut(app_id) else {
                // Destination rejected the check-in: unwind the layers
                // (closing the telemetry root) instead of leaking an open
                // span and a dead flight.
                world.env.metrics.incr_static("migration.arrival_failures");
                layers::stack_on_abort(
                    world,
                    sim,
                    ma,
                    Some(&flight),
                    layers::AbortReason::ArrivalRejected,
                );
                return;
            };
            app.host = dest;
            app.state = AppState::Migrating;
            // Destination inventory = what was preinstalled there + cargo
            // (shipped bytes and cache-elided components alike).
            let mut inventory = preinstalled;
            inventory.merge(cargo.components.clone());
            for component in elided_components {
                inventory.insert(component);
            }
            // Data left behind: replace data bindings with remote URLs.
            app.components = inventory;
            let _ = SnapshotManager::restore(&snapshot, app);
        }
        arrival.snapshot = Some(snapshot);
        // Rebind each binding according to the destination inventory.
        let mut rebind_cost = SimDuration::ZERO;
        let rebind_outcomes = Middleware::rebind_app(world, app_id, &cargo, src_host);
        for outcome in &rebind_outcomes {
            rebind_cost += match outcome {
                RebindOutcome::RebindLocal | RebindOutcome::Carried => {
                    world.cost_model.rebind_local
                }
                RebindOutcome::StreamRemote => SimDuration::ZERO, // costed below
            };
        }

        // Adaptation.
        let src_profile = world.device_profile(src_host);
        let dst_profile = world.device_profile(dest);
        let user_profile = world
            .app(app_id)
            .map(|a| a.user_profile.clone())
            .unwrap_or_default();
        let adaptation = adapt(800, 600, &src_profile, &dst_profile, &user_profile);
        let adapt_cost = if adaptation.actions.is_empty() {
            SimDuration::ZERO
        } else {
            world.cost_model.adapt
        };

        let cpu = world
            .env
            .topology
            .host(dest)
            .map(|h| h.cpu())
            .unwrap_or(CpuFactor::REFERENCE);
        let resume_cost = cpu.scale(
            world
                .cost_model
                .resume_cost(flight.shipped_bytes, flight.remote_bytes)
                + rebind_cost
                + adapt_cost,
        );
        world
            .env
            .metrics
            .observe_static("migration.resume", resume_cost);
        arrival.rebind_cost = rebind_cost;
        arrival.adapt_cost = adapt_cost;
        arrival.resume_cost = resume_cost;
        arrival.rebind_bindings = rebind_outcomes.len();
        arrival.adapt_actions = adaptation.actions.len();
        arrival.cpu = cpu;
        layers::stack_after_checkin(world, sim, &cargo, Some(&flight), &arrival);
        world.env.trace.record_event(
            now,
            TraceCategory::Agent,
            TraceEvent::Restore {
                app: app_id.to_string(),
                dest: dest.to_string(),
            },
        );

        // Registry check-out / check-in.
        if let (Some(src_space), Some(dest_space)) = (src_space, dest_space) {
            if src_space != dest_space {
                if let Some(center) = world.federation.center_mut(src_space) {
                    let name = cargo.snapshot.app_name.clone();
                    center.deregister_application(&name);
                }
            }
        }
        let _ = Middleware::register_app_record(world, app_id);

        let report_base = MigrationReport {
            app: app_id,
            app_name: cargo.snapshot.app_name.clone(),
            mode: cargo.plan.mode,
            policy: cargo.plan.policy,
            phases: PhaseTimes {
                suspend: flight.suspend,
                migrate,
                resume: resume_cost,
            },
            shipped_bytes: flight.shipped_bytes,
            remote_bytes: flight.remote_bytes,
            dest_host: dest,
            completed_at: now + resume_cost,
            adaptation,
        };
        let root = flight.span;
        sim.schedule_in(resume_cost, move |w, sim| {
            let now = sim.now();
            if let Ok(app) = w.app_mut(app_id) {
                app.state = AppState::Running;
            }
            let latency =
                report_base.phases.suspend + report_base.phases.migrate + report_base.phases.resume;
            let outcome = ResumeOutcome {
                app: app_id,
                root,
                latency,
            };
            layers::stack_before_resume(w, sim, &outcome);
            w.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::Resumed {
                    app: app_id.to_string(),
                    dest: dest.to_string(),
                },
            );
            w.migration_log.push(report_base.clone());
            w.env.metrics.incr_static("migration.completed");
            layers::stack_after_resume(w, sim, &outcome);
        });
    }

    // mdlint::entry
    fn rebind_app(
        world: &mut Middleware,
        app_id: AppId,
        cargo: &Cargo,
        src_host: HostId,
    ) -> Vec<RebindOutcome> {
        let data_strategy = cargo.plan.data_strategy;
        let Ok(app) = world.app_mut(app_id) else {
            return Vec::new();
        };
        let mut outcomes = Vec::new();
        for binding in &mut app.bindings {
            let outcome = match data_strategy {
                DataStrategy::AlreadyPresent => rebind(true, false),
                DataStrategy::Carry => rebind(false, true),
                DataStrategy::RemoteStream => rebind(false, false),
            };
            if outcome == RebindOutcome::StreamRemote {
                binding.target = BindingTarget::RemoteUrl {
                    url: format!("mdagent://host-{}/{}", src_host.0, binding.name),
                    host_raw: src_host.0,
                };
            }
            outcomes.push(outcome);
        }
        outcomes
    }

    /// Phase 3 for clone-dispatch: install a replica application at the
    /// destination, linked for synchronization with its original.
    /// Returns the replica id.
    // mdlint::entry
    pub(crate) fn arrive_clone(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        clone_ma: &AgentId,
        cargo: Cargo,
    ) -> Option<AppId> {
        let dest = cargo.plan.dest_host();
        let source_app = cargo.plan.app();
        let now = sim.now();

        let mut arrival = Arrival::new(mdagent_wire::digest_of(&cargo).as_u64());
        if let CheckinFlow::Drop =
            layers::stack_wrap_checkin(world, sim, clone_ma, &cargo, &mut arrival)
        {
            return None;
        }
        let flight = world.in_flight.remove(clone_ma);
        layers::stack_before_checkin(world, sim, &cargo, flight.as_ref(), &mut arrival);
        let snapshot = arrival
            .snapshot
            .take()
            .unwrap_or_else(|| cargo.snapshot.clone());
        let elided_components = std::mem::take(&mut arrival.components);
        let replica_id = AppId(world.apps.len() as u32);
        let mut replica = Application::new(replica_id, snapshot.app_name.clone(), dest);
        let mut inventory = world.preinstalled_components(dest, &snapshot.app_name);
        inventory.merge(cargo.components.clone());
        for component in elided_components {
            inventory.insert(component);
        }
        replica.components = inventory;
        replica.state = AppState::Migrating;
        replica.mobile_agent = Some(clone_ma.clone());
        replica.cloned_from = Some(source_app);
        let _ = SnapshotManager::restore(&snapshot, &mut replica);
        arrival.snapshot = Some(snapshot);
        // The replica's own sync links start from the original's links; it
        // must at least link back to the source.
        replica.coordinator.add_sync_link(source_app);
        world.apps.push(replica);

        // Link the source to the new replica.
        if let Ok(src) = world.app_mut(source_app) {
            src.coordinator.add_sync_link(replica_id);
        }

        let shipped = cargo.wire_len();
        let cpu = world
            .env
            .topology
            .host(dest)
            .map(|h| h.cpu())
            .unwrap_or(CpuFactor::REFERENCE);
        let resume_cost = cpu.scale(world.cost_model.resume_cost(shipped, 0));
        let (suspend, migrate, root) = match flight.as_ref() {
            Some(f) => (f.suspend, now.saturating_since(f.departed_at), f.span),
            None => (SimDuration::ZERO, SimDuration::ZERO, SpanId::DISABLED),
        };
        arrival.resume_cost = resume_cost;
        arrival.cpu = cpu;
        arrival.replica = Some(replica_id);
        layers::stack_after_checkin(world, sim, &cargo, flight.as_ref(), &arrival);
        world.env.trace.record_event(
            now,
            TraceCategory::Agent,
            TraceEvent::ReplicaInstalled {
                replica: replica_id.to_string(),
                source: source_app.to_string(),
                dest: dest.to_string(),
            },
        );
        let report = MigrationReport {
            app: replica_id,
            app_name: cargo.snapshot.app_name.clone(),
            mode: MobilityMode::CloneDispatch,
            policy: cargo.plan.policy,
            phases: PhaseTimes {
                suspend,
                migrate,
                resume: resume_cost,
            },
            shipped_bytes: shipped,
            remote_bytes: cargo.remote_bytes,
            dest_host: dest,
            completed_at: now + resume_cost,
            adaptation: AdaptationReport::default(),
        };
        let _ = Middleware::register_app_record(world, replica_id);
        sim.schedule_in(resume_cost, move |w, sim| {
            let now = sim.now();
            if let Ok(app) = w.app_mut(replica_id) {
                app.state = AppState::Running;
            }
            let latency = report.phases.suspend + report.phases.migrate + report.phases.resume;
            let outcome = ResumeOutcome {
                app: replica_id,
                root,
                latency,
            };
            layers::stack_before_resume(w, sim, &outcome);
            w.env.trace.record_event(
                now,
                TraceCategory::Application,
                TraceEvent::ReplicaRunning {
                    replica: replica_id.to_string(),
                },
            );
            w.migration_log.push(report.clone());
            w.env.metrics.incr_static("migration.clones_completed");
            layers::stack_after_resume(w, sim, &outcome);
        });
        Some(replica_id)
    }

    /// Drops in-flight bookkeeping for an MA (after clone dispatch).
    pub(crate) fn remove_in_flight(&mut self, ma: &AgentId) {
        self.in_flight.remove(ma);
    }
}
