//! Application components: the units of migration.
//!
//! "An executing application generally consists of user interfaces, logic,
//! computation states, and resource bindings" (§1); the mobile agent "can
//! wrap any serializable part and migrate to the destination" (§4.3).

use std::fmt;

use mdagent_wire::{impl_wire_enum, impl_wire_struct, Blob, Wire};

/// The kind of an application component (Fig. 3's upper level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Application logic (the codec of the media player, editor engine…).
    Logic,
    /// User interface.
    Presentation,
    /// Data files (music, documents, slides).
    Data,
    /// A bound external resource descriptor.
    Resource,
}

impl_wire_enum!(ComponentKind {
    Logic = 0,
    Presentation = 1,
    Data = 2,
    Resource = 3,
});

impl ComponentKind {
    /// The registry tag for this kind (what [`ApplicationRecord::components`]
    /// stores).
    ///
    /// [`ApplicationRecord::components`]: mdagent_registry::ApplicationRecord
    pub fn tag(self) -> &'static str {
        match self {
            ComponentKind::Logic => "logic",
            ComponentKind::Presentation => "presentation",
            ComponentKind::Data => "data",
            ComponentKind::Resource => "resource",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A serializable application component.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Component name, unique within its application ("codec", "playlist").
    pub name: String,
    /// What kind of component this is.
    pub kind: ComponentKind,
    /// The serialized body; its length drives migration cost.
    pub payload: Blob,
}

impl_wire_struct!(Component {
    name,
    kind,
    payload
});

impl Component {
    /// Creates a component with an opaque payload of `size` bytes
    /// (synthetic bodies for simulation).
    pub fn synthetic(name: impl Into<String>, kind: ComponentKind, size: usize) -> Self {
        Component {
            name: name.into(),
            kind,
            payload: Blob::zeroed(size),
        }
    }

    /// Creates a component around real bytes.
    pub fn with_payload(name: impl Into<String>, kind: ComponentKind, payload: Vec<u8>) -> Self {
        Component {
            name: name.into(),
            kind,
            payload: Blob(payload),
        }
    }

    /// Payload size in bytes.
    pub fn size(&self) -> u64 {
        self.payload.len() as u64
    }
}

/// The component inventory of an application.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComponentSet {
    components: Vec<Component>,
}

impl_wire_struct!(ComponentSet { components });

impl ComponentSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a component (replacing a same-named one).
    pub fn insert(&mut self, component: Component) {
        self.components.retain(|c| c.name != component.name);
        self.components.push(component);
    }

    /// Removes a component by name.
    pub fn remove(&mut self, name: &str) -> Option<Component> {
        let idx = self.components.iter().position(|c| c.name == name)?;
        Some(self.components.remove(idx))
    }

    /// Looks up a component by name.
    pub fn get(&self, name: &str) -> Option<&Component> {
        self.components.iter().find(|c| c.name == name)
    }

    /// All components of a kind.
    pub fn of_kind(&self, kind: ComponentKind) -> impl Iterator<Item = &Component> {
        self.components.iter().filter(move |c| c.kind == kind)
    }

    /// Whether any component of the kind exists.
    pub fn has_kind(&self, kind: ComponentKind) -> bool {
        self.of_kind(kind).next().is_some()
    }

    /// Iterates over all components.
    pub fn iter(&self) -> impl Iterator<Item = &Component> {
        self.components.iter()
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Total payload bytes across all components.
    pub fn total_bytes(&self) -> u64 {
        self.components.iter().map(Component::size).sum()
    }

    /// Total payload bytes of one kind.
    pub fn bytes_of_kind(&self, kind: ComponentKind) -> u64 {
        self.of_kind(kind).map(Component::size).sum()
    }

    /// Extracts the named components into a new set (used by the MA to
    /// wrap exactly what the plan says).
    pub fn subset(&self, names: &[String]) -> ComponentSet {
        ComponentSet {
            components: self
                .components
                .iter()
                .filter(|c| names.contains(&c.name))
                .cloned()
                .collect(),
        }
    }

    /// Merges another set into this one (replacing same-named entries).
    pub fn merge(&mut self, other: ComponentSet) {
        for c in other.components {
            self.insert(c);
        }
    }

    /// Exact wire size of the whole set.
    pub fn wire_len(&self) -> u64 {
        self.encoded_len() as u64
    }
}

impl FromIterator<Component> for ComponentSet {
    fn from_iter<I: IntoIterator<Item = Component>>(iter: I) -> Self {
        let mut set = ComponentSet::new();
        for c in iter {
            set.insert(c);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdagent_wire::{from_bytes, to_bytes};

    fn set() -> ComponentSet {
        [
            Component::synthetic("codec", ComponentKind::Logic, 180_000),
            Component::synthetic("ui", ComponentKind::Presentation, 60_000),
            Component::synthetic("track", ComponentKind::Data, 2_000_000),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn inventory_queries() {
        let s = set();
        assert_eq!(s.len(), 3);
        assert!(s.has_kind(ComponentKind::Logic));
        assert!(!s.has_kind(ComponentKind::Resource));
        assert_eq!(s.bytes_of_kind(ComponentKind::Data), 2_000_000);
        assert_eq!(s.total_bytes(), 2_240_000);
        assert_eq!(s.get("codec").unwrap().kind, ComponentKind::Logic);
        assert!(s.get("ghost").is_none());
    }

    #[test]
    fn insert_replaces_same_name() {
        let mut s = set();
        s.insert(Component::synthetic("codec", ComponentKind::Logic, 10));
        assert_eq!(s.len(), 3);
        assert_eq!(s.get("codec").unwrap().size(), 10);
    }

    #[test]
    fn subset_and_merge() {
        let s = set();
        let shipped = s.subset(&["codec".into(), "track".into()]);
        assert_eq!(shipped.len(), 2);
        let mut dest = ComponentSet::new();
        dest.insert(Component::synthetic(
            "ui",
            ComponentKind::Presentation,
            60_000,
        ));
        let mut dest2 = dest.clone();
        dest2.merge(shipped);
        assert_eq!(dest2.len(), 3);
    }

    #[test]
    fn remove_component() {
        let mut s = set();
        assert!(s.remove("ui").is_some());
        assert!(s.remove("ui").is_none());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn wire_roundtrip_and_size() {
        let s = set();
        let bytes = to_bytes(&s);
        assert_eq!(bytes.len() as u64, s.wire_len());
        let back: ComponentSet = from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        // Wire size is dominated by payload bytes.
        assert!(s.wire_len() >= s.total_bytes());
        assert!(s.wire_len() < s.total_bytes() + 1024);
    }

    #[test]
    fn kind_tags() {
        assert_eq!(ComponentKind::Logic.tag(), "logic");
        assert_eq!(ComponentKind::Data.to_string(), "data");
    }
}
