//! Middleware errors.

use std::fmt;

use mdagent_agent::AgentError;
use mdagent_simnet::{HostId, SpaceId, TopologyError};

use crate::app::AppId;

/// Errors raised by the MDAgent middleware.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No application with this id.
    UnknownApp(AppId),
    /// The application is not in a state that allows the operation.
    BadAppState(AppId, &'static str),
    /// No host found in the requested space.
    NoHostInSpace(SpaceId),
    /// No agent container registered for the host.
    NoContainer(HostId),
    /// The application has no mobile agent attached.
    NoMobileAgent(AppId),
    /// Underlying agent platform failure.
    Agent(AgentError),
    /// Underlying topology failure.
    Topology(TopologyError),
    /// Registry lookup failed.
    Registry(String),
    /// A snapshot delta could not be applied: the base the delta was
    /// computed against is missing or its digest diverged. Callers must
    /// fall back to a full-snapshot resend, never drop the update.
    SnapshotDeltaMismatch(String),
    /// Payload (de)serialization failed.
    Wire(mdagent_wire::WireError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownApp(id) => write!(f, "unknown application {id}"),
            CoreError::BadAppState(id, needed) => {
                write!(f, "application {id} is not {needed}")
            }
            CoreError::NoHostInSpace(s) => write!(f, "no host available in {s}"),
            CoreError::NoContainer(h) => write!(f, "no agent container on {h}"),
            CoreError::NoMobileAgent(id) => write!(f, "application {id} has no mobile agent"),
            CoreError::Agent(e) => write!(f, "agent platform error: {e}"),
            CoreError::Topology(e) => write!(f, "topology error: {e}"),
            CoreError::Registry(msg) => write!(f, "registry error: {msg}"),
            CoreError::SnapshotDeltaMismatch(app) => {
                write!(f, "snapshot delta for {app} does not match its base")
            }
            CoreError::Wire(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Agent(e) => Some(e),
            CoreError::Topology(e) => Some(e),
            CoreError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AgentError> for CoreError {
    fn from(e: AgentError) -> Self {
        CoreError::Agent(e)
    }
}

impl From<TopologyError> for CoreError {
    fn from(e: TopologyError) -> Self {
        CoreError::Topology(e)
    }
}

impl From<mdagent_wire::WireError> for CoreError {
    fn from(e: mdagent_wire::WireError) -> Self {
        CoreError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::UnknownApp(AppId(3))
            .to_string()
            .contains("app-3"));
        assert!(CoreError::NoHostInSpace(SpaceId(1))
            .to_string()
            .contains("space-1"));
        assert!(CoreError::Registry("boom".into())
            .to_string()
            .contains("boom"));
        let e: CoreError = TopologyError::UnknownHost(HostId(9)).into();
        assert!(e.to_string().contains("host-9"));
    }
}
