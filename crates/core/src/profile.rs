//! Description files of the application model's upper level: user
//! profiles, device profiles (paper Fig. 3).

use std::collections::BTreeMap;

use mdagent_context::UserId;
use mdagent_simnet::HostId;
use mdagent_wire::impl_wire_struct;

/// A user's stable preferences ("users have specific operation habits and
/// preferences", §1).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UserProfile {
    user_raw: u32,
    preferences: BTreeMap<String, String>,
}

impl_wire_struct!(UserProfile {
    user_raw,
    preferences
});

impl UserProfile {
    /// Creates an empty profile for a user.
    pub fn new(user: UserId) -> Self {
        UserProfile {
            user_raw: user.0,
            preferences: BTreeMap::new(),
        }
    }

    /// The profile's user.
    pub fn user(&self) -> UserId {
        UserId(self.user_raw)
    }

    /// Sets a preference (builder style).
    pub fn with_preference(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.preferences.insert(key.into(), value.into());
        self
    }

    /// Updates a preference in place.
    pub fn set_preference(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.preferences.insert(key.into(), value.into());
    }

    /// Reads a preference.
    pub fn preference(&self, key: &str) -> Option<&str> {
        self.preferences.get(key).map(String::as_str)
    }

    /// Whether the user is left-handed (the paper's running §1 example).
    pub fn is_left_handed(&self) -> bool {
        self.preference("handedness") == Some("left")
    }
}

/// Capabilities of a device (screen size, resolution, audio), used by the
/// adaptor to bridge mismatches after migration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    host_raw: u32,
    /// Screen width in pixels.
    pub screen_width: u32,
    /// Screen height in pixels.
    pub screen_height: u32,
    /// Display density in dots per inch.
    pub dpi: u32,
    /// Whether audio output exists.
    pub has_audio: bool,
    /// Rough device class for requirement checks.
    pub class: DeviceClass,
}

/// Broad device classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// Desktop or laptop computer.
    Pc,
    /// Handheld device (PDA in the paper's vocabulary).
    Handheld,
    /// Wall display / projector host.
    WallDisplay,
}

mdagent_wire::impl_wire_enum!(DeviceClass {
    Pc = 0,
    Handheld = 1,
    WallDisplay = 2,
});

impl_wire_struct!(DeviceProfile {
    host_raw,
    screen_width,
    screen_height,
    dpi,
    has_audio,
    class
});

impl DeviceProfile {
    /// A standard desktop PC profile.
    pub fn pc(host: HostId) -> Self {
        DeviceProfile {
            host_raw: host.0,
            screen_width: 1280,
            screen_height: 1024,
            dpi: 96,
            has_audio: true,
            class: DeviceClass::Pc,
        }
    }

    /// A PDA-class handheld profile (small screen, as in the paper's
    /// handheld editor / music player demos).
    pub fn handheld(host: HostId) -> Self {
        DeviceProfile {
            host_raw: host.0,
            screen_width: 320,
            screen_height: 240,
            dpi: 120,
            has_audio: true,
            class: DeviceClass::Handheld,
        }
    }

    /// A meeting-room wall display.
    pub fn wall_display(host: HostId) -> Self {
        DeviceProfile {
            host_raw: host.0,
            screen_width: 1920,
            screen_height: 1080,
            dpi: 72,
            has_audio: false,
            class: DeviceClass::WallDisplay,
        }
    }

    /// The host this profile describes.
    pub fn host(&self) -> HostId {
        HostId(self.host_raw)
    }

    /// Screen area in pixels.
    pub fn screen_area(&self) -> u64 {
        u64::from(self.screen_width) * u64::from(self.screen_height)
    }

    /// Checks a `key=value` requirement (numeric keys compare `>=`).
    pub fn satisfies(&self, key: &str, value: &str) -> bool {
        match key {
            "screen-width" => value
                .parse::<u32>()
                .is_ok_and(|needed| self.screen_width >= needed),
            "screen-height" => value
                .parse::<u32>()
                .is_ok_and(|needed| self.screen_height >= needed),
            "audio" => {
                let needed = value == "true" || value == "yes";
                !needed || self.has_audio
            }
            "class" => match value {
                "pc" => self.class == DeviceClass::Pc,
                "handheld" => self.class == DeviceClass::Handheld,
                "wall-display" => self.class == DeviceClass::WallDisplay,
                _ => false,
            },
            _ => true, // unknown requirements are not ours to veto
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdagent_wire::{from_bytes, to_bytes};

    #[test]
    fn preferences_roundtrip() {
        let p = UserProfile::new(UserId(3))
            .with_preference("handedness", "left")
            .with_preference("volume", "7");
        assert!(p.is_left_handed());
        assert_eq!(p.preference("volume"), Some("7"));
        assert_eq!(p.preference("nope"), None);
        assert_eq!(p.user(), UserId(3));
        let back: UserProfile = from_bytes(&to_bytes(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn device_requirement_checks() {
        let pc = DeviceProfile::pc(HostId(0));
        assert!(pc.satisfies("screen-width", "800"));
        assert!(!DeviceProfile::handheld(HostId(1)).satisfies("screen-width", "800"));
        assert!(pc.satisfies("audio", "true"));
        assert!(!DeviceProfile::wall_display(HostId(2)).satisfies("audio", "true"));
        assert!(pc.satisfies("class", "pc"));
        assert!(!pc.satisfies("class", "handheld"));
        assert!(pc.satisfies("unknown-key", "whatever"));
        assert!(!pc.satisfies("class", "toaster"));
    }

    #[test]
    fn device_profiles_differ_sensibly() {
        let pc = DeviceProfile::pc(HostId(0));
        let pda = DeviceProfile::handheld(HostId(1));
        assert!(pc.screen_area() > pda.screen_area());
        assert_eq!(pda.host(), HostId(1));
        let back: DeviceProfile = from_bytes(&to_bytes(&pda)).unwrap();
        assert_eq!(back, pda);
    }

    #[test]
    fn malformed_numeric_requirement_is_unsatisfied() {
        let pc = DeviceProfile::pc(HostId(0));
        assert!(!pc.satisfies("screen-width", "not-a-number"));
    }
}
