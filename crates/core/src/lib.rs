//! # mdagent-core — the MDAgent middleware
//!
//! This crate is the paper's primary contribution: middleware support for
//! agent-based application mobility in pervasive environments. It ties the
//! substrate crates into the four-layer architecture of Fig. 2:
//!
//! * **Application layer** — the two-level application model (Fig. 3):
//!   [`Application`] with [`ComponentSet`] (logic / presentation / data),
//!   [`Binding`]s, the Observer-pattern [`Coordinator`], the
//!   [`SnapshotManager`], and the [`adaptor`](adapt).
//! * **Agent layer** — [`MobileAgent`] (wraps serializable components,
//!   checks out/in across containers) and [`AutonomousAgent`] (listens to
//!   context events, reasons with the paper's Fig. 6 rule base via
//!   [`decide_move`], plans migrations).
//! * **Context layer** — embedded [`ContextKernel`]
//!   (re-exported from `mdagent-context`), driven by the middleware's
//!   sensing loop.
//! * **Sensor layer** — simulated Cricket beacons inside the kernel.
//!
//! The taxonomy of Fig. 1 is explicit in the types: [`MobilityMode`]
//! (follow-me / clone-dispatch) × [`MobilityDomain`] (intra- / inter-space)
//! × per-component [`MigrationPlan`]s, under an adaptive or static
//! [`BindingPolicy`] — the comparison evaluated in the paper's Figs. 8–10.
//!
//! # Examples
//!
//! Build the paper's two-PC testbed and deploy a media player:
//!
//! ```
//! use mdagent_core::{Middleware, ComponentSet, Component, ComponentKind, UserProfile,
//!                    DeviceProfile};
//! use mdagent_context::UserId;
//! use mdagent_simnet::CpuFactor;
//!
//! let mut b = Middleware::builder();
//! let office = b.space("office");
//! let p4 = b.host("p4", office, CpuFactor::REFERENCE, DeviceProfile::pc);
//! let pm = b.host("pm", office, CpuFactor::new(0.94), DeviceProfile::pc);
//! b.ethernet(p4, pm)?;
//! let (mut world, mut sim) = b.build();
//!
//! let components: ComponentSet = [
//!     Component::synthetic("codec", ComponentKind::Logic, 180_000),
//!     Component::synthetic("ui", ComponentKind::Presentation, 60_000),
//!     Component::synthetic("track", ComponentKind::Data, 2_000_000),
//! ].into_iter().collect();
//! let app = Middleware::deploy_app(
//!     &mut world, &mut sim, "smart-media-player", p4, components,
//!     UserProfile::new(UserId(0)),
//! )?;
//! sim.run(&mut world);
//! assert_eq!(world.app(app)?.host, p4);
//! # Ok::<(), mdagent_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Reachable panics are typed errors in this crate; unwraps live in tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod adaptor;
mod agents;
mod app;
mod binding;
mod component;
mod coordinator;
mod datapath;
mod error;
mod layers;
mod messages;
mod middleware;
mod mobility;
mod observability;
mod profile;
mod rules;
mod snapshot;
mod timing;

pub use adaptor::{adapt, Adaptation, AdaptationReport};
pub use agents::{plan_migration, AutonomousAgent, MobileAgent};
pub use app::{AppId, AppState, Application};
pub use binding::{rebind, Binding, BindingTarget, RebindOutcome};
pub use component::{Component, ComponentKind, ComponentSet};
pub use coordinator::{Coordinator, ObserverRec};
pub use datapath::{ComponentCache, DataPathOptions};
pub use error::CoreError;
pub use layers::{
    AbortReason, AdmissionControlLayer, Arrival, CargoDraft, CheckinFlow, DataPathLayer,
    ExactlyOnceLayer, FaultRetryLayer, FlightSetup, InFlight, LayerStack, MigrationLayer,
    ResumeOutcome, SloLayer, TelemetryLayer, TransferFlow,
};
pub use messages::{ontologies, Cargo, ContextNotice, RetryNotice, SyncUpdate, TraceContext};
pub use middleware::{Middleware, MiddlewareBuilder, MigrationReport};
pub use mobility::{
    BindingPolicy, DataStrategy, MigrationPlan, MobilityDomain, MobilityMode, SpacePrimary,
};
pub use observability::{
    ObservabilityOptions, SloOptions, SLO_MIGRATION_COMPLETION, SLO_MIGRATION_LATENCY,
    SLO_REGISTRY_LOOKUP,
};
pub use profile::{DeviceClass, DeviceProfile, UserProfile};
pub use rules::{
    decide_move, decide_move_with, paper_rules, DecisionEngine, MoveDecision, PAPER_RULES,
};
pub use snapshot::{decode_components, is_consistent, Snapshot, SnapshotDelta, SnapshotManager};
pub use timing::{CostModel, HostClock, PhaseTimes, RetryPolicy, RoundTrip};

// Fault injection is configured through the builder; re-export the simnet
// types so callers need not depend on mdagent-simnet for the options.
pub use mdagent_registry::ResourceRecord;
pub use mdagent_simnet::{FaultInjector, FaultOptions, SamplerOptions, SamplerStats, SloMonitor};

// Re-export the context kernel type alongside, for doc linkage.
pub use mdagent_context::ContextKernel;
