//! The adaptor: bridging device mismatch after migration (paper §4.2).
//!
//! "The mobile agent will contact adaptor to conduct necessary adaptations
//! according to some customizable parameters to adjust some sizes,
//! resolutions, etc."

use crate::profile::{DeviceClass, DeviceProfile, UserProfile};

/// One adaptation action taken.
#[derive(Debug, Clone, PartialEq)]
pub enum Adaptation {
    /// The UI was scaled to fit the destination screen.
    ScaleUi {
        /// Horizontal scale factor applied.
        factor: f64,
        /// Resulting width in pixels.
        width: u32,
        /// Resulting height in pixels.
        height: u32,
    },
    /// Audio output redirected or disabled.
    AudioPolicy {
        /// Whether audio is enabled at the destination.
        enabled: bool,
    },
    /// UI mirrored for a left-handed user (the paper's §1 example).
    MirrorForHandedness,
    /// Density (dpi) compensation applied to fonts and icons.
    DensityCompensation {
        /// Ratio destination-dpi / source-dpi.
        ratio: f64,
    },
}

/// The adaptor's report for one migration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdaptationReport {
    /// Actions applied, in order.
    pub actions: Vec<Adaptation>,
}

impl AdaptationReport {
    /// Whether any action of the UI-scaling kind was applied.
    pub fn scaled(&self) -> bool {
        self.actions
            .iter()
            .any(|a| matches!(a, Adaptation::ScaleUi { .. }))
    }

    /// Whether the UI was mirrored.
    pub fn mirrored(&self) -> bool {
        self.actions.contains(&Adaptation::MirrorForHandedness)
    }
}

/// Computes adaptations for a UI designed at `(design_width, design_height)`
/// moving from `source` to `destination`, honouring the user's profile.
pub fn adapt(
    design_width: u32,
    design_height: u32,
    source: &DeviceProfile,
    destination: &DeviceProfile,
    user: &UserProfile,
) -> AdaptationReport {
    let mut actions = Vec::new();

    // Scale to fit if the destination cannot show the design size 1:1.
    if destination.screen_width < design_width || destination.screen_height < design_height {
        let fx = f64::from(destination.screen_width) / f64::from(design_width);
        let fy = f64::from(destination.screen_height) / f64::from(design_height);
        let factor = fx.min(fy);
        actions.push(Adaptation::ScaleUi {
            factor,
            width: (f64::from(design_width) * factor).round() as u32,
            height: (f64::from(design_height) * factor).round() as u32,
        });
    } else if destination.class == DeviceClass::WallDisplay
        && destination.screen_width > design_width * 2
    {
        // Wall displays scale up for visibility.
        let factor = f64::from(destination.screen_width) / f64::from(design_width);
        let factor = factor.min(2.0);
        actions.push(Adaptation::ScaleUi {
            factor,
            width: (f64::from(design_width) * factor).round() as u32,
            height: (f64::from(design_height) * factor).round() as u32,
        });
    }

    if source.has_audio != destination.has_audio {
        actions.push(Adaptation::AudioPolicy {
            enabled: destination.has_audio,
        });
    }

    if user.is_left_handed() {
        actions.push(Adaptation::MirrorForHandedness);
    }

    if source.dpi != destination.dpi {
        actions.push(Adaptation::DensityCompensation {
            ratio: f64::from(destination.dpi) / f64::from(source.dpi),
        });
    }

    AdaptationReport { actions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdagent_context::UserId;
    use mdagent_simnet::HostId;

    fn user() -> UserProfile {
        UserProfile::new(UserId(0))
    }

    #[test]
    fn pc_to_handheld_scales_down() {
        let report = adapt(
            800,
            600,
            &DeviceProfile::pc(HostId(0)),
            &DeviceProfile::handheld(HostId(1)),
            &user(),
        );
        assert!(report.scaled());
        let Adaptation::ScaleUi {
            factor,
            width,
            height,
        } = report.actions[0]
        else {
            panic!("first action should be scaling");
        };
        assert!(factor < 1.0);
        assert!(width <= 320 && height <= 240);
        // dpi differs (96 vs 120): density compensation present.
        assert!(report
            .actions
            .iter()
            .any(|a| matches!(a, Adaptation::DensityCompensation { .. })));
    }

    #[test]
    fn pc_to_pc_no_scaling() {
        let report = adapt(
            800,
            600,
            &DeviceProfile::pc(HostId(0)),
            &DeviceProfile::pc(HostId(1)),
            &user(),
        );
        assert!(!report.scaled());
        assert!(report.actions.is_empty());
    }

    #[test]
    fn wall_display_scales_up_capped() {
        let report = adapt(
            640,
            480,
            &DeviceProfile::pc(HostId(0)),
            &DeviceProfile::wall_display(HostId(1)),
            &user(),
        );
        let Adaptation::ScaleUi { factor, .. } = report.actions[0] else {
            panic!("expected scaling");
        };
        assert_eq!(factor, 2.0, "scale-up capped at 2x");
        // Wall display has no audio: policy action present.
        assert!(report
            .actions
            .contains(&Adaptation::AudioPolicy { enabled: false }));
    }

    #[test]
    fn left_handed_user_gets_mirrored_ui() {
        let lefty = UserProfile::new(UserId(0)).with_preference("handedness", "left");
        let report = adapt(
            800,
            600,
            &DeviceProfile::pc(HostId(0)),
            &DeviceProfile::pc(HostId(1)),
            &lefty,
        );
        assert!(report.mirrored());
    }
}
