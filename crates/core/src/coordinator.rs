//! The coordinator: Observer-pattern state synchronization (paper §4.2).
//!
//! "Different presentations register themselves to the coordinator. When
//! the states change, these presentations can get notified automatically."

use std::collections::BTreeMap;

use mdagent_wire::impl_wire_struct;

use crate::app::AppId;

/// A registered presentation observer.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserverRec {
    /// Observer name (e.g. `"main-window"`).
    pub name: String,
    /// The state version this observer has seen.
    pub seen_version: u64,
}

impl_wire_struct!(ObserverRec { name, seen_version });

/// Versioned key→value application state with observers and sync links.
///
/// State updates bump a version counter; observers are told which keys
/// changed; sync links name the replica applications (clone-dispatch) that
/// must receive the same update over the network.
///
/// # Examples
///
/// ```
/// use mdagent_core::Coordinator;
///
/// let mut coord = Coordinator::new();
/// coord.register_observer("main-window");
/// let version = coord.set_state("track", "prelude.mp3");
/// let stale = coord.stale_observers();
/// assert_eq!(stale, vec!["main-window".to_string()]);
/// coord.mark_seen("main-window", version);
/// assert!(coord.stale_observers().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Coordinator {
    state: BTreeMap<String, String>,
    version: u64,
    observers: Vec<ObserverRec>,
    sync_links_raw: Vec<u32>,
}

impl_wire_struct!(Coordinator {
    state,
    version,
    observers,
    sync_links_raw
});

impl Coordinator {
    /// Creates an empty coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a presentation observer (idempotent by name).
    pub fn register_observer(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.observers.iter().any(|o| o.name == name) {
            self.observers.push(ObserverRec {
                name,
                seen_version: self.version,
            });
        }
    }

    /// Removes an observer. Returns whether it existed.
    pub fn deregister_observer(&mut self, name: &str) -> bool {
        let before = self.observers.len();
        self.observers.retain(|o| o.name != name);
        self.observers.len() != before
    }

    /// Sets a state entry, bumping and returning the new version.
    pub fn set_state(&mut self, key: impl Into<String>, value: impl Into<String>) -> u64 {
        self.state.insert(key.into(), value.into());
        self.version += 1;
        self.version
    }

    /// Applies a remote update only if it is newer than local state;
    /// returns whether it was applied (stale updates are dropped, which is
    /// what keeps replica convergence monotone).
    pub fn apply_remote(&mut self, key: &str, value: &str, version: u64) -> bool {
        if version <= self.version {
            return false;
        }
        self.state.insert(key.to_owned(), value.to_owned());
        self.version = version;
        true
    }

    /// Reads a state entry.
    pub fn state(&self, key: &str) -> Option<&str> {
        self.state.get(key).map(String::as_str)
    }

    /// The whole state map.
    pub fn state_map(&self) -> &BTreeMap<String, String> {
        &self.state
    }

    /// Current version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Observers that have not seen the current version.
    pub fn stale_observers(&self) -> Vec<String> {
        self.observers
            .iter()
            .filter(|o| o.seen_version < self.version)
            .map(|o| o.name.clone())
            .collect()
    }

    /// Records that an observer has caught up to `version`.
    pub fn mark_seen(&mut self, name: &str, version: u64) {
        if let Some(o) = self.observers.iter_mut().find(|o| o.name == name) {
            o.seen_version = o.seen_version.max(version);
        }
    }

    /// Registered observer names.
    pub fn observers(&self) -> Vec<&str> {
        self.observers.iter().map(|o| o.name.as_str()).collect()
    }

    /// Adds a synchronization link to a replica application.
    pub fn add_sync_link(&mut self, app: AppId) {
        if !self.sync_links_raw.contains(&app.0) {
            self.sync_links_raw.push(app.0);
        }
    }

    /// Removes a synchronization link.
    pub fn remove_sync_link(&mut self, app: AppId) -> bool {
        let before = self.sync_links_raw.len();
        self.sync_links_raw.retain(|&a| a != app.0);
        self.sync_links_raw.len() != before
    }

    /// Linked replica applications.
    pub fn sync_links(&self) -> Vec<AppId> {
        self.sync_links_raw.iter().copied().map(AppId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observers_track_versions() {
        let mut c = Coordinator::new();
        c.register_observer("a");
        c.register_observer("b");
        c.register_observer("a"); // idempotent
        assert_eq!(c.observers().len(), 2);
        let v1 = c.set_state("k", "1");
        assert_eq!(c.stale_observers(), vec!["a".to_string(), "b".to_string()]);
        c.mark_seen("a", v1);
        assert_eq!(c.stale_observers(), vec!["b".to_string()]);
        let _v2 = c.set_state("k", "2");
        assert_eq!(c.stale_observers().len(), 2, "a is stale again");
        assert!(c.deregister_observer("b"));
        assert!(!c.deregister_observer("b"));
    }

    #[test]
    fn remote_updates_apply_monotonically() {
        let mut c = Coordinator::new();
        c.set_state("slide", "1"); // version 1
        assert!(c.apply_remote("slide", "3", 3));
        assert_eq!(c.state("slide"), Some("3"));
        assert_eq!(c.version(), 3);
        assert!(!c.apply_remote("slide", "2", 2), "stale update dropped");
        assert_eq!(c.state("slide"), Some("3"));
    }

    #[test]
    fn sync_links_dedupe() {
        let mut c = Coordinator::new();
        c.add_sync_link(AppId(1));
        c.add_sync_link(AppId(1));
        c.add_sync_link(AppId(2));
        assert_eq!(c.sync_links(), vec![AppId(1), AppId(2)]);
        assert!(c.remove_sync_link(AppId(1)));
        assert!(!c.remove_sync_link(AppId(1)));
        assert_eq!(c.sync_links(), vec![AppId(2)]);
    }

    #[test]
    fn wire_roundtrip() {
        let mut c = Coordinator::new();
        c.register_observer("a");
        c.set_state("k", "v");
        c.add_sync_link(AppId(7));
        let back: Coordinator = mdagent_wire::from_bytes(&mdagent_wire::to_bytes(&c)).unwrap();
        assert_eq!(back, c);
    }
}
