//! The two agent kinds of the paper's agent layer: the mobile agent (MA)
//! that wraps and carries application components, and the autonomous agent
//! (AA) that watches context and decides migrations.

use mdagent_agent::{
    AclMessage, Agent, AgentId, Cx, Journey, Performative, Platform, PlatformHost,
};
use mdagent_context::topics;
use mdagent_simnet::{SimDuration, SpaceId, SpanId, TraceCategory, TraceEvent};
use mdagent_wire::{impl_wire_struct, to_bytes};

use crate::app::{AppId, AppState};
use crate::component::ComponentKind;
use crate::layers::TransferFlow;
use crate::messages::{ontologies, Cargo, ContextNotice};
use crate::middleware::Middleware;
use crate::mobility::{BindingPolicy, DataStrategy, MigrationPlan, MobilityMode};

pub(crate) const TAG_CLEAR_CARGO: u64 = 1;

/// Builds a migration plan for an application: which components to ship
/// (those the destination registry lacks, or everything under static
/// binding) and how data is handled. This is the AA's planning procedure,
/// exposed so scenario drivers and benchmarks can migrate directly.
pub fn plan_migration(
    world: &mut Middleware,
    app_id: AppId,
    dest_host: mdagent_simnet::HostId,
    mode: MobilityMode,
    policy: BindingPolicy,
) -> Option<MigrationPlan> {
    let (app_name, src_host) = {
        let app = world.app(app_id).ok()?;
        (app.name.clone(), app.host)
    };
    let src_space = world.space_of(src_host).ok()?;
    let dest_space = world.space_of(dest_host).ok()?;
    let inter_space = src_space != dest_space;
    // Degraded planning: when the destination registry is unreachable the
    // AA cannot learn what is already present there, so it falls back to
    // static binding — ship everything, assume nothing.
    let registry_ok = !inter_space || world.registry_reachable(src_host, dest_space);
    let policy = if registry_ok {
        policy
    } else {
        world.env_mut().metrics.incr_static("aa.registry_degraded");
        BindingPolicy::Static
    };
    let dest_record = if registry_ok {
        world
            .federation
            .find_application(src_space, dest_space, &app_name)
            .ok()
            .and_then(|f| f.value)
    } else {
        None
    };
    let dest_has = |tag: &str| -> bool {
        dest_record
            .as_ref()
            .is_some_and(|r| r.host == dest_host && r.has_component(tag))
    };

    let app = world.app(app_id).ok()?;
    let mut ship = Vec::new();
    for component in app.components.iter() {
        let ship_it = match (policy, component.kind) {
            (BindingPolicy::Static, _) => true,
            // Adaptive follow-me leaves data behind (remote URL); a clone
            // must carry data the destination lacks — the paper's slide
            // show "MAs just need to carry the slides".
            (BindingPolicy::Adaptive, ComponentKind::Data) => {
                mode == MobilityMode::CloneDispatch && !dest_has(ComponentKind::Data.tag())
            }
            (BindingPolicy::Adaptive, kind) => !dest_has(kind.tag()),
        };
        if ship_it {
            ship.push(component.name.clone());
        }
    }
    let data_strategy = match policy {
        BindingPolicy::Static => DataStrategy::Carry,
        BindingPolicy::Adaptive => {
            if dest_has(ComponentKind::Data.tag()) {
                DataStrategy::AlreadyPresent
            } else if mode == MobilityMode::CloneDispatch {
                DataStrategy::Carry
            } else {
                DataStrategy::RemoteStream
            }
        }
    };
    Some(MigrationPlan {
        app_raw: app_id.0,
        mode,
        policy,
        dest_host_raw: dest_host.0,
        ship_components: ship,
        data_strategy,
        inter_space,
    })
}

/// The mobile agent: "not bounded to a specific component of applications;
/// instead it can wrap any serializable part and migrate to the
/// destination" (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct MobileAgent {
    /// The application instance this MA manages (raw id).
    pub app_raw: u32,
    cargo: Option<Cargo>,
}

impl_wire_struct!(MobileAgent { app_raw, cargo });

impl MobileAgent {
    /// Creates the MA for an application.
    pub fn new(app: AppId) -> Self {
        MobileAgent {
            app_raw: app.0,
            cargo: None,
        }
    }

    /// The managed application.
    pub fn app(&self) -> AppId {
        AppId(self.app_raw)
    }

    /// Dispatches the cargo currently held: moves (follow-me) or clones
    /// the agent toward the plan's destination. Shared by the initial
    /// CARGO hand-off and the watchdog's RETRY nudge.
    fn dispatch_cargo(&mut self, cx: &mut Cx<'_, Middleware>) {
        let Some(cargo) = self.cargo.as_ref() else {
            cx.world.env_mut().metrics.incr_static("ma.no_cargo");
            return;
        };
        let dest_host = cargo.plan.dest_host();
        let mode = cargo.plan.mode;
        let Ok(container) = cx.world.container_on(dest_host) else {
            cx.world
                .env_mut()
                .metrics
                .incr_static("ma.no_dest_container");
            return;
        };
        // Any policy layer may veto the departure before bytes move
        // (e.g. an admission cap at the destination space).
        if let TransferFlow::Reject(_) = Middleware::transfer_gate(cx.world, cx.sim, cx.id, cargo) {
            cx.world
                .env_mut()
                .metrics
                .incr_static("ma.departure_rejected");
            Middleware::abort_departure(cx.world, cx.sim, cx.id);
            self.cargo = None;
            return;
        }
        match mode {
            MobilityMode::FollowMe => {
                // Deferred until this handler returns (we are the agent
                // being moved). A link-down refusal leaves us active at
                // the source; the watchdog's retry picks us up again.
                let _ = Platform::move_agent(cx.world, cx.sim, cx.id, container, 0);
            }
            MobilityMode::CloneDispatch => {
                let id = cx.id.clone();
                match Platform::clone_agent(cx.world, cx.sim, &id, container, 0) {
                    Ok((clone_id, _)) => {
                        Middleware::note_clone_dispatched(
                            cx.world, cx.sim, &id, clone_id, dest_host,
                        );
                        // Drop the cargo copy once the (deferred) clone
                        // snapshot has been taken.
                        Platform::set_timer(
                            cx.world,
                            cx.sim,
                            &id,
                            SimDuration::ZERO,
                            TAG_CLEAR_CARGO,
                        );
                    }
                    Err(_) => {
                        // A refused clone leaves the original running; the
                        // source flight must not linger as a leaked record
                        // with an unclosed root span.
                        cx.world.env_mut().metrics.incr_static("ma.clone_failed");
                        Middleware::abort_departure(cx.world, cx.sim, &id);
                        self.cargo = None;
                    }
                }
            }
        }
    }
}

impl Agent<Middleware> for MobileAgent {
    fn type_name(&self) -> &'static str {
        "mobile-agent"
    }

    fn snapshot(&self) -> Vec<u8> {
        to_bytes(self)
    }

    fn on_start(&mut self, journey: Journey, cx: Cx<'_, Middleware>) {
        match journey {
            Journey::Born => {}
            Journey::Moved { .. } => {
                if let Some(cargo) = self.cargo.take() {
                    Middleware::arrive_follow_me(cx.world, cx.sim, cx.id, cargo);
                }
            }
            Journey::Cloned { .. } => {
                if let Some(cargo) = self.cargo.take() {
                    if let Some(replica) = Middleware::arrive_clone(cx.world, cx.sim, cx.id, cargo)
                    {
                        self.app_raw = replica.0;
                    }
                }
            }
        }
    }

    fn on_message(&mut self, msg: &AclMessage, mut cx: Cx<'_, Middleware>) {
        match msg.ontology.as_str() {
            ontologies::MIGRATE | ontologies::CLONE => {
                let Ok(plan) = msg.payload::<MigrationPlan>() else {
                    cx.world.env_mut().metrics.incr_static("ma.bad_plan");
                    return;
                };
                let now = cx.sim.now();
                cx.world.env_mut().trace.record(
                    now,
                    TraceCategory::Agent,
                    format!(
                        "MA {} received {} plan to {}",
                        cx.id,
                        plan.mode,
                        plan.dest_host()
                    ),
                );
                if let Err(e) = Middleware::suspend_and_wrap(cx.world, cx.sim, plan, cx.id.clone())
                {
                    cx.world.env_mut().metrics.incr_static("ma.plan_rejected");
                    let now = cx.sim.now();
                    cx.world.env_mut().trace.record(
                        now,
                        TraceCategory::Agent,
                        format!("MA {} rejected plan: {e}", cx.id),
                    );
                }
            }
            ontologies::CARGO => {
                let Ok(cargo) = msg.payload::<Cargo>() else {
                    cx.world.env_mut().metrics.incr_static("ma.bad_cargo");
                    return;
                };
                self.cargo = Some(cargo);
                self.dispatch_cargo(&mut cx);
            }
            ontologies::RETRY => {
                if msg.payload::<crate::messages::RetryNotice>().is_err() {
                    cx.world.env_mut().metrics.incr_static("ma.bad_retry");
                    return;
                }
                let Some(cargo) = self.cargo.as_ref() else {
                    cx.world
                        .env_mut()
                        .metrics
                        .incr_static("ma.retry_without_cargo");
                    return;
                };
                let dest = cargo.plan.dest_host();
                let app_id = cargo.plan.app();
                // A slow transfer may have landed after the watchdog fired:
                // the retry is then obsolete — drop the stale cargo instead
                // of deploying the application a second time.
                if cx.world.app(app_id).map(|a| a.host) == Ok(dest) {
                    self.cargo = None;
                    cx.world.env_mut().metrics.incr_static("ma.retry_obsolete");
                    Middleware::clear_in_flight(cx.world, cx.id);
                    return;
                }
                cx.world
                    .env_mut()
                    .metrics
                    .incr_static("ma.retry_dispatched");
                self.dispatch_cargo(&mut cx);
            }
            ontologies::SYNC => {
                if let Ok(update) = msg.payload::<crate::messages::SyncUpdate>() {
                    Middleware::apply_sync(cx.world, &update);
                }
            }
            _ => {
                cx.world
                    .env_mut()
                    .metrics
                    .incr_static("ma.unknown_ontology");
            }
        }
    }

    fn on_timer(&mut self, tag: u64, cx: Cx<'_, Middleware>) {
        if tag == TAG_CLEAR_CARGO {
            self.cargo = None;
            Middleware::clear_in_flight(cx.world, cx.id);
        }
    }
}

/// A lazily built [`crate::rules::DecisionEngine`], rebuilt when the
/// installed rule base changes. Pure cache: excluded from equality and not
/// serialized (a migrated AA recompiles on first decision at the
/// destination).
#[derive(Debug, Clone, Default)]
struct EngineCache(Option<crate::rules::DecisionEngine>);

impl PartialEq for EngineCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl EngineCache {
    /// The engine compiled for `rule_text`, (re)compiling if the cache is
    /// cold or was built from different text.
    fn for_rules(&mut self, rule_text: &str) -> &mut crate::rules::DecisionEngine {
        let stale = self.0.as_ref().is_none_or(|e| e.rule_text() != rule_text);
        if stale {
            self.0 = None;
        }
        self.0
            .get_or_insert_with(|| crate::rules::DecisionEngine::new(rule_text))
    }
}

/// The autonomous agent: "responsible for reasoning and decision-making
/// according to the data received from context layer" (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct AutonomousAgent {
    /// The watched user (raw id).
    pub user_raw: u32,
    /// The managed application (raw id).
    pub app_raw: u32,
    policy: BindingPolicy,
    resource_marker: String,
    auto_follow: bool,
    prestage: bool,
    rule_base: String,
    engine: EngineCache,
}

impl_wire_struct!(AutonomousAgent {
    user_raw,
    app_raw,
    policy,
    resource_marker,
    auto_follow,
    prestage,
    rule_base
} skip { engine });

impl AutonomousAgent {
    /// Creates an AA that follows `user` and manages `app` under the given
    /// binding policy.
    pub fn new(user: mdagent_context::UserId, app: AppId, policy: BindingPolicy) -> Self {
        AutonomousAgent {
            user_raw: user.0,
            app_raw: app.0,
            policy,
            resource_marker: "printer".to_owned(),
            auto_follow: true,
            prestage: false,
            rule_base: "default".to_owned(),
            engine: EngineCache::default(),
        }
    }

    /// Disables automatic follow-me on location change (the AA still
    /// handles explicit indications).
    pub fn manual_only(mut self) -> Self {
        self.auto_follow = false;
        self
    }

    /// Enables predictive pre-staging: after each migration decision the
    /// AA consults the location predictor and copies logic/UI components
    /// to the likely *next* room in the background.
    pub fn with_prestaging(mut self) -> Self {
        self.prestage = true;
        self
    }

    /// Uses a named rule base installed through
    /// [`Middleware::install_rule_base`] instead of the shipped default.
    pub fn with_rule_base(mut self, name: impl Into<String>) -> Self {
        self.rule_base = name.into();
        self
    }

    /// The managed application.
    pub fn app(&self) -> AppId {
        AppId(self.app_raw)
    }

    /// Builds the migration plan for the given destination, consulting the
    /// destination registry for already-present components (adaptive
    /// binding) or shipping everything (static binding).
    fn build_plan(
        &self,
        world: &mut Middleware,
        dest_host: mdagent_simnet::HostId,
        mode: MobilityMode,
    ) -> Option<MigrationPlan> {
        plan_migration(world, self.app(), dest_host, mode, self.policy)
    }

    fn handle_location(&mut self, space: SpaceId, cx: &mut Cx<'_, Middleware>) {
        if !self.auto_follow {
            return;
        }
        let Ok(app) = cx.world.app(self.app()) else {
            return;
        };
        if app.state != AppState::Running {
            return; // already migrating or stopped
        }
        let src_host = app.host;
        let app_name = app.name.clone();
        let Ok(app_space) = cx.world.space_of(src_host) else {
            return;
        };
        if app_space == space {
            return; // the application is already where the user is
        }
        let Ok(dest_host) = cx.world.primary_host(space) else {
            let now = cx.sim.now();
            cx.world.env_mut().trace.record_event(
                now,
                TraceCategory::Agent,
                TraceEvent::NoHost {
                    space: space.to_string(),
                },
            );
            return;
        };

        // Device compatibility first (§4.3: "whether the devices are
        // compatible").
        let dest_profile = cx.world.device_profile(dest_host);
        let compatible = cx
            .world
            .app(self.app())
            .map(|a| a.device_compatible(&dest_profile))
            .unwrap_or(false);
        if !compatible {
            let now = cx.sim.now();
            cx.world
                .env_mut()
                .metrics
                .incr_static("aa.device_incompatible");
            cx.world.env_mut().trace.record_event(
                now,
                TraceCategory::Agent,
                TraceEvent::DeclineDevice {
                    app_name: app_name.clone(),
                    dest_host: dest_host.to_string(),
                },
            );
            return;
        }

        // Reasoning per the paper's Fig. 6 pipeline: compatibility +
        // response-time guard.
        let rt_ms = cx.world.response_time_ms(src_host, dest_host);
        let rule_text = cx.world.rule_base(&self.rule_base).to_owned();
        let decision_at = cx.sim.now();
        let decision_span = {
            let env = cx.world.env_mut();
            // Detached: the decision span closes inside the deliberation
            // closure scheduled by `send_plan_after_deliberation`.
            let span = env
                .telemetry
                .open("aa.decision", None, decision_at)
                .detach();
            // Raw host ids as integers: this fires on every location event,
            // so keep it free of formatting allocations.
            env.telemetry.attr(span, "app", u64::from(self.app_raw));
            env.telemetry.attr(span, "trigger", "location");
            env.telemetry.attr(span, "src_host", u64::from(src_host.0));
            env.telemetry
                .attr(span, "dest_host", u64::from(dest_host.0));
            env.telemetry.attr(span, "response_time_ms", rt_ms);
            span
        };
        let (decision, stats) = {
            let engine = self.engine.for_rules(&rule_text);
            let decision = engine.decide(src_host, dest_host, &self.resource_marker, rt_ms);
            (decision, engine.last_stats().clone())
        };
        let reason_cost = cx.world.cost_model.reasoning;
        {
            let env = cx.world.env_mut();
            let reason = env.telemetry.record_span(
                "aa.reason",
                Some(decision_span),
                decision_at,
                decision_at + reason_cost,
            );
            env.telemetry.attr(reason, "rounds", stats.rounds);
            env.telemetry
                .attr(reason, "rules_evaluated", stats.rules_evaluated);
            env.telemetry
                .attr(reason, "rules_skipped", stats.rules_skipped);
            env.telemetry
                .attr(reason, "seed_evaluations", stats.seed_evaluations);
            env.telemetry
                .attr(reason, "facts_derived", stats.facts_derived);
            env.telemetry.attr(reason, "max_delta", stats.max_delta());
        }
        let now = cx.sim.now();
        if decision.is_none() {
            let env = cx.world.env_mut();
            env.metrics.incr_static("aa.migration_declined");
            env.telemetry.attr(decision_span, "outcome", "decline");
            env.telemetry.end(decision_span, now + reason_cost);
            env.trace.record_event(
                now,
                TraceCategory::Agent,
                TraceEvent::DeclineNoMove {
                    app_name: app_name.clone(),
                    response_time_ms: rt_ms,
                },
            );
            return;
        }
        let Some(plan) = self.build_plan(cx.world, dest_host, MobilityMode::FollowMe) else {
            cx.world.env_mut().telemetry.end(decision_span, now);
            return;
        };
        {
            let env = cx.world.env_mut();
            env.telemetry.attr(decision_span, "outcome", "follow-me");
            env.trace.record_event(
                now,
                TraceCategory::Agent,
                TraceEvent::DecideFollowMe {
                    app_name: app_name.clone(),
                    dest_host: dest_host.to_string(),
                    components: plan.ship_components.len(),
                    data_strategy: format!("{:?}", plan.data_strategy),
                },
            );
        }
        self.send_plan_after_deliberation(plan, ontologies::MIGRATE, rt_ms, decision_span, cx);

        // Predictive pre-staging: copy logic/UI toward the likely next hop.
        if self.prestage {
            let user = mdagent_context::UserId(self.user_raw);
            if let Some(next_space) = cx.world.kernel.predictor.predict_next(user, space) {
                if next_space != space {
                    if let Ok(next_host) = cx.world.primary_host(next_space) {
                        if next_host != dest_host {
                            let _ = Middleware::prestage(cx.world, cx.sim, self.app(), next_host);
                        }
                    }
                }
            }
        }
    }

    fn handle_indication(&mut self, notice: &ContextNotice, cx: &mut Cx<'_, Middleware>) {
        if notice.command != "dispatch" {
            return;
        }
        for arg in &notice.args {
            let Ok(space_raw) = arg.parse::<u32>() else {
                continue;
            };
            let Ok(dest_host) = cx.world.primary_host(SpaceId(space_raw)) else {
                continue;
            };
            let Ok(app) = cx.world.app(self.app()) else {
                return;
            };
            if app.host == dest_host {
                continue;
            }
            let src_host = app.host;
            let rt_ms = cx.world.response_time_ms(src_host, dest_host);
            let Some(plan) = self.build_plan(cx.world, dest_host, MobilityMode::CloneDispatch)
            else {
                continue;
            };
            let now = cx.sim.now();
            let decision_span = {
                let env = cx.world.env_mut();
                // Detached: closed by the deliberation closure, like the
                // follow-me decision span above.
                let span = env.telemetry.open("aa.decision", None, now).detach();
                env.telemetry.attr(span, "trigger", "indication");
                env.telemetry.attr(span, "src_host", u64::from(src_host.0));
                env.telemetry
                    .attr(span, "dest_host", u64::from(dest_host.0));
                env.telemetry.attr(span, "outcome", "clone-dispatch");
                env.trace.record_event(
                    now,
                    TraceCategory::Agent,
                    TraceEvent::DecideClone {
                        dest_host: dest_host.to_string(),
                    },
                );
                span
            };
            self.send_plan_after_deliberation(plan, ontologies::CLONE, rt_ms, decision_span, cx);
        }
    }

    /// Charges the simulated reasoning + registry-lookup latency, then
    /// sends the plan to the application's MA.
    fn send_plan_after_deliberation(
        &self,
        plan: MigrationPlan,
        ontology: &'static str,
        rt_ms: f64,
        decision_span: SpanId,
        cx: &mut Cx<'_, Middleware>,
    ) {
        let now = cx.sim.now();
        let Ok(app) = cx.world.app(self.app()) else {
            cx.world.env_mut().telemetry.end(decision_span, now);
            return;
        };
        let Some(ma) = app.mobile_agent.clone() else {
            cx.world.env_mut().telemetry.end(decision_span, now);
            return;
        };
        let mut lookup = cx.world.cost_model.registry_lookup;
        if plan.inter_space {
            // The destination registry is queried across the gateway.
            lookup += SimDuration::from_millis_f64(rt_ms);
        }
        let latency = cx.world.cost_model.reasoning + lookup;
        Middleware::slo_observe_lookup(cx.world, now, lookup);
        cx.world
            .env_mut()
            .metrics
            .observe_static("aa.deliberation", latency);
        let aa = cx.id.clone();
        cx.sim.schedule_in(latency, move |w, sim| {
            let now = sim.now();
            w.env_mut().telemetry.end(decision_span, now);
            let msg = AclMessage::new(Performative::Request, aa, ma)
                .with_ontology(ontology)
                .with_payload(&plan);
            Platform::send(w, sim, msg);
        });
    }
}

impl Agent<Middleware> for AutonomousAgent {
    fn type_name(&self) -> &'static str {
        "autonomous-agent"
    }

    fn snapshot(&self) -> Vec<u8> {
        to_bytes(self)
    }

    fn on_message(&mut self, msg: &AclMessage, mut cx: Cx<'_, Middleware>) {
        if msg.ontology != ontologies::CONTEXT {
            return;
        }
        let Ok(notice) = msg.payload::<ContextNotice>() else {
            cx.world.env_mut().metrics.incr_static("aa.bad_notice");
            return;
        };
        if notice.topic == topics::LOCATION && notice.user_raw == self.user_raw {
            self.handle_location(SpaceId(notice.space_raw), &mut cx);
        } else if notice.topic == topics::USER_INDICATION && notice.user_raw == self.user_raw {
            self.handle_indication(&notice, &mut cx);
        }
    }
}

impl Middleware {
    pub(crate) fn clear_in_flight(world: &mut Middleware, ma: &AgentId) {
        world.remove_in_flight(ma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdagent_context::UserId;

    #[test]
    fn agent_wire_roundtrips() {
        let ma = MobileAgent::new(AppId(3));
        let back: MobileAgent = mdagent_wire::from_bytes(&to_bytes(&ma)).unwrap();
        assert_eq!(back, ma);
        assert_eq!(back.app(), AppId(3));

        let aa = AutonomousAgent::new(UserId(1), AppId(3), BindingPolicy::Adaptive);
        let back: AutonomousAgent = mdagent_wire::from_bytes(&to_bytes(&aa)).unwrap();
        assert_eq!(back, aa);
        assert_eq!(back.app(), AppId(3));
    }

    #[test]
    fn manual_only_disables_follow() {
        let aa = AutonomousAgent::new(UserId(1), AppId(0), BindingPolicy::Static).manual_only();
        assert!(!aa.auto_follow);
    }
}
