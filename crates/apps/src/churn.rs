//! City-scale churn workload: commuting agents on a diurnal schedule.
//!
//! This is the population model behind `figures -- bench-scale`. Each
//! [`ChurnAgent`] commutes between a home and a work container, pausing a
//! pseudo-random dwell between trips; the driving world spawns and
//! despawns agents so the live population tracks a [`DiurnalModel`] —
//! the arrival/departure churn of a city of pervasive spaces over a day.
//! Everything is deterministic: dwell jitter comes from per-agent
//! xorshift state seeded from the agent's seat number, so the same
//! configuration always produces the same event schedule.

use mdagent_agent::{Agent, ContainerId, Cx, Journey, Platform, PlatformHost};
use mdagent_simnet::{DurationStats, SimDuration, SimTime};
use mdagent_wire::{impl_wire_struct, to_bytes};

/// Timer tag a [`ChurnAgent`] uses for its commute departures.
pub const COMMUTE_TAG: u64 = 0xC0_FFEE;

/// Hour-by-hour population profile, as a percentage of the daily peak.
///
/// The model compresses a full diurnal cycle into `24 * hour` of
/// simulated time; shrinking `hour` keeps event counts bounded without
/// flattening the shape of the day.
#[derive(Debug, Clone)]
pub struct DiurnalModel {
    /// Percent of the peak population present during each hour `0..24`.
    pub profile: [u32; 24],
    /// Length of one model hour on the simulated clock.
    pub hour: SimDuration,
}

impl DiurnalModel {
    /// A city-like shape: quiet nights, a steep morning ramp, a working
    /// plateau at the peak, and an evening wind-down.
    pub fn city(hour: SimDuration) -> Self {
        DiurnalModel {
            profile: [
                20, 15, 12, 10, 10, 15, // 00-05 night
                35, 60, 85, 100, 100, 100, // 06-11 morning ramp to plateau
                95, 100, 100, 100, 95, 85, // 12-17 working day
                70, 55, 45, 35, 30, 25, // 18-23 evening decline
            ],
            hour,
        }
    }

    /// Model-hour index (`0..24`) at instant `at`.
    pub fn hour_index(&self, at: SimTime) -> usize {
        ((at.as_micros() / self.hour.as_micros().max(1)) % 24) as usize
    }

    /// Target live population at `at`, for a daily peak of `peak` agents.
    pub fn target(&self, peak: u64, at: SimTime) -> u64 {
        peak * u64::from(self.profile[self.hour_index(at)]) / 100
    }
}

/// Aggregated outcome counters for a churn run.
#[derive(Debug)]
pub struct ChurnStats {
    /// Commute latencies, from the departure decision to
    /// `on_start(Journey::Moved)` at the destination.
    pub arrivals: DurationStats,
    /// Commutes requested via [`Platform::move_agent`].
    pub trips_started: u64,
    /// Commutes that completed with an arrival callback.
    pub trips_completed: u64,
}

impl Default for ChurnStats {
    fn default() -> Self {
        ChurnStats {
            arrivals: DurationStats::new(),
            trips_started: 0,
            trips_completed: 0,
        }
    }
}

/// Shared bulletin the churn agents read and write through their world.
#[derive(Debug)]
pub struct ChurnBoard {
    /// Number of containers agents may commute between (`0..containers`).
    pub containers: u32,
    /// Extra payload bytes carried on every commute (application cargo).
    pub payload_bytes: u64,
    /// Mean dwell between commutes; actual dwells are jittered over
    /// `[mean/2, 3*mean/2)`.
    pub mean_pause: SimDuration,
    /// When `true`, agents stop commuting so the run can drain.
    pub closing: bool,
    /// Outcome counters.
    pub stats: ChurnStats,
}

impl ChurnBoard {
    /// A board for `containers` containers with the given cargo and dwell.
    pub fn new(containers: u32, payload_bytes: u64, mean_pause: SimDuration) -> Self {
        ChurnBoard {
            containers,
            payload_bytes,
            mean_pause,
            closing: false,
            stats: ChurnStats::default(),
        }
    }
}

/// Worlds that can host the churn workload: a platform plus the shared
/// [`ChurnBoard`] the agents report into.
pub trait ChurnHost: PlatformHost {
    /// The shared churn bulletin.
    fn churn(&self) -> &ChurnBoard;
    /// Mutable access to the churn bulletin.
    fn churn_mut(&mut self) -> &mut ChurnBoard;
}

/// xorshift64* step — deterministic per-agent jitter, no global RNG.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = (*state).max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A commuting agent: lives at `home`, works at `work`, and shuttles
/// between the two with jittered dwells, reporting every completed trip's
/// latency to the world's [`ChurnBoard`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnAgent {
    /// Home container index.
    pub home: u64,
    /// Work container index.
    pub work: u64,
    /// Private xorshift state for dwell jitter.
    pub rng: u64,
    /// Microsecond timestamp of the current departure (`0` = at rest).
    pub departed_us: u64,
    /// Completed commutes.
    pub trips: u64,
}

impl_wire_struct!(ChurnAgent {
    home,
    work,
    rng,
    departed_us,
    trips
});

impl ChurnAgent {
    /// Stable type tag (factory key).
    pub const TYPE_NAME: &'static str = "churn-commuter";

    /// A commuter for seat `seat` in a city of `containers` containers.
    ///
    /// Home and work are derived deterministically from the seat number;
    /// work is always a different container when more than one exists.
    pub fn new(seat: u64, containers: u32) -> Self {
        let n = u64::from(containers.max(1));
        let mut rng = seat.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let home = xorshift(&mut rng) % n;
        let mut work = xorshift(&mut rng) % n;
        if n > 1 && work == home {
            work = (work + 1) % n;
        }
        ChurnAgent {
            home,
            work,
            rng,
            departed_us: 0,
            trips: 0,
        }
    }

    /// Next dwell before leaving, jittered over `[mean/2, 3*mean/2)`.
    fn dwell(&mut self, mean: SimDuration) -> SimDuration {
        let mean_us = mean.as_micros().max(1);
        SimDuration::from_micros(mean_us / 2 + xorshift(&mut self.rng) % mean_us)
    }

    /// Arms the next commute departure unless the world is closing.
    fn arm<W: ChurnHost>(&mut self, cx: &mut Cx<'_, W>) {
        if cx.world.churn().closing {
            return;
        }
        let pause = self.dwell(cx.world.churn().mean_pause);
        Platform::set_timer(cx.world, cx.sim, cx.id, pause, COMMUTE_TAG);
    }
}

impl<W: ChurnHost> Agent<W> for ChurnAgent {
    fn type_name(&self) -> &'static str {
        Self::TYPE_NAME
    }

    fn snapshot(&self) -> Vec<u8> {
        to_bytes(self)
    }

    fn on_start(&mut self, journey: Journey, mut cx: Cx<'_, W>) {
        if let Journey::Moved { .. } = journey {
            let latency = cx
                .sim
                .now()
                .saturating_since(SimTime::from_micros(self.departed_us));
            self.departed_us = 0;
            self.trips += 1;
            let stats = &mut cx.world.churn_mut().stats;
            stats.arrivals.record(latency);
            stats.trips_completed += 1;
        }
        self.arm(&mut cx);
    }

    fn on_timer(&mut self, tag: u64, mut cx: Cx<'_, W>) {
        if tag != COMMUTE_TAG || cx.world.churn().closing {
            return;
        }
        let here = cx.world.platform().container_of(cx.id);
        let dest = if here == Some(ContainerId(self.work as u32)) {
            ContainerId(self.home as u32)
        } else {
            ContainerId(self.work as u32)
        };
        self.departed_us = cx.sim.now().as_micros();
        let payload = cx.world.churn().payload_bytes;
        // Called from inside a callback, so the platform defers the move
        // until this handler returns; the departure snapshot then already
        // carries `departed_us` for the arrival-side latency measurement.
        match Platform::move_agent(cx.world, cx.sim, cx.id, dest, payload) {
            Ok(_) => cx.world.churn_mut().stats.trips_started += 1,
            Err(_) => {
                // No route or not active: stay put and try again later.
                self.departed_us = 0;
                self.arm(&mut cx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdagent_agent::{Platform, PlatformEnv};
    use mdagent_simnet::{Simulator, Topology};
    use mdagent_wire::from_bytes;

    struct MiniCity {
        platform: Platform<MiniCity>,
        env: PlatformEnv,
        board: ChurnBoard,
    }

    impl PlatformHost for MiniCity {
        fn platform(&self) -> &Platform<MiniCity> {
            &self.platform
        }
        fn platform_mut(&mut self) -> &mut Platform<MiniCity> {
            &mut self.platform
        }
        fn env(&self) -> &PlatformEnv {
            &self.env
        }
        fn env_mut(&mut self) -> &mut PlatformEnv {
            &mut self.env
        }
    }

    impl ChurnHost for MiniCity {
        fn churn(&self) -> &ChurnBoard {
            &self.board
        }
        fn churn_mut(&mut self) -> &mut ChurnBoard {
            &mut self.board
        }
    }

    fn mini_city() -> (MiniCity, Simulator<MiniCity>) {
        let topo = Topology::grid_city(2, 1).expect("grid");
        let mut platform = Platform::new("mini");
        let hosts: Vec<_> = topo.hosts().map(|h| h.id()).collect();
        for (i, h) in hosts.iter().enumerate() {
            platform.create_container(format!("c{i}"), *h);
        }
        platform.register_factory(
            ChurnAgent::TYPE_NAME,
            Box::new(|bytes| {
                from_bytes::<ChurnAgent>(bytes).map(|a| Box::new(a) as Box<dyn Agent<MiniCity>>)
            }),
        );
        let board = ChurnBoard::new(hosts.len() as u32, 4_096, SimDuration::from_secs(30));
        let world = MiniCity {
            platform,
            env: PlatformEnv::new(topo),
            board,
        };
        (world, Simulator::new())
    }

    #[test]
    fn diurnal_model_tracks_the_day() {
        let m = DiurnalModel::city(SimDuration::from_mins(1));
        assert_eq!(m.target(1_000, SimTime::ZERO), 200);
        // Hour 9 is the plateau; hour 3 the overnight trough.
        let h9 = SimTime::ZERO + SimDuration::from_mins(9);
        let h3 = SimTime::ZERO + SimDuration::from_mins(3);
        assert_eq!(m.target(1_000, h9), 1_000);
        assert_eq!(m.target(1_000, h3), 100);
        // Day 2 wraps around to the same shape.
        let next_day = SimTime::ZERO + SimDuration::from_mins(24 + 9);
        assert_eq!(m.hour_index(next_day), 9);
    }

    #[test]
    fn commuters_shuttle_and_report_latencies() {
        let (mut world, mut sim) = mini_city();
        for seat in 0..8u64 {
            let agent = ChurnAgent::new(seat, world.board.containers);
            let home = ContainerId(agent.home as u32);
            Platform::spawn(
                &mut world,
                &mut sim,
                home,
                &format!("commuter-{seat}"),
                Box::new(agent),
            )
            .expect("spawn");
        }
        sim.run_until(&mut world, SimTime::from_secs(600));
        world.board.closing = true;
        sim.run(&mut world);
        let stats = &world.board.stats;
        assert!(stats.trips_started > 8, "agents should keep commuting");
        assert!(stats.trips_completed > 0);
        assert!(stats.arrivals.count() > 0);
        // Every measured arrival paid at least the migration handshake.
        assert!(stats.arrivals.quantile(0.0) >= SimDuration::from_millis(5));
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let run = || {
            let (mut world, mut sim) = mini_city();
            for seat in 0..4u64 {
                let agent = ChurnAgent::new(seat, world.board.containers);
                let home = ContainerId(agent.home as u32);
                Platform::spawn(
                    &mut world,
                    &mut sim,
                    home,
                    &format!("commuter-{seat}"),
                    Box::new(agent),
                )
                .expect("spawn");
            }
            sim.run_until(&mut world, SimTime::from_secs(300));
            (
                sim.executed(),
                world.board.stats.trips_completed,
                world.board.stats.arrivals.mean(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn despawn_mid_transit_is_safe() {
        let (mut world, mut sim) = mini_city();
        let agent = ChurnAgent::new(1, world.board.containers);
        let home = ContainerId(agent.home as u32);
        let id = Platform::spawn(&mut world, &mut sim, home, "transient", Box::new(agent))
            .expect("spawn");
        // Let it depart, then despawn while the transfer is in flight.
        sim.run_until(&mut world, SimTime::from_secs(60));
        Platform::despawn(&mut world, &id);
        sim.run(&mut world);
        assert_eq!(world.platform.agent_state(&id), None);
    }

    #[test]
    fn snapshot_roundtrips() {
        let mut a = ChurnAgent::new(7, 16);
        a.trips = 3;
        a.departed_us = 1_234;
        let b: ChurnAgent = from_bytes(&to_bytes(&a)).expect("roundtrip");
        assert_eq!(a, b);
    }
}
