//! The follow-me editor: a stateful document editor that migrates with
//! its user (paper §5's second named demo).

use mdagent_core::{
    AppId, Component, ComponentKind, ComponentSet, CoreError, Middleware, UserProfile,
};
use mdagent_simnet::{HostId, Simulator};

/// Handle to a deployed follow-me editor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Editor {
    /// The underlying application instance.
    pub app: AppId,
}

impl Editor {
    /// Registry name.
    pub const NAME: &'static str = "follow-me-editor";

    /// Components: editing engine, window, and the open document.
    pub fn components(document_bytes: usize) -> ComponentSet {
        [
            Component::synthetic("edit-engine", ComponentKind::Logic, 240_000),
            Component::synthetic("editor-window", ComponentKind::Presentation, 90_000),
            Component::synthetic("document", ComponentKind::Data, document_bytes),
        ]
        .into_iter()
        .collect()
    }

    /// Deploys the editor with an empty document buffer state.
    ///
    /// # Errors
    ///
    /// Propagates deployment failures.
    pub fn deploy(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        host: HostId,
        profile: UserProfile,
        document_bytes: usize,
    ) -> Result<Editor, CoreError> {
        let app = Middleware::deploy_app(
            world,
            sim,
            Self::NAME,
            host,
            Self::components(document_bytes),
            profile,
        )?;
        {
            let a = world.app_mut(app)?;
            a.coordinator.register_observer("editor-window");
        }
        let editor = Editor { app };
        Middleware::update_app_state(world, sim, app, "buffer", "")?;
        Middleware::update_app_state(world, sim, app, "cursor", "0")?;
        Ok(editor)
    }

    /// Types text at the cursor (append semantics for the simulation).
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn type_text(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        editor: Editor,
        text: &str,
    ) -> Result<(), CoreError> {
        let mut buffer = Editor::buffer(world, editor)?;
        buffer.push_str(text);
        let cursor = buffer.chars().count();
        Middleware::update_app_state(world, sim, editor.app, "buffer", &buffer)?;
        Middleware::update_app_state(world, sim, editor.app, "cursor", &cursor.to_string())?;
        Ok(())
    }

    /// The document buffer.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn buffer(world: &Middleware, editor: Editor) -> Result<String, CoreError> {
        Ok(world
            .app(editor.app)?
            .coordinator
            .state("buffer")
            .unwrap_or("")
            .to_owned())
    }

    /// The cursor position in characters.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn cursor(world: &Middleware, editor: Editor) -> Result<usize, CoreError> {
        Ok(world
            .app(editor.app)?
            .coordinator
            .state("cursor")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{default_profile, two_space_world};

    #[test]
    fn typing_updates_buffer_and_cursor() {
        let (mut world, mut sim, hosts) = two_space_world();
        let editor = Editor::deploy(
            &mut world,
            &mut sim,
            hosts.office_pc,
            default_profile(),
            300_000,
        )
        .unwrap();
        Editor::type_text(&mut world, &mut sim, editor, "pervasive ").unwrap();
        Editor::type_text(&mut world, &mut sim, editor, "computing").unwrap();
        assert_eq!(
            Editor::buffer(&world, editor).unwrap(),
            "pervasive computing"
        );
        assert_eq!(Editor::cursor(&world, editor).unwrap(), 19);
    }
}
