//! Shared scenario fixtures for the demo applications.

use mdagent_core::{DeviceProfile, Middleware, UserProfile};
use mdagent_simnet::{CpuFactor, HostId, Simulator, SpaceId};

/// Host handles of the standard fixture.
#[derive(Debug, Clone, Copy)]
pub struct FixtureHosts {
    /// The office space.
    pub office: SpaceId,
    /// The lab space (reached through a gateway).
    pub lab: SpaceId,
    /// Office desktop (primary of the office).
    pub office_pc: HostId,
    /// A handheld device in the office.
    pub office_pda: HostId,
    /// The lab desktop (primary of the lab).
    pub lab_pc: HostId,
}

/// Builds the standard two-space world used by the app tests and
/// examples: an office with a PC and a PDA, a lab with a PC, 10 Mbps LAN
/// inside the office, a gateway to the lab.
pub fn two_space_world() -> (Middleware, Simulator<Middleware>, FixtureHosts) {
    let mut b = Middleware::builder();
    let office = b.space("office");
    let lab = b.space("lab");
    let office_pc = b.host("office-pc", office, CpuFactor::REFERENCE, DeviceProfile::pc);
    let office_pda = b.host(
        "office-pda",
        office,
        CpuFactor::new(0.25),
        DeviceProfile::handheld,
    );
    let lab_pc = b.host("lab-pc", lab, CpuFactor::new(0.94), DeviceProfile::pc);
    b.ethernet(office_pc, office_pda).expect("same-space link");
    b.gateway(office_pc, lab_pc).expect("gateway link");
    b.seed(11);
    let (world, sim) = b.build();
    (
        world,
        sim,
        FixtureHosts {
            office,
            lab,
            office_pc,
            office_pda,
            lab_pc,
        },
    )
}

/// A default user profile for user 0, right-handed.
pub fn default_profile() -> UserProfile {
    UserProfile::new(mdagent_context::UserId(0)).with_preference("handedness", "right")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_routes() {
        let (world, _sim, hosts) = two_space_world();
        assert_eq!(world.primary_host(hosts.office).unwrap(), hosts.office_pc);
        assert_eq!(world.primary_host(hosts.lab).unwrap(), hosts.lab_pc);
        assert!(world.response_time_ms(hosts.office_pc, hosts.lab_pc) > 0.0);
        assert!(!default_profile().is_left_handed());
    }
}
