//! The smart media player — the paper's first demo application.
//!
//! "It can stop music when listener is out of the room and continue
//! playing when the listener enters the room within the same space. In
//! this demo, application is divided into several functional components,
//! codec logic, interface, and data files."

use mdagent_core::{
    AppId, AppState, Binding, BindingTarget, Component, ComponentKind, ComponentSet, CoreError,
    Middleware, UserProfile,
};
use mdagent_simnet::{HostId, Simulator};

/// Handle to a deployed smart media player.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaPlayer {
    /// The underlying application instance.
    pub app: AppId,
}

impl MediaPlayer {
    /// Registry name of the application.
    pub const NAME: &'static str = "smart-media-player";

    /// The component decomposition from the paper: codec logic, interface,
    /// and a music data file of the given size.
    pub fn components(track_bytes: usize) -> ComponentSet {
        [
            Component::synthetic("codec", ComponentKind::Logic, 180_000),
            Component::synthetic("player-ui", ComponentKind::Presentation, 60_000),
            Component::synthetic("music-file", ComponentKind::Data, track_bytes),
        ]
        .into_iter()
        .collect()
    }

    /// Deploys the player on `host` with a music file of `track_bytes`.
    ///
    /// # Errors
    ///
    /// Propagates deployment failures.
    pub fn deploy(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        host: HostId,
        profile: UserProfile,
        track_bytes: usize,
    ) -> Result<MediaPlayer, CoreError> {
        let app = Middleware::deploy_app(
            world,
            sim,
            Self::NAME,
            host,
            Self::components(track_bytes),
            profile,
        )?;
        {
            let a = world.app_mut(app)?;
            a.bindings.push(Binding {
                name: "music-data".into(),
                required_class: "imcl:MusicData".into(),
                target: BindingTarget::LocalFile {
                    path: "/music/playlist".into(),
                    bytes: track_bytes as u64,
                },
            });
            a.coordinator.register_observer("player-window");
        }
        let player = MediaPlayer { app };
        MediaPlayer::stop(world, sim, player)?;
        Ok(player)
    }

    /// Starts playing a track from the beginning.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn play(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        player: MediaPlayer,
        track: &str,
    ) -> Result<(), CoreError> {
        Middleware::update_app_state(world, sim, player.app, "track", track)?;
        Middleware::update_app_state(world, sim, player.app, "position-ms", "0")?;
        Middleware::update_app_state(world, sim, player.app, "playing", "true")?;
        Ok(())
    }

    /// Advances the playback position (the codec "tick").
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn advance(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        player: MediaPlayer,
        by_ms: u64,
    ) -> Result<u64, CoreError> {
        let current = MediaPlayer::position_ms(world, player)?;
        let next = current + by_ms;
        Middleware::update_app_state(world, sim, player.app, "position-ms", &next.to_string())?;
        Ok(next)
    }

    /// Stops playback.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn stop(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        player: MediaPlayer,
    ) -> Result<(), CoreError> {
        Middleware::update_app_state(world, sim, player.app, "playing", "false")?;
        Ok(())
    }

    /// Current playback position.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn position_ms(world: &Middleware, player: MediaPlayer) -> Result<u64, CoreError> {
        Ok(world
            .app(player.app)?
            .coordinator
            .state("position-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0))
    }

    /// Whether the player reports itself playing and runnable.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn is_playing(world: &Middleware, player: MediaPlayer) -> Result<bool, CoreError> {
        let app = world.app(player.app)?;
        Ok(app.state == AppState::Running && app.coordinator.state("playing") == Some("true"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::two_space_world;
    use mdagent_context::UserId;

    #[test]
    fn deploy_play_and_tick() {
        let (mut world, mut sim, hosts) = two_space_world();
        let player = MediaPlayer::deploy(
            &mut world,
            &mut sim,
            hosts.office_pc,
            UserProfile::new(UserId(0)),
            2_000_000,
        )
        .unwrap();
        MediaPlayer::play(&mut world, &mut sim, player, "prelude.mp3").unwrap();
        assert!(MediaPlayer::is_playing(&world, player).unwrap());
        MediaPlayer::advance(&mut world, &mut sim, player, 5_000).unwrap();
        MediaPlayer::advance(&mut world, &mut sim, player, 2_500).unwrap();
        assert_eq!(MediaPlayer::position_ms(&world, player).unwrap(), 7_500);
        MediaPlayer::stop(&mut world, &mut sim, player).unwrap();
        assert!(!MediaPlayer::is_playing(&world, player).unwrap());
        // Component decomposition matches the paper.
        let app = world.app(player.app).unwrap();
        assert!(app.has_kind(ComponentKind::Logic));
        assert!(app.has_kind(ComponentKind::Presentation));
        assert!(app.has_kind(ComponentKind::Data));
        assert_eq!(app.bindings.len(), 1);
    }
}
