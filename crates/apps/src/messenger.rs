//! The follow-me instant messenger (the sixth demo of §5): conversation
//! state follows its user between hosts.

use mdagent_core::{
    AppId, Component, ComponentKind, ComponentSet, CoreError, Middleware, UserProfile,
};
use mdagent_simnet::{HostId, Simulator};

/// Handle to a deployed instant messenger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Messenger {
    /// The underlying application instance.
    pub app: AppId,
}

impl Messenger {
    /// Registry name.
    pub const NAME: &'static str = "follow-me-messenger";

    /// Components: protocol engine, roster window, and the chat history.
    pub fn components(history_bytes: usize) -> ComponentSet {
        [
            Component::synthetic("im-protocol", ComponentKind::Logic, 150_000),
            Component::synthetic("roster-ui", ComponentKind::Presentation, 70_000),
            Component::synthetic("history", ComponentKind::Data, history_bytes),
        ]
        .into_iter()
        .collect()
    }

    /// Deploys the messenger with an empty conversation.
    ///
    /// # Errors
    ///
    /// Propagates deployment failures.
    pub fn deploy(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        host: HostId,
        profile: UserProfile,
        history_bytes: usize,
    ) -> Result<Messenger, CoreError> {
        let app = Middleware::deploy_app(
            world,
            sim,
            Self::NAME,
            host,
            Self::components(history_bytes),
            profile,
        )?;
        {
            let a = world.app_mut(app)?;
            a.coordinator.register_observer("roster-ui");
        }
        Middleware::update_app_state(world, sim, app, "unread", "0")?;
        Middleware::update_app_state(world, sim, app, "presence", "online")?;
        Ok(Messenger { app })
    }

    /// Records an incoming message (bumps the unread counter and stores
    /// the last line).
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn receive(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        messenger: Messenger,
        from: &str,
        text: &str,
    ) -> Result<u32, CoreError> {
        let unread = Messenger::unread(world, messenger)? + 1;
        Middleware::update_app_state(world, sim, messenger.app, "unread", &unread.to_string())?;
        Middleware::update_app_state(
            world,
            sim,
            messenger.app,
            "last-message",
            &format!("{from}: {text}"),
        )?;
        Ok(unread)
    }

    /// Marks everything read.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn mark_read(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        messenger: Messenger,
    ) -> Result<(), CoreError> {
        Middleware::update_app_state(world, sim, messenger.app, "unread", "0")?;
        Ok(())
    }

    /// Sets the presence string.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn set_presence(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        messenger: Messenger,
        presence: &str,
    ) -> Result<(), CoreError> {
        Middleware::update_app_state(world, sim, messenger.app, "presence", presence)?;
        Ok(())
    }

    /// Unread message count.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn unread(world: &Middleware, messenger: Messenger) -> Result<u32, CoreError> {
        Ok(world
            .app(messenger.app)?
            .coordinator
            .state("unread")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0))
    }

    /// The last message line, if any.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn last_message(
        world: &Middleware,
        messenger: Messenger,
    ) -> Result<Option<String>, CoreError> {
        Ok(world
            .app(messenger.app)?
            .coordinator
            .state("last-message")
            .map(str::to_owned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{default_profile, two_space_world};

    #[test]
    fn conversation_state_accumulates() {
        let (mut world, mut sim, hosts) = two_space_world();
        let im = Messenger::deploy(
            &mut world,
            &mut sim,
            hosts.office_pc,
            default_profile(),
            100_000,
        )
        .unwrap();
        Messenger::receive(&mut world, &mut sim, im, "alice", "hello").unwrap();
        Messenger::receive(&mut world, &mut sim, im, "bob", "ping").unwrap();
        assert_eq!(Messenger::unread(&world, im).unwrap(), 2);
        assert_eq!(
            Messenger::last_message(&world, im).unwrap().as_deref(),
            Some("bob: ping")
        );
        Messenger::mark_read(&mut world, &mut sim, im).unwrap();
        assert_eq!(Messenger::unread(&world, im).unwrap(), 0);
        Messenger::set_presence(&mut world, &mut sim, im, "away").unwrap();
        assert_eq!(
            world.app(im.app).unwrap().coordinator.state("presence"),
            Some("away")
        );
    }
}
