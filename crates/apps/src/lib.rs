//! # mdagent-apps — the six demo applications of the paper's Section 5
//!
//! "We built six demo applications based on this infrastructure, namely
//! smart media player, follow-me editor, ubiquitous slide show, handheld
//! editor, handheld music player, and follow-me instant messenger."
//!
//! Each application is a thin, typed façade over the middleware's
//! application model: a component decomposition (logic / presentation /
//! data with realistic sizes), coordinator-backed state, and helpers that
//! drive it. The [`testkit`] module ships the standard two-space world
//! fixture shared by the tests, examples and benchmarks.
//!
//! # Examples
//!
//! ```
//! use mdagent_apps::{testkit, MediaPlayer};
//!
//! let (mut world, mut sim, hosts) = testkit::two_space_world();
//! let player = MediaPlayer::deploy(
//!     &mut world, &mut sim, hosts.office_pc, testkit::default_profile(), 2_000_000,
//! )?;
//! MediaPlayer::play(&mut world, &mut sim, player, "prelude.mp3")?;
//! sim.run(&mut world);
//! assert!(MediaPlayer::is_playing(&world, player)?);
//! # Ok::<(), mdagent_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod editor;
mod handheld;
mod media_player;
mod messenger;
mod slideshow;
pub mod testkit;

pub use churn::{ChurnAgent, ChurnBoard, ChurnHost, ChurnStats, DiurnalModel, COMMUTE_TAG};
pub use editor::Editor;
pub use handheld::{HandheldEditor, HandheldPlayer};
pub use media_player::MediaPlayer;
pub use messenger::Messenger;
pub use slideshow::SlideShow;
