//! The ubiquitous slide show — the paper's clone-dispatch demo.
//!
//! "Our demo simplifies this process and lets agent clone the application
//! and migrate to the separate rooms and establish the synchronization
//! links with the main room automatically. … MAs just need to carry the
//! slides to the destination … and synchronize the slides with the
//! speaker's presentation controls."

use mdagent_context::{ContextData, UserId};
use mdagent_core::{
    AppId, Component, ComponentKind, ComponentSet, CoreError, Middleware, UserProfile,
};
use mdagent_simnet::{HostId, Simulator, SpaceId};

/// Handle to the speaker's (original) slide show.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlideShow {
    /// The underlying application instance.
    pub app: AppId,
}

impl SlideShow {
    /// Registry name.
    pub const NAME: &'static str = "ubiquitous-slide-show";

    /// Components: the Impress-like presenter logic, its UI, and the deck.
    pub fn components(deck_bytes: usize) -> ComponentSet {
        [
            Component::synthetic("impress-core", ComponentKind::Logic, 400_000),
            Component::synthetic("presenter-ui", ComponentKind::Presentation, 150_000),
            Component::synthetic("slide-deck", ComponentKind::Data, deck_bytes),
        ]
        .into_iter()
        .collect()
    }

    /// The presenter runtime without a deck — what meeting rooms have
    /// preinstalled ("each meeting room is equipped with a presentation
    /// application, a projector, what lacks is the slides").
    pub fn presenter_runtime() -> ComponentSet {
        [
            Component::synthetic("impress-core", ComponentKind::Logic, 400_000),
            Component::synthetic("presenter-ui", ComponentKind::Presentation, 150_000),
        ]
        .into_iter()
        .collect()
    }

    /// Deploys the speaker's slide show.
    ///
    /// # Errors
    ///
    /// Propagates deployment failures.
    pub fn deploy(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        host: HostId,
        profile: UserProfile,
        deck_bytes: usize,
    ) -> Result<SlideShow, CoreError> {
        let app = Middleware::deploy_app(
            world,
            sim,
            Self::NAME,
            host,
            Self::components(deck_bytes),
            profile,
        )?;
        {
            let a = world.app_mut(app)?;
            a.coordinator.register_observer("projector-output");
        }
        Middleware::update_app_state(world, sim, app, "slide", "1")?;
        Ok(SlideShow { app })
    }

    /// Issues the user indication that dispatches clones to the listed
    /// overflow rooms (the AA picks it up and plans the clone migrations).
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn dispatch_to_rooms(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        speaker: UserId,
        rooms: &[SpaceId],
    ) -> Result<(), CoreError> {
        Middleware::publish_context(
            world,
            sim,
            ContextData::UserIndication {
                user: speaker,
                command: "dispatch".into(),
                args: rooms.iter().map(|s| s.0.to_string()).collect(),
            },
        );
        Ok(())
    }

    /// The speaker advances to the next slide; replicas follow through the
    /// coordinator's sync links.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn next_slide(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        show: SlideShow,
    ) -> Result<u32, CoreError> {
        let next = SlideShow::current_slide(world, show.app)? + 1;
        Middleware::update_app_state(world, sim, show.app, "slide", &next.to_string())?;
        Ok(next)
    }

    /// Reads the slide number shown by any instance (original or replica).
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn current_slide(world: &Middleware, app: AppId) -> Result<u32, CoreError> {
        Ok(world
            .app(app)?
            .coordinator
            .state("slide")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1))
    }

    /// All replica instances of this show.
    pub fn replicas(world: &Middleware, show: SlideShow) -> Vec<AppId> {
        world
            .apps()
            .filter(|a| a.cloned_from == Some(show.app))
            .map(|a| a.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{default_profile, two_space_world};
    use mdagent_core::{AutonomousAgent, BindingPolicy};
    use mdagent_simnet::SimTime;

    #[test]
    fn lecture_scenario_clones_and_synchronizes() {
        let (mut world, mut sim, hosts) = two_space_world();
        let show = SlideShow::deploy(
            &mut world,
            &mut sim,
            hosts.office_pc,
            default_profile(),
            1_200_000,
        )
        .unwrap();
        world
            .provision(
                hosts.lab_pc,
                SlideShow::NAME,
                SlideShow::presenter_runtime(),
            )
            .unwrap();
        Middleware::spawn_autonomous_agent(
            &mut world,
            &mut sim,
            hosts.office_pc,
            AutonomousAgent::new(UserId(0), show.app, BindingPolicy::Adaptive).manual_only(),
        )
        .unwrap();
        sim.run_until(&mut world, SimTime::from_secs(1));

        SlideShow::dispatch_to_rooms(&mut world, &mut sim, UserId(0), &[hosts.lab]).unwrap();
        sim.run_until(&mut world, SimTime::from_secs(30));

        let replicas = SlideShow::replicas(&world, show);
        assert_eq!(replicas.len(), 1);
        // The speaker flips two slides; the overflow room follows.
        SlideShow::next_slide(&mut world, &mut sim, show).unwrap();
        SlideShow::next_slide(&mut world, &mut sim, show).unwrap();
        sim.run_until(&mut world, SimTime::from_secs(35));
        assert_eq!(SlideShow::current_slide(&world, show.app).unwrap(), 3);
        assert_eq!(SlideShow::current_slide(&world, replicas[0]).unwrap(), 3);
    }
}
