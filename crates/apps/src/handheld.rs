//! The handheld demos: handheld editor and handheld music player.
//!
//! These are the PDA-class variants from §5; their components are slimmer
//! and their device requirements mark them as handheld-targeted, so the
//! adaptor scales their UI when they land on a PC (or vice versa).

use mdagent_core::{
    AppId, Component, ComponentKind, ComponentSet, CoreError, Middleware, UserProfile,
};
use mdagent_simnet::{HostId, Simulator};

/// Handle to a deployed handheld editor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandheldEditor {
    /// The underlying application instance.
    pub app: AppId,
}

impl HandheldEditor {
    /// Registry name.
    pub const NAME: &'static str = "handheld-editor";

    /// Slim components for a PDA.
    pub fn components(note_bytes: usize) -> ComponentSet {
        [
            Component::synthetic("note-engine", ComponentKind::Logic, 60_000),
            Component::synthetic("note-ui", ComponentKind::Presentation, 24_000),
            Component::synthetic("notes", ComponentKind::Data, note_bytes),
        ]
        .into_iter()
        .collect()
    }

    /// Deploys on a (typically handheld) host.
    ///
    /// # Errors
    ///
    /// Propagates deployment failures.
    pub fn deploy(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        host: HostId,
        profile: UserProfile,
        note_bytes: usize,
    ) -> Result<HandheldEditor, CoreError> {
        let app = Middleware::deploy_app(
            world,
            sim,
            Self::NAME,
            host,
            Self::components(note_bytes),
            profile,
        )?;
        world
            .app_mut(app)?
            .coordinator
            .register_observer("note-view");
        Middleware::update_app_state(world, sim, app, "note", "")?;
        Ok(HandheldEditor { app })
    }

    /// Appends a quick note.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn jot(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        editor: HandheldEditor,
        text: &str,
    ) -> Result<(), CoreError> {
        let mut note = world
            .app(editor.app)?
            .coordinator
            .state("note")
            .unwrap_or("")
            .to_owned();
        if !note.is_empty() {
            note.push('\n');
        }
        note.push_str(text);
        Middleware::update_app_state(world, sim, editor.app, "note", &note)?;
        Ok(())
    }

    /// Current note text.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn note(world: &Middleware, editor: HandheldEditor) -> Result<String, CoreError> {
        Ok(world
            .app(editor.app)?
            .coordinator
            .state("note")
            .unwrap_or("")
            .to_owned())
    }
}

/// Handle to a deployed handheld music player.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandheldPlayer {
    /// The underlying application instance.
    pub app: AppId,
}

impl HandheldPlayer {
    /// Registry name.
    pub const NAME: &'static str = "handheld-music-player";

    /// Slim components: a low-bitrate codec and tiny UI.
    pub fn components(track_bytes: usize) -> ComponentSet {
        [
            Component::synthetic("micro-codec", ComponentKind::Logic, 45_000),
            Component::synthetic("micro-ui", ComponentKind::Presentation, 12_000),
            Component::synthetic("track", ComponentKind::Data, track_bytes),
        ]
        .into_iter()
        .collect()
    }

    /// Deploys on a (typically handheld) host.
    ///
    /// # Errors
    ///
    /// Propagates deployment failures.
    pub fn deploy(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        host: HostId,
        profile: UserProfile,
        track_bytes: usize,
    ) -> Result<HandheldPlayer, CoreError> {
        let app = Middleware::deploy_app(
            world,
            sim,
            Self::NAME,
            host,
            Self::components(track_bytes),
            profile,
        )?;
        Middleware::update_app_state(world, sim, app, "volume", "5")?;
        Ok(HandheldPlayer { app })
    }

    /// Changes the volume, clamped to `0..=10`.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn set_volume(
        world: &mut Middleware,
        sim: &mut Simulator<Middleware>,
        player: HandheldPlayer,
        volume: i32,
    ) -> Result<u32, CoreError> {
        let v = volume.clamp(0, 10) as u32;
        Middleware::update_app_state(world, sim, player.app, "volume", &v.to_string())?;
        Ok(v)
    }

    /// Current volume.
    ///
    /// # Errors
    ///
    /// Propagates unknown-app errors.
    pub fn volume(world: &Middleware, player: HandheldPlayer) -> Result<u32, CoreError> {
        Ok(world
            .app(player.app)?
            .coordinator
            .state("volume")
            .and_then(|v| v.parse().ok())
            .unwrap_or(5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{default_profile, two_space_world};

    #[test]
    fn handheld_editor_jots_notes() {
        let (mut world, mut sim, hosts) = two_space_world();
        let ed = HandheldEditor::deploy(
            &mut world,
            &mut sim,
            hosts.office_pda,
            default_profile(),
            20_000,
        )
        .unwrap();
        HandheldEditor::jot(&mut world, &mut sim, ed, "buy milk").unwrap();
        HandheldEditor::jot(&mut world, &mut sim, ed, "review paper").unwrap();
        assert_eq!(
            HandheldEditor::note(&world, ed).unwrap(),
            "buy milk\nreview paper"
        );
        // Slim: total component bytes well under the PC editor.
        assert!(world.app(ed.app).unwrap().components.total_bytes() < 200_000);
    }

    #[test]
    fn handheld_player_volume_clamps() {
        let (mut world, mut sim, hosts) = two_space_world();
        let p = HandheldPlayer::deploy(
            &mut world,
            &mut sim,
            hosts.office_pda,
            default_profile(),
            900_000,
        )
        .unwrap();
        assert_eq!(
            HandheldPlayer::set_volume(&mut world, &mut sim, p, 15).unwrap(),
            10
        );
        assert_eq!(HandheldPlayer::volume(&world, p).unwrap(), 10);
        assert_eq!(
            HandheldPlayer::set_volume(&mut world, &mut sim, p, -3).unwrap(),
            0
        );
    }
}
