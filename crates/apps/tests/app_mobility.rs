//! Cross-app mobility tests: each demo application survives migration
//! with its domain state intact.

use mdagent_apps::{testkit, Editor, HandheldEditor, MediaPlayer, Messenger};
use mdagent_context::UserId;
use mdagent_core::{BindingPolicy, Middleware, MobilityMode, UserProfile};

#[test]
fn editor_buffer_survives_migration() {
    let (mut world, mut sim, hosts) = testkit::two_space_world();
    let editor = Editor::deploy(
        &mut world,
        &mut sim,
        hosts.office_pc,
        testkit::default_profile(),
        300_000,
    )
    .unwrap();
    Editor::type_text(&mut world, &mut sim, editor, "draft: mobility middleware").unwrap();
    sim.run(&mut world);
    Middleware::migrate_now(
        &mut world,
        &mut sim,
        editor.app,
        hosts.lab_pc,
        MobilityMode::FollowMe,
        BindingPolicy::Static,
    )
    .unwrap();
    sim.run(&mut world);
    assert_eq!(world.app(editor.app).unwrap().host, hosts.lab_pc);
    assert_eq!(
        Editor::buffer(&world, editor).unwrap(),
        "draft: mobility middleware"
    );
    assert_eq!(Editor::cursor(&world, editor).unwrap(), 26);
}

#[test]
fn messenger_unread_count_survives_migration() {
    let (mut world, mut sim, hosts) = testkit::two_space_world();
    let im = Messenger::deploy(
        &mut world,
        &mut sim,
        hosts.office_pc,
        testkit::default_profile(),
        50_000,
    )
    .unwrap();
    Messenger::receive(&mut world, &mut sim, im, "alice", "hi").unwrap();
    Messenger::receive(&mut world, &mut sim, im, "alice", "you there?").unwrap();
    sim.run(&mut world);
    Middleware::migrate_now(
        &mut world,
        &mut sim,
        im.app,
        hosts.lab_pc,
        MobilityMode::FollowMe,
        BindingPolicy::Adaptive,
    )
    .unwrap();
    sim.run(&mut world);
    assert_eq!(Messenger::unread(&world, im).unwrap(), 2);
    assert_eq!(
        Messenger::last_message(&world, im).unwrap().as_deref(),
        Some("alice: you there?")
    );
}

#[test]
fn handheld_notes_migrate_from_pda_to_pc_with_adaptation() {
    let (mut world, mut sim, hosts) = testkit::two_space_world();
    let notes = HandheldEditor::deploy(
        &mut world,
        &mut sim,
        hosts.office_pda,
        UserProfile::new(UserId(0)).with_preference("handedness", "left"),
        10_000,
    )
    .unwrap();
    HandheldEditor::jot(&mut world, &mut sim, notes, "remember the demo").unwrap();
    sim.run(&mut world);
    Middleware::migrate_now(
        &mut world,
        &mut sim,
        notes.app,
        hosts.lab_pc,
        MobilityMode::FollowMe,
        BindingPolicy::Static,
    )
    .unwrap();
    sim.run(&mut world);
    assert_eq!(
        HandheldEditor::note(&world, notes).unwrap(),
        "remember the demo"
    );
    let report = world.migration_log().last().unwrap();
    // PDA (120 dpi) → PC (96 dpi): density compensation; left-handed mirror.
    assert!(report.adaptation.mirrored());
    assert!(report
        .adaptation
        .actions
        .iter()
        .any(|a| matches!(a, mdagent_core::Adaptation::DensityCompensation { .. })));
}

#[test]
fn player_streams_remotely_under_adaptive_binding() {
    let (mut world, mut sim, hosts) = testkit::two_space_world();
    let player = MediaPlayer::deploy(
        &mut world,
        &mut sim,
        hosts.office_pc,
        testkit::default_profile(),
        4_000_000,
    )
    .unwrap();
    MediaPlayer::play(&mut world, &mut sim, player, "opus.mp3").unwrap();
    sim.run(&mut world);
    Middleware::migrate_now(
        &mut world,
        &mut sim,
        player.app,
        hosts.lab_pc,
        MobilityMode::FollowMe,
        BindingPolicy::Adaptive,
    )
    .unwrap();
    sim.run(&mut world);
    // The data binding degraded to a remote URL back at the office PC.
    let app = world.app(player.app).unwrap();
    let binding = &app.bindings[0];
    match &binding.target {
        mdagent_core::BindingTarget::RemoteUrl { url, host_raw } => {
            assert!(url.contains("host-0"), "streams from the source: {url}");
            assert_eq!(*host_raw, hosts.office_pc.0);
        }
        other => panic!("expected a remote URL binding, got {other:?}"),
    }
    assert!(MediaPlayer::is_playing(&world, player).unwrap());
    assert_eq!(
        world.migration_log().last().unwrap().remote_bytes,
        4_000_000
    );
}
