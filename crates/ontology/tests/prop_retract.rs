//! Retraction-equivalence property tests: retracting base facts from a
//! closed graph (DRed delete–rederive) must land on exactly the closure
//! that materializing from scratch *without* those facts produces —
//! set-equal triple for triple, for random graphs, rule bases, deletion
//! subsets and deletion orders, whether facts leave one at a time or in
//! one batch.

use std::collections::BTreeSet;

use mdagent_ontology::{parser::parse_rules, Graph, Reasoner, Triple};
use proptest::prelude::*;

/// Strategy: a small universe of node names.
fn node() -> impl Strategy<Value = String> {
    (0u8..10).prop_map(|i| format!("ex:n{i}"))
}

/// Strategy: a small universe of body predicates rules read from.
fn pred() -> impl Strategy<Value = String> {
    (0u8..4).prop_map(|i| format!("ex:p{i}"))
}

/// One randomly-shaped rule (same generator family as the semi-naive
/// equivalence suite): composition, inversion, skolemization or an
/// any-predicate body, all writing into terminating predicate spaces.
fn rule_text(idx: usize, kind: u8, p1: u8, p2: u8, p3: u8) -> String {
    match kind % 4 {
        0 => format!("[r{idx}: (?x ex:p{p1} ?y), (?y ex:p{p2} ?z) -> (?x ex:p{p3} ?z)]"),
        1 => format!("[r{idx}: (?x ex:p{p1} ?y) -> (?y ex:p{p2} ?x)]"),
        2 => format!("[r{idx}: (?x ex:p{p1} ?y) -> (?x ex:sk{idx}a ?w), (?w ex:sk{idx}b ?y)]"),
        _ => {
            let _ = p2;
            format!("[r{idx}: (?x ?p ?y), (?y ex:p{p1} ?z) -> (?x ex:q{idx} ?z)]")
        }
    }
}

/// Strategy: a rule base of 1–5 generated rules, concatenated.
fn rule_base() -> impl Strategy<Value = String> {
    proptest::collection::vec((any::<u8>(), 0u8..4, 0u8..4, 0u8..4), 1..6).prop_map(|specs| {
        specs
            .iter()
            .enumerate()
            .map(|(i, (kind, p1, p2, p3))| rule_text(i, *kind, *p1, *p2, *p3))
            .collect::<Vec<_>>()
            .join("\n")
    })
}

/// All triples of a graph, rendered to canonical text (interner-neutral;
/// skolem names are content-derived, so the rendering is stable across
/// different intern orders).
fn rendered(g: &Graph) -> BTreeSet<String> {
    g.store()
        .iter()
        .map(|t| t.display(g.interner()).to_string())
        .collect()
}

proptest! {
    /// `retract` / `retract_batch` on a closed graph is set-identical to
    /// materializing from scratch without the retracted facts, for any
    /// victim subset and any deletion order.
    #[test]
    fn retract_equals_rematerialize_without_facts(
        triples in proptest::collection::vec((node(), pred(), node()), 2..25),
        rules_text in rule_base(),
        mask in proptest::collection::vec(any::<bool>(), 25..26),
        order_seed in any::<u64>(),
    ) {
        // Deduplicate the generated facts (retraction victims are picked
        // by index, and a duplicate would make "retract one copy" ambiguous).
        let mut seen = BTreeSet::new();
        let unique: Vec<&(String, String, String)> =
            triples.iter().filter(|t| seen.insert(*t)).collect();

        let mut g = Graph::new();
        let mut base: Vec<Triple> = Vec::new();
        for (s, p, o) in unique.iter().copied() {
            let t = Triple::new(g.iri(s), g.iri(p), g.iri(o));
            g.add_triple(t);
            base.push(t);
        }
        let rules = parse_rules(&rules_text, &mut g).expect("generated rules parse");
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);

        // Victim subset by mask, in a pseudo-shuffled order derived from
        // the seed (proptest shrinks both independently).
        let mut victim_idx: Vec<usize> = (0..unique.len())
            .filter(|i| mask[i % mask.len()])
            .collect();
        victim_idx.sort_by_key(|&i| (i as u64).wrapping_mul(order_seed | 1));
        let victims: Vec<Triple> = victim_idx.iter().map(|&i| base[i]).collect();

        // Path A: retract one fact at a time, in the shuffled order.
        let mut g_seq = g.clone();
        let mut r_seq = r.clone();
        for &t in &victims {
            r_seq.retract(&mut g_seq, t);
        }
        // Path B: retract the whole subset in one batch.
        let mut g_batch = g;
        let mut r_batch = r;
        r_batch.retract_batch(&mut g_batch, victims.iter().copied());

        // Reference: materialize from scratch with only the survivors.
        let retracted: BTreeSet<usize> = victim_idx.into_iter().collect();
        let mut g_ref = Graph::new();
        for (i, (s, p, o)) in unique.iter().enumerate() {
            if !retracted.contains(&i) {
                g_ref.add(s, p, o);
            }
        }
        let rules_ref = parse_rules(&rules_text, &mut g_ref).expect("generated rules parse");
        let mut r_ref = Reasoner::new();
        r_ref.add_rules(rules_ref);
        r_ref.materialize(&mut g_ref);

        let expected = rendered(&g_ref);
        prop_assert_eq!(&rendered(&g_seq), &expected, "sequential retraction");
        prop_assert_eq!(&rendered(&g_batch), &expected, "batch retraction");
    }

    /// After a retraction, the incremental path still works: re-asserting
    /// the retracted facts as a delta restores the original closure.
    #[test]
    fn reassert_after_retract_restores_closure(
        triples in proptest::collection::vec((node(), pred(), node()), 2..20),
        rules_text in rule_base(),
        pick in any::<u8>(),
    ) {
        let mut seen = BTreeSet::new();
        let unique: Vec<&(String, String, String)> =
            triples.iter().filter(|t| seen.insert(*t)).collect();

        let mut g = Graph::new();
        let mut base: Vec<Triple> = Vec::new();
        for (s, p, o) in unique.iter().copied() {
            let t = Triple::new(g.iri(s), g.iri(p), g.iri(o));
            g.add_triple(t);
            base.push(t);
        }
        let rules = parse_rules(&rules_text, &mut g).expect("generated rules parse");
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        let closed = rendered(&g);

        let victim = base[(pick as usize) % base.len()];
        r.retract(&mut g, victim);
        for t in g.store().iter() {
            // Triples that survive a retraction stay derivable or base.
            prop_assert!(r.is_base(t) || r.derivation_count(t) > 0);
        }
        r.materialize_incremental(&mut g, vec![victim]);
        prop_assert_eq!(rendered(&g), closed);
    }
}
