//! Closure-equivalence property tests: the delta-driven semi-naive engine
//! must derive *bit-identical* closures to the naive fixpoint evaluator
//! (`Reasoner::materialize_naive`, kept as a test-only reference) on
//! arbitrary graphs and rule bases — including skolemizing rules, whose
//! content-derived fresh names are what makes the comparison exact rather
//! than merely isomorphic.

use std::collections::BTreeSet;

use mdagent_ontology::{parser::parse_rules, Graph, Reasoner, Triple};
use proptest::prelude::*;

/// Strategy: a small universe of node names.
fn node() -> impl Strategy<Value = String> {
    (0u8..10).prop_map(|i| format!("ex:n{i}"))
}

/// Strategy: a small universe of body predicates rules read from.
fn pred() -> impl Strategy<Value = String> {
    (0u8..4).prop_map(|i| format!("ex:p{i}"))
}

/// One randomly-shaped rule. Skolemizing rules write to rule-private
/// `ex:sk{idx}*` predicates that no rule reads, so every generated rule
/// base terminates (skolem chains cannot feed themselves).
fn rule_text(idx: usize, kind: u8, p1: u8, p2: u8, p3: u8) -> String {
    match kind % 4 {
        // Composition: two chained premises.
        0 => format!("[r{idx}: (?x ex:p{p1} ?y), (?y ex:p{p2} ?z) -> (?x ex:p{p3} ?z)]"),
        // Inversion: single premise, swapped conclusion.
        1 => format!("[r{idx}: (?x ex:p{p1} ?y) -> (?y ex:p{p2} ?x)]"),
        // Skolemizing: ?w occurs only in the head, so firing mints a
        // fresh (content-derived) individual per binding.
        2 => format!("[r{idx}: (?x ex:p{p1} ?y) -> (?x ex:sk{idx}a ?w), (?w ex:sk{idx}b ?y)]"),
        // Variable predicate in the body: exercises the occurrence
        // index's any-predicate bucket. Writes to a rule-private dead-end
        // predicate — the any-predicate premise also matches skolem
        // triples, and routing those back into `ex:p*` would let the
        // skolemizing rules feed themselves forever.
        _ => {
            let _ = p2;
            format!("[r{idx}: (?x ?p ?y), (?y ex:p{p1} ?z) -> (?x ex:q{idx} ?z)]")
        }
    }
}

/// Strategy: a rule base of 1–5 generated rules, concatenated.
fn rule_base() -> impl Strategy<Value = String> {
    proptest::collection::vec((any::<u8>(), 0u8..4, 0u8..4, 0u8..4), 1..6).prop_map(|specs| {
        specs
            .iter()
            .enumerate()
            .map(|(i, (kind, p1, p2, p3))| rule_text(i, *kind, *p1, *p2, *p3))
            .collect::<Vec<_>>()
            .join("\n")
    })
}

/// All triples of a graph, rendered to canonical text (interner-neutral).
fn rendered(g: &Graph) -> BTreeSet<String> {
    g.store()
        .iter()
        .map(|t| t.display(g.interner()).to_string())
        .collect()
}

proptest! {
    /// The semi-naive engine and the naive reference derive identical
    /// closures, triple for triple, on random graphs and rule bases.
    #[test]
    fn seminaive_equals_naive_on_random_inputs(
        triples in proptest::collection::vec((node(), pred(), node()), 1..25),
        rules_text in rule_base(),
    ) {
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            g.add(s, p, o);
        }
        let rules = parse_rules(&rules_text, &mut g).expect("generated rules parse");
        // Clone *after* parsing so both graphs share one intern order and
        // one rule vocabulary.
        let mut g_naive = g.clone();

        let mut semi = Reasoner::new();
        semi.add_rules(rules.clone());
        semi.materialize(&mut g);

        let mut naive = Reasoner::new();
        naive.add_rules(rules);
        naive.materialize_naive(&mut g_naive);

        prop_assert_eq!(rendered(&g), rendered(&g_naive));
    }

    /// Splitting the input into an initial load plus an incremental delta
    /// reaches the same closure as materializing everything at once.
    #[test]
    fn incremental_split_equals_full_materialization(
        triples in proptest::collection::vec((node(), pred(), node()), 2..25),
        split in any::<u8>(),
        rules_text in rule_base(),
    ) {
        let mut g_full = Graph::new();
        for (s, p, o) in &triples {
            g_full.add(s, p, o);
        }
        let rules = parse_rules(&rules_text, &mut g_full).expect("generated rules parse");

        let mut full = Reasoner::new();
        full.add_rules(rules.clone());
        full.materialize(&mut g_full);

        // Incremental path: load a prefix, close it, then feed the rest
        // as a delta.
        let cut = (split as usize) % triples.len();
        let mut g_inc = Graph::new();
        for (s, p, o) in &triples[..cut] {
            g_inc.add(s, p, o);
        }
        // Re-parse into the incremental graph so its interner owns the
        // rule vocabulary too.
        let rules_inc = parse_rules(&rules_text, &mut g_inc).expect("generated rules parse");
        let mut inc = Reasoner::new();
        inc.add_rules(rules_inc);
        inc.materialize(&mut g_inc);

        let delta: Vec<Triple> = triples[cut..]
            .iter()
            .map(|(s, p, o)| {
                let (s, p, o) = (g_inc.iri(s), g_inc.iri(p), g_inc.iri(o));
                Triple::new(s, p, o)
            })
            .collect();
        inc.materialize_incremental(&mut g_inc, delta);

        prop_assert_eq!(rendered(&g_inc), rendered(&g_full));
    }
}
