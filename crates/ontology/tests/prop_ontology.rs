//! Property tests for the triple store and the forward-chaining reasoner.

use mdagent_ontology::{parser::parse_rules, Graph, Reasoner, Store, Term, Triple};
use proptest::prelude::*;

/// Strategy: a small universe of node names.
fn node() -> impl Strategy<Value = String> {
    (0u8..12).prop_map(|i| format!("ex:n{i}"))
}

fn pred() -> impl Strategy<Value = String> {
    (0u8..4).prop_map(|i| format!("ex:p{i}"))
}

proptest! {
    /// Insert + remove leaves the store exactly where it started, and all
    /// index-backed masks agree with a linear scan at every step.
    #[test]
    fn store_indexes_stay_consistent(
        ops in proptest::collection::vec((node(), pred(), node(), any::<bool>()), 1..80),
    ) {
        let mut g = Graph::new();
        let mut reference: Vec<(String, String, String)> = Vec::new();
        for (s, p, o, insert) in &ops {
            if *insert {
                g.add(s, p, o);
                if !reference.contains(&(s.clone(), p.clone(), o.clone())) {
                    reference.push((s.clone(), p.clone(), o.clone()));
                }
            } else {
                let (Some(st), Some(pt), Some(ot)) = (g.try_iri(s), g.try_iri(p), g.try_iri(o)) else {
                    continue;
                };
                g.store_mut().remove(&Triple::new(st, pt, ot));
                reference.retain(|(a, b, c)| !(a == s && b == p && c == o));
            }
        }
        prop_assert_eq!(g.len(), reference.len());
        for (s, p, o) in &reference {
            prop_assert!(g.contains(s, p, o));
            // Single-position masks must each find this triple.
            let st = g.try_iri(s).unwrap();
            let pt = g.try_iri(p).unwrap();
            let ot = g.try_iri(o).unwrap();
            let t = Triple::new(st, pt, ot);
            prop_assert!(g.store().match_spo(Some(st), None, None).contains(&t));
            prop_assert!(g.store().match_spo(None, Some(pt), None).contains(&t));
            prop_assert!(g.store().match_spo(None, None, Some(ot)).contains(&t));
        }
    }

    /// The transitive-closure rule derives exactly graph reachability:
    /// sound (every derived edge is a real path) and complete (every
    /// reachable pair is derived).
    #[test]
    fn transitive_rule_equals_reachability(
        edges in proptest::collection::vec((0u8..8, 0u8..8), 1..20),
    ) {
        let mut g = Graph::new();
        for (a, b) in &edges {
            g.add(&format!("ex:n{a}"), "ex:edge", &format!("ex:n{b}"));
        }
        let rules = parse_rules(
            "[tc: (?x ex:edge ?y), (?y ex:edge ?z) -> (?x ex:edge ?z)]",
            &mut g,
        ).unwrap();
        let mut reasoner = Reasoner::new();
        reasoner.add_rules(rules);
        reasoner.materialize(&mut g);

        // Floyd–Warshall reference over the 8-node universe.
        let mut reach = [[false; 8]; 8];
        for (a, b) in &edges {
            reach[*a as usize][*b as usize] = true;
        }
        for k in 0..8 {
            for i in 0..8 {
                for j in 0..8 {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        for (i, row) in reach.iter().enumerate() {
            for (j, expected) in row.iter().enumerate() {
                let has = g.contains(&format!("ex:n{i}"), "ex:edge", &format!("ex:n{j}"));
                prop_assert_eq!(has, *expected, "mismatch at ({}, {})", i, j);
            }
        }
    }

    /// Materialization is monotone (never removes triples) and idempotent.
    #[test]
    fn materialization_monotone_idempotent(
        triples in proptest::collection::vec((node(), pred(), node()), 1..30),
    ) {
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            g.add(s, p, o);
        }
        // Give some structure: p0 is transitive, p1 subPropertyOf p2.
        g.add("ex:p0", "rdf:type", "owl:TransitiveProperty");
        g.add("ex:p1", "rdfs:subPropertyOf", "ex:p2");
        let before: Vec<Triple> = g.store().iter().copied().collect();
        let mut reasoner = Reasoner::with_axioms(&mut g);
        reasoner.materialize(&mut g);
        for t in &before {
            prop_assert!(g.store().contains(t), "materialization dropped a base triple");
        }
        let after = g.len();
        reasoner.materialize(&mut g);
        prop_assert_eq!(g.len(), after, "second materialization changed the graph");
    }

    /// Pattern matching with a fully-ground pattern agrees with `contains`.
    #[test]
    fn ground_match_equals_contains(
        triples in proptest::collection::vec((node(), pred(), node()), 1..20),
        probe in (node(), pred(), node()),
    ) {
        let mut store = Store::new();
        let mut g = Graph::new();
        let mut terms = |s: &str| -> Term { g.iri(s) };
        for (s, p, o) in &triples {
            let t = Triple::new(terms(s), terms(p), terms(o));
            store.insert(t);
        }
        let t = Triple::new(terms(&probe.0), terms(&probe.1), terms(&probe.2));
        let matched = store.match_spo(Some(t.s), Some(t.p), Some(t.o));
        prop_assert_eq!(matched.len() == 1, store.contains(&t));
    }
}

proptest! {
    /// write_triples ∘ parse_triples is the identity on graph content, and
    /// the canonical text is a fixpoint of the roundtrip.
    #[test]
    fn serializer_roundtrip(
        triples in proptest::collection::vec((node(), pred(), node()), 1..40),
        lits in proptest::collection::vec((node(), -1000i64..1000), 0..10),
    ) {
        use mdagent_ontology::{parser::parse_triples, write_triples};
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            g.add(s, p, o);
        }
        for (s, v) in &lits {
            let lit = g.int_lit(*v);
            g.add_with_object(s, "ex:value", lit);
        }
        let text = write_triples(&g);
        let mut g2 = Graph::new();
        let added = parse_triples(&text, &mut g2).unwrap();
        prop_assert_eq!(added, g.len());
        prop_assert_eq!(write_triples(&g2), text);
    }
}
