//! Serialization of graphs and rules back to text.
//!
//! Registries export their ontology state for inspection, and rules render
//! back to the Jena syntax they were parsed from, giving parse ⇄ render
//! round trips the property tests can lean on.

use std::fmt::Write as _;

use crate::graph::Graph;
use crate::rule::{BuiltinAtom, Rule, RuleAtom};
use crate::term::{Literal, Term};
use crate::triple::{PatternTerm, TriplePattern};

/// Renders the whole graph as Turtle-lite text, one statement per line,
/// sorted lexicographically for deterministic output. The result parses
/// back via [`parse_triples`](crate::parser::parse_triples).
pub fn write_triples(graph: &Graph) -> String {
    let mut lines: Vec<String> = graph
        .store()
        .iter()
        .map(|t| {
            format!(
                "{} {} {} .",
                graph.term_to_string(t.s),
                graph.term_to_string(t.p),
                render_object(graph, t.o),
            )
        })
        .collect();
    lines.sort();
    let mut out = String::new();
    for line in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn render_object(graph: &Graph, term: Term) -> String {
    match term {
        Term::Iri(_) => graph.term_to_string(term),
        Term::Literal(Literal::Str(id)) => format!("'{}'", escape(graph.resolve(id))),
        Term::Literal(Literal::Int(i)) => format!("'{i}'^^xsd:integer"),
        Term::Literal(Literal::Double(d)) => format!("'{}'^^xsd:double", d.value()),
        Term::Literal(Literal::Bool(b)) => format!("'{b}'^^xsd:boolean"),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\'', "\\'")
}

fn render_pattern_term(graph: &Graph, rule: &Rule, pt: PatternTerm) -> String {
    match pt {
        PatternTerm::Var(v) => format!(
            "?{}",
            rule.var_names
                .get(v.0 as usize)
                .map(String::as_str)
                .unwrap_or("_")
        ),
        PatternTerm::Ground(t) => render_object(graph, t),
    }
}

fn render_pattern(graph: &Graph, rule: &Rule, p: &TriplePattern) -> String {
    format!(
        "({} {} {})",
        render_pattern_term(graph, rule, p.s),
        render_pattern_term(graph, rule, p.p),
        render_pattern_term(graph, rule, p.o)
    )
}

fn render_builtin(graph: &Graph, rule: &Rule, b: &BuiltinAtom) -> String {
    format!(
        "{}({}, {})",
        b.op.name(),
        render_pattern_term(graph, rule, b.lhs),
        render_pattern_term(graph, rule, b.rhs)
    )
}

/// Renders one rule in Jena syntax; the result parses back via
/// [`parse_rules`](crate::parser::parse_rules) to an equivalent rule.
pub fn write_rule(graph: &Graph, rule: &Rule) -> String {
    let mut out = String::new();
    // Writing into a String cannot fail; ignore the Result.
    let _ = write!(out, "[{}: ", rule.name);
    let body: Vec<String> = rule
        .premises
        .iter()
        .map(|a| match a {
            RuleAtom::Pattern(p) => render_pattern(graph, rule, p),
            RuleAtom::Builtin(b) => render_builtin(graph, rule, b),
        })
        .collect();
    out.push_str(&body.join(", "));
    out.push_str(" -> ");
    let head: Vec<String> = rule
        .conclusions
        .iter()
        .map(|p| render_pattern(graph, rule, p))
        .collect();
    out.push_str(&head.join(", "));
    out.push(']');
    out
}

/// Renders a whole rule set, one rule per line.
pub fn write_rules(graph: &Graph, rules: &[Rule]) -> String {
    rules
        .iter()
        .map(|r| write_rule(graph, r))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_rules, parse_triples};

    #[test]
    fn triples_roundtrip_through_text() {
        let mut g = Graph::new();
        g.add("imcl:prn", "rdf:type", "imcl:Printer");
        let lit = g.str_lit("hp color printer");
        g.add_with_object("imcl:prn", "rdfs:comment", lit);
        let rt = g.double_lit(350.5);
        g.add_with_object("imcl:net", "imcl:responseTime", rt);
        let n = g.int_lit(-3);
        g.add_with_object("imcl:net", "imcl:hops", n);
        let b = g.bool_lit(true);
        g.add_with_object("imcl:net", "imcl:up", b);

        let text = write_triples(&g);
        let mut g2 = Graph::new();
        let added = parse_triples(&text, &mut g2).unwrap();
        assert_eq!(added, g.len());
        // Re-render from the reparse: identical text (canonical form).
        assert_eq!(write_triples(&g2), text);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut g = Graph::new();
        let tricky = g.str_lit("it's a \\ test");
        g.add_with_object("ex:s", "ex:p", tricky);
        let text = write_triples(&g);
        let mut g2 = Graph::new();
        parse_triples(&text, &mut g2).unwrap();
        let objects = g2.objects_of("ex:s", "ex:p");
        assert_eq!(g2.term_to_string(objects[0]), "'it's a \\ test'");
    }

    const FIXTURE: &str = "\
        [Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]\n\
        [Rule2: (?ptr imcl:printerObj 'printer'), (?srcRsc rdf:type ?ptr), (?destRsc rdf:type ?ptr) \
         -> (?srcRsc imcl:compatible ?destRsc)]\n\
        [Rule3: (?n imcl:responseTime ?t), lessThan(?t, '1000'^^xsd:double) \
         -> (?action imcl:actName 'move')]";

    #[test]
    fn paper_rules_roundtrip_through_text() {
        let mut g = Graph::new();
        let rules = parse_rules(FIXTURE, &mut g).unwrap();
        let text = write_rules(&g, &rules);
        let mut g2 = Graph::new();
        let reparsed = parse_rules(&text, &mut g2).unwrap();
        assert_eq!(reparsed.len(), rules.len());
        for (a, b) in rules.iter().zip(&reparsed) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.premises.len(), b.premises.len());
            assert_eq!(a.conclusions.len(), b.conclusions.len());
            assert_eq!(a.var_names, b.var_names);
        }
        // And the canonical text is a fixpoint.
        assert_eq!(write_rules(&g2, &reparsed), text);
    }
}
