//! Indexed triple store.

use std::collections::{BTreeSet, HashMap, HashSet};

use crate::term::Term;
use crate::triple::{PatternTerm, Triple, TriplePattern};

type TwoLevel = HashMap<Term, HashMap<Term, BTreeSet<Term>>>;

/// An in-memory triple store with SPO, POS and OSP indexes.
///
/// All three indexes are maintained on every insert/remove so any pattern
/// with at least one ground position scans a narrow slice.
///
/// # Examples
///
/// ```
/// use mdagent_ontology::{Interner, Store, Term, Triple};
///
/// let mut interner = Interner::new();
/// let mut store = Store::new();
/// let s = Term::Iri(interner.intern("imcl:hpLaserJet"));
/// let p = Term::Iri(interner.intern("rdf:type"));
/// let o = Term::Iri(interner.intern("imcl:Printer"));
/// assert!(store.insert(Triple::new(s, p, o)));
/// assert!(!store.insert(Triple::new(s, p, o)), "duplicate insert is a no-op");
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.match_spo(Some(s), None, None).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Store {
    all: HashSet<Triple>,
    spo: TwoLevel,
    pos: TwoLevel,
    osp: TwoLevel,
}

fn index_insert(index: &mut TwoLevel, a: Term, b: Term, c: Term) {
    index.entry(a).or_default().entry(b).or_default().insert(c);
}

fn index_remove(index: &mut TwoLevel, a: Term, b: Term, c: Term) {
    if let Some(level2) = index.get_mut(&a) {
        if let Some(level3) = level2.get_mut(&b) {
            level3.remove(&c);
            if level3.is_empty() {
                level2.remove(&b);
            }
        }
        if level2.is_empty() {
            index.remove(&a);
        }
    }
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        if !self.all.insert(t) {
            return false;
        }
        index_insert(&mut self.spo, t.s, t.p, t.o);
        index_insert(&mut self.pos, t.p, t.o, t.s);
        index_insert(&mut self.osp, t.o, t.s, t.p);
        true
    }

    /// Removes a triple; returns `false` if it was absent.
    pub fn remove(&mut self, t: &Triple) -> bool {
        if !self.all.remove(t) {
            return false;
        }
        index_remove(&mut self.spo, t.s, t.p, t.o);
        index_remove(&mut self.pos, t.p, t.o, t.s);
        index_remove(&mut self.osp, t.o, t.s, t.p);
        true
    }

    /// Whether the triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.all.contains(t)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Iterates over every triple (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.all.iter()
    }

    /// Matches a `(s?, p?, o?)` mask, picking the best index.
    pub fn match_spo(&self, s: Option<Term>, p: Option<Term>, o: Option<Term>) -> Vec<Triple> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(&t) {
                    vec![t]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .get(&s)
                .and_then(|m| m.get(&p))
                .map(|objects| {
                    objects
                        .iter()
                        .map(|&o| Triple::new(s, p, o))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            (Some(s), None, Some(o)) => self
                .osp
                .get(&o)
                .and_then(|m| m.get(&s))
                .map(|preds| {
                    preds
                        .iter()
                        .map(|&p| Triple::new(s, p, o))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            (None, Some(p), Some(o)) => self
                .pos
                .get(&p)
                .and_then(|m| m.get(&o))
                .map(|subjects| {
                    subjects
                        .iter()
                        .map(|&s| Triple::new(s, p, o))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            (Some(s), None, None) => self
                .spo
                .get(&s)
                .map(|m| {
                    m.iter()
                        .flat_map(|(&p, objects)| {
                            objects.iter().map(move |&o| Triple::new(s, p, o))
                        })
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            (None, Some(p), None) => self
                .pos
                .get(&p)
                .map(|m| {
                    m.iter()
                        .flat_map(|(&o, subjects)| {
                            subjects.iter().map(move |&s| Triple::new(s, p, o))
                        })
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            (None, None, Some(o)) => self
                .osp
                .get(&o)
                .map(|m| {
                    m.iter()
                        .flat_map(|(&s, preds)| preds.iter().map(move |&p| Triple::new(s, p, o)))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default(),
            (None, None, None) => self.all.iter().copied().collect(),
        }
    }

    /// Matches a pattern under partial bindings, extending them per match.
    ///
    /// For every stored triple matching the pattern (with bound variables
    /// substituted), calls `sink` with the bindings extended by the
    /// pattern's own variables. `bindings` must be at least as long as the
    /// highest variable index used.
    pub fn match_pattern(
        &self,
        pattern: &TriplePattern,
        bindings: &[Option<Term>],
        mut sink: impl FnMut(Vec<Option<Term>>),
    ) {
        let resolve = |pt: PatternTerm| -> Option<Term> {
            match pt {
                PatternTerm::Ground(t) => Some(t),
                PatternTerm::Var(v) => bindings.get(v.0 as usize).copied().flatten(),
            }
        };
        let (ms, mp, mo) = (resolve(pattern.s), resolve(pattern.p), resolve(pattern.o));
        for triple in self.match_spo(ms, mp, mo) {
            let mut next = bindings.to_vec();
            let mut consistent = true;
            for (pt, actual) in [
                (pattern.s, triple.s),
                (pattern.p, triple.p),
                (pattern.o, triple.o),
            ] {
                if let PatternTerm::Var(v) = pt {
                    let slot = &mut next[v.0 as usize];
                    match slot {
                        Some(existing) if *existing != actual => {
                            consistent = false;
                            break;
                        }
                        _ => *slot = Some(actual),
                    }
                }
            }
            if consistent {
                sink(next);
            }
        }
    }
}

impl Extend<Triple> for Store {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl FromIterator<Triple> for Store {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut store = Store::new();
        store.extend(iter);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Interner, Literal};
    use crate::triple::VarId;

    struct Fixture {
        store: Store,
        alice: Term,
        bob: Term,
        knows: Term,
        age: Term,
    }

    fn fixture() -> Fixture {
        let mut i = Interner::new();
        let alice = Term::Iri(i.intern("ex:alice"));
        let bob = Term::Iri(i.intern("ex:bob"));
        let knows = Term::Iri(i.intern("ex:knows"));
        let age = Term::Iri(i.intern("ex:age"));
        let mut store = Store::new();
        store.insert(Triple::new(alice, knows, bob));
        store.insert(Triple::new(bob, knows, alice));
        store.insert(Triple::new(alice, age, Term::Literal(Literal::Int(30))));
        Fixture {
            store,
            alice,
            bob,
            knows,
            age,
        }
    }

    #[test]
    fn all_masks_agree() {
        let f = fixture();
        assert_eq!(f.store.len(), 3);
        assert_eq!(f.store.match_spo(Some(f.alice), None, None).len(), 2);
        assert_eq!(f.store.match_spo(None, Some(f.knows), None).len(), 2);
        assert_eq!(f.store.match_spo(None, None, Some(f.bob)).len(), 1);
        assert_eq!(
            f.store
                .match_spo(Some(f.alice), Some(f.knows), Some(f.bob))
                .len(),
            1
        );
        assert_eq!(f.store.match_spo(Some(f.bob), Some(f.age), None).len(), 0);
        assert_eq!(f.store.match_spo(None, None, None).len(), 3);
        assert_eq!(f.store.match_spo(Some(f.alice), None, Some(f.bob)).len(), 1);
        assert_eq!(
            f.store.match_spo(None, Some(f.knows), Some(f.alice)).len(),
            1
        );
    }

    #[test]
    fn remove_cleans_indexes() {
        let mut f = fixture();
        let t = Triple::new(f.alice, f.knows, f.bob);
        assert!(f.store.remove(&t));
        assert!(!f.store.remove(&t));
        assert_eq!(f.store.len(), 2);
        assert!(f
            .store
            .match_spo(Some(f.alice), Some(f.knows), None)
            .is_empty());
        assert_eq!(f.store.match_spo(None, Some(f.knows), None).len(), 1);
    }

    #[test]
    fn pattern_matching_extends_bindings() {
        let f = fixture();
        // (?x knows ?y)
        let pat = TriplePattern::new(VarId(0), f.knows, VarId(1));
        let mut results = Vec::new();
        f.store
            .match_pattern(&pat, &[None, None], |b| results.push(b));
        assert_eq!(results.len(), 2);
        // (?x knows ?x) matches nothing: nobody knows themselves.
        let self_pat = TriplePattern::new(VarId(0), f.knows, VarId(0));
        let mut hits = 0;
        f.store.match_pattern(&self_pat, &[None], |_| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn pattern_respects_existing_bindings() {
        let f = fixture();
        let pat = TriplePattern::new(VarId(0), f.knows, VarId(1));
        let mut results = Vec::new();
        f.store
            .match_pattern(&pat, &[Some(f.bob), None], |b| results.push(b));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0][1], Some(f.alice));
    }

    #[test]
    fn from_iterator_collects() {
        let f = fixture();
        let copy: Store = f.store.iter().copied().collect();
        assert_eq!(copy.len(), f.store.len());
    }
}
