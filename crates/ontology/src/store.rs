//! Indexed triple store.

use std::collections::BTreeSet;

use crate::fx::{FxHashMap, FxHashSet};

use crate::term::Term;
use crate::triple::{PatternTerm, Triple, TriplePattern};

type TwoLevel = FxHashMap<Term, FxHashMap<Term, BTreeSet<Term>>>;

/// An in-memory triple store with SPO, POS and OSP indexes.
///
/// All three indexes are maintained on every insert/remove so any pattern
/// with at least one ground position scans a narrow slice. Per-position
/// cardinality counters ride along with the indexes, giving the join
/// planner (see [`Reasoner`](crate::Reasoner)) O(1) exact counts for every match mask
/// via [`Store::count_match`].
///
/// # Examples
///
/// ```
/// use mdagent_ontology::{Interner, Store, Term, Triple};
///
/// let mut interner = Interner::new();
/// let mut store = Store::new();
/// let s = Term::Iri(interner.intern("imcl:hpLaserJet"));
/// let p = Term::Iri(interner.intern("rdf:type"));
/// let o = Term::Iri(interner.intern("imcl:Printer"));
/// assert!(store.insert(Triple::new(s, p, o)));
/// assert!(!store.insert(Triple::new(s, p, o)), "duplicate insert is a no-op");
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.match_spo(Some(s), None, None).len(), 1);
/// assert_eq!(store.count_match(None, Some(p), None), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Store {
    all: FxHashSet<Triple>,
    spo: TwoLevel,
    pos: TwoLevel,
    osp: TwoLevel,
    subj_count: FxHashMap<Term, usize>,
    pred_count: FxHashMap<Term, usize>,
    obj_count: FxHashMap<Term, usize>,
}

fn index_insert(index: &mut TwoLevel, a: Term, b: Term, c: Term) {
    index.entry(a).or_default().entry(b).or_default().insert(c);
}

fn index_remove(index: &mut TwoLevel, a: Term, b: Term, c: Term) {
    if let Some(level2) = index.get_mut(&a) {
        if let Some(level3) = level2.get_mut(&b) {
            level3.remove(&c);
            if level3.is_empty() {
                level2.remove(&b);
            }
        }
        if level2.is_empty() {
            index.remove(&a);
        }
    }
}

fn count_incr(counts: &mut FxHashMap<Term, usize>, key: Term) {
    *counts.entry(key).or_insert(0) += 1;
}

fn count_decr(counts: &mut FxHashMap<Term, usize>, key: Term) {
    if let Some(n) = counts.get_mut(&key) {
        *n -= 1;
        if *n == 0 {
            counts.remove(&key);
        }
    }
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        if !self.all.insert(t) {
            return false;
        }
        index_insert(&mut self.spo, t.s, t.p, t.o);
        index_insert(&mut self.pos, t.p, t.o, t.s);
        index_insert(&mut self.osp, t.o, t.s, t.p);
        count_incr(&mut self.subj_count, t.s);
        count_incr(&mut self.pred_count, t.p);
        count_incr(&mut self.obj_count, t.o);
        true
    }

    /// Removes a triple; returns `false` if it was absent.
    pub fn remove(&mut self, t: &Triple) -> bool {
        if !self.all.remove(t) {
            return false;
        }
        index_remove(&mut self.spo, t.s, t.p, t.o);
        index_remove(&mut self.pos, t.p, t.o, t.s);
        index_remove(&mut self.osp, t.o, t.s, t.p);
        count_decr(&mut self.subj_count, t.s);
        count_decr(&mut self.pred_count, t.p);
        count_decr(&mut self.obj_count, t.o);
        true
    }

    /// Whether the triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.all.contains(t)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Iterates over every triple (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.all.iter()
    }

    /// Number of triples whose subject is `s` (O(1)).
    pub fn subject_cardinality(&self, s: Term) -> usize {
        self.subj_count.get(&s).copied().unwrap_or(0)
    }

    /// Number of triples whose predicate is `p` (O(1)).
    pub fn predicate_cardinality(&self, p: Term) -> usize {
        self.pred_count.get(&p).copied().unwrap_or(0)
    }

    /// Number of triples whose object is `o` (O(1)).
    pub fn object_cardinality(&self, o: Term) -> usize {
        self.obj_count.get(&o).copied().unwrap_or(0)
    }

    /// Exact number of triples matching a `(s?, p?, o?)` mask, in O(1) for
    /// every mask shape (the join planner's cost oracle).
    pub fn count_match(&self, s: Option<Term>, p: Option<Term>, o: Option<Term>) -> usize {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains(&Triple::new(s, p, o))),
            (Some(s), Some(p), None) => self
                .spo
                .get(&s)
                .and_then(|m| m.get(&p))
                .map_or(0, BTreeSet::len),
            (Some(s), None, Some(o)) => self
                .osp
                .get(&o)
                .and_then(|m| m.get(&s))
                .map_or(0, BTreeSet::len),
            (None, Some(p), Some(o)) => self
                .pos
                .get(&p)
                .and_then(|m| m.get(&o))
                .map_or(0, BTreeSet::len),
            (Some(s), None, None) => self.subject_cardinality(s),
            (None, Some(p), None) => self.predicate_cardinality(p),
            (None, None, Some(o)) => self.object_cardinality(o),
            (None, None, None) => self.len(),
        }
    }

    /// Calls `f` for every triple matching a `(s?, p?, o?)` mask, picking
    /// the best index. This is the allocation-free probe underlying
    /// [`Store::match_spo`]; join evaluation uses it directly.
    pub fn for_each_match(
        &self,
        s: Option<Term>,
        p: Option<Term>,
        o: Option<Term>,
        mut f: impl FnMut(Triple),
    ) {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(&t) {
                    f(t);
                }
            }
            (Some(s), Some(p), None) => {
                if let Some(objects) = self.spo.get(&s).and_then(|m| m.get(&p)) {
                    for &o in objects {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, Some(o)) => {
                if let Some(preds) = self.osp.get(&o).and_then(|m| m.get(&s)) {
                    for &p in preds {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                if let Some(subjects) = self.pos.get(&p).and_then(|m| m.get(&o)) {
                    for &s in subjects {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, None) => {
                if let Some(m) = self.spo.get(&s) {
                    for (&p, objects) in m {
                        for &o in objects {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, Some(p), None) => {
                if let Some(m) = self.pos.get(&p) {
                    for (&o, subjects) in m {
                        for &s in subjects {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, Some(o)) => {
                if let Some(m) = self.osp.get(&o) {
                    for (&s, preds) in m {
                        for &p in preds {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, None) => {
                for &t in &self.all {
                    f(t);
                }
            }
        }
    }

    /// Matches a `(s?, p?, o?)` mask, collecting into a `Vec`.
    ///
    /// Convenience wrapper over [`Store::for_each_match`] for callers that
    /// want owned results; hot paths should prefer the callback form.
    pub fn match_spo(&self, s: Option<Term>, p: Option<Term>, o: Option<Term>) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(s, p, o, |t| out.push(t));
        out
    }

    /// Calls `f` for every stored triple matching `pattern` under
    /// `bindings`, passing the triple itself. Bound variables are
    /// substituted into the probe mask; `f` must itself check positions
    /// occupied by repeated variables — use
    /// [`crate::reason::unify_pattern`] or [`Store::match_pattern`] when
    /// full unification is wanted.
    fn for_each_pattern_candidate(
        &self,
        pattern: &TriplePattern,
        bindings: &[Option<Term>],
        f: impl FnMut(Triple),
    ) {
        let resolve = |pt: PatternTerm| -> Option<Term> {
            match pt {
                PatternTerm::Ground(t) => Some(t),
                PatternTerm::Var(v) => bindings.get(v.0 as usize).copied().flatten(),
            }
        };
        self.for_each_match(
            resolve(pattern.s),
            resolve(pattern.p),
            resolve(pattern.o),
            f,
        );
    }

    /// Matches a pattern under partial bindings, extending them per match.
    ///
    /// For every stored triple matching the pattern (with bound variables
    /// substituted), calls `sink` with the bindings extended by the
    /// pattern's own variables. `bindings` must be at least as long as the
    /// highest variable index used.
    pub fn match_pattern(
        &self,
        pattern: &TriplePattern,
        bindings: &[Option<Term>],
        mut sink: impl FnMut(Vec<Option<Term>>),
    ) {
        self.for_each_pattern_candidate(pattern, bindings, |triple| {
            let mut next = bindings.to_vec();
            let mut consistent = true;
            for (pt, actual) in [
                (pattern.s, triple.s),
                (pattern.p, triple.p),
                (pattern.o, triple.o),
            ] {
                if let PatternTerm::Var(v) = pt {
                    let slot = &mut next[v.0 as usize];
                    match slot {
                        Some(existing) if *existing != actual => {
                            consistent = false;
                            break;
                        }
                        _ => *slot = Some(actual),
                    }
                }
            }
            if consistent {
                sink(next);
            }
        });
    }

    /// In-place variant of [`Store::match_pattern`]: binds the pattern's
    /// variables directly in `bindings`, calls `sink`, then restores the
    /// previous state — no per-match allocation.
    pub fn match_pattern_in_place(
        &self,
        pattern: &TriplePattern,
        bindings: &mut Vec<Option<Term>>,
        mut sink: impl FnMut(&mut Vec<Option<Term>>),
    ) {
        // The probe mask borrows `bindings` only to build three Options.
        let resolve = |pt: PatternTerm, b: &[Option<Term>]| -> Option<Term> {
            match pt {
                PatternTerm::Ground(t) => Some(t),
                PatternTerm::Var(v) => b.get(v.0 as usize).copied().flatten(),
            }
        };
        let (ms, mp, mo) = (
            resolve(pattern.s, bindings),
            resolve(pattern.p, bindings),
            resolve(pattern.o, bindings),
        );
        self.for_each_match(ms, mp, mo, |triple| {
            let mut touched = [None::<u32>; 3];
            let mut touched_len = 0;
            let mut consistent = true;
            for (pt, actual) in [
                (pattern.s, triple.s),
                (pattern.p, triple.p),
                (pattern.o, triple.o),
            ] {
                if let PatternTerm::Var(v) = pt {
                    let slot = &mut bindings[v.0 as usize];
                    match slot {
                        Some(existing) if *existing != actual => {
                            consistent = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            *slot = Some(actual);
                            touched[touched_len] = Some(v.0);
                            touched_len += 1;
                        }
                    }
                }
            }
            if consistent {
                sink(bindings);
            }
            for idx in touched.iter().flatten() {
                bindings[*idx as usize] = None;
            }
        });
    }
}

impl Extend<Triple> for Store {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl FromIterator<Triple> for Store {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut store = Store::new();
        store.extend(iter);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Interner, Literal};
    use crate::triple::VarId;

    struct Fixture {
        store: Store,
        alice: Term,
        bob: Term,
        knows: Term,
        age: Term,
    }

    fn fixture() -> Fixture {
        let mut i = Interner::new();
        let alice = Term::Iri(i.intern("ex:alice"));
        let bob = Term::Iri(i.intern("ex:bob"));
        let knows = Term::Iri(i.intern("ex:knows"));
        let age = Term::Iri(i.intern("ex:age"));
        let mut store = Store::new();
        store.insert(Triple::new(alice, knows, bob));
        store.insert(Triple::new(bob, knows, alice));
        store.insert(Triple::new(alice, age, Term::Literal(Literal::Int(30))));
        Fixture {
            store,
            alice,
            bob,
            knows,
            age,
        }
    }

    #[test]
    fn all_masks_agree() {
        let f = fixture();
        assert_eq!(f.store.len(), 3);
        assert_eq!(f.store.match_spo(Some(f.alice), None, None).len(), 2);
        assert_eq!(f.store.match_spo(None, Some(f.knows), None).len(), 2);
        assert_eq!(f.store.match_spo(None, None, Some(f.bob)).len(), 1);
        assert_eq!(
            f.store
                .match_spo(Some(f.alice), Some(f.knows), Some(f.bob))
                .len(),
            1
        );
        assert_eq!(f.store.match_spo(Some(f.bob), Some(f.age), None).len(), 0);
        assert_eq!(f.store.match_spo(None, None, None).len(), 3);
        assert_eq!(f.store.match_spo(Some(f.alice), None, Some(f.bob)).len(), 1);
        assert_eq!(
            f.store.match_spo(None, Some(f.knows), Some(f.alice)).len(),
            1
        );
    }

    #[test]
    fn count_match_agrees_with_match_spo_on_every_mask() {
        let f = fixture();
        let choices = [None, Some(f.alice), Some(f.bob), Some(f.knows), Some(f.age)];
        for s in choices {
            for p in choices {
                for o in choices {
                    assert_eq!(
                        f.store.count_match(s, p, o),
                        f.store.match_spo(s, p, o).len(),
                        "mask ({s:?} {p:?} {o:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn cardinalities_track_inserts_and_removes() {
        let mut f = fixture();
        assert_eq!(f.store.subject_cardinality(f.alice), 2);
        assert_eq!(f.store.predicate_cardinality(f.knows), 2);
        assert_eq!(f.store.object_cardinality(f.bob), 1);
        let t = Triple::new(f.alice, f.knows, f.bob);
        f.store.remove(&t);
        assert_eq!(f.store.subject_cardinality(f.alice), 1);
        assert_eq!(f.store.predicate_cardinality(f.knows), 1);
        assert_eq!(f.store.object_cardinality(f.bob), 0);
        // Re-insert restores the counts.
        f.store.insert(t);
        assert_eq!(f.store.predicate_cardinality(f.knows), 2);
    }

    #[test]
    fn remove_cleans_indexes() {
        let mut f = fixture();
        let t = Triple::new(f.alice, f.knows, f.bob);
        assert!(f.store.remove(&t));
        assert!(!f.store.remove(&t));
        assert_eq!(f.store.len(), 2);
        assert!(f
            .store
            .match_spo(Some(f.alice), Some(f.knows), None)
            .is_empty());
        assert_eq!(f.store.match_spo(None, Some(f.knows), None).len(), 1);
    }

    #[test]
    fn pattern_matching_extends_bindings() {
        let f = fixture();
        // (?x knows ?y)
        let pat = TriplePattern::new(VarId(0), f.knows, VarId(1));
        let mut results = Vec::new();
        f.store
            .match_pattern(&pat, &[None, None], |b| results.push(b));
        assert_eq!(results.len(), 2);
        // (?x knows ?x) matches nothing: nobody knows themselves.
        let self_pat = TriplePattern::new(VarId(0), f.knows, VarId(0));
        let mut hits = 0;
        f.store.match_pattern(&self_pat, &[None], |_| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn in_place_matching_binds_and_restores() {
        let f = fixture();
        let pat = TriplePattern::new(VarId(0), f.knows, VarId(1));
        let mut bindings = vec![None, None];
        let mut seen = Vec::new();
        f.store.match_pattern_in_place(&pat, &mut bindings, |b| {
            seen.push((b[0], b[1]));
        });
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().all(|(a, b)| a.is_some() && b.is_some()));
        // Bindings restored after iteration.
        assert_eq!(bindings, vec![None, None]);
        // Repeated-variable pattern must reject inconsistent triples.
        let self_pat = TriplePattern::new(VarId(0), f.knows, VarId(0));
        let mut hits = 0;
        f.store
            .match_pattern_in_place(&self_pat, &mut vec![None], |_| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn pattern_respects_existing_bindings() {
        let f = fixture();
        let pat = TriplePattern::new(VarId(0), f.knows, VarId(1));
        let mut results = Vec::new();
        f.store
            .match_pattern(&pat, &[Some(f.bob), None], |b| results.push(b));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0][1], Some(f.alice));
    }

    #[test]
    fn from_iterator_collects() {
        let f = fixture();
        let copy: Store = f.store.iter().copied().collect();
        assert_eq!(copy.len(), f.store.len());
    }
}
