//! Indexed triple store.

use crate::fx::{FxHashMap, FxHashSet};

use crate::term::Term;
use crate::triple::{PatternTerm, Triple, TriplePattern};

/// Leaf of a two-level index: a posting list kept sorted by [`Term`]'s
/// total order. Sorted `Vec`s iterate in exactly the order the previous
/// `BTreeSet` representation did (so closures and query results are
/// bit-identical), scan contiguously, and — crucially for the reasoner's
/// batch joins — support sorted-merge set difference against another
/// posting list without any hashing.
type Posting = Vec<Term>;

/// One tier of a two-level index: terms mapped to sorted posting lists,
/// plus the total number of leaf entries across them. Caching the total
/// here gives the planner its O(1) per-position cardinalities from data
/// already touched by every insert/remove — no separate counter maps.
#[derive(Debug, Clone, Default)]
struct Level2 {
    map: FxHashMap<Term, Posting>,
    total: usize,
}

type TwoLevel = FxHashMap<Term, Level2>;

const EMPTY_POSTING: &[Term] = &[];

/// An in-memory triple store with SPO, POS and OSP indexes.
///
/// All three indexes are maintained on every insert/remove so any pattern
/// with at least one ground position scans a narrow slice. Per-position
/// cardinality counters ride along with the indexes, giving the join
/// planner (see [`Reasoner`](crate::Reasoner)) O(1) exact counts for every match mask
/// via [`Store::count_match`]. Index leaves are sorted posting lists
/// ([`Store::objects_sp`] and friends expose them as slices), which is
/// what the reasoner's merge-join fast path iterates.
///
/// # Examples
///
/// ```
/// use mdagent_ontology::{Interner, Store, Term, Triple};
///
/// let mut interner = Interner::new();
/// let mut store = Store::new();
/// let s = Term::Iri(interner.intern("imcl:hpLaserJet"));
/// let p = Term::Iri(interner.intern("rdf:type"));
/// let o = Term::Iri(interner.intern("imcl:Printer"));
/// assert!(store.insert(Triple::new(s, p, o)));
/// assert!(!store.insert(Triple::new(s, p, o)), "duplicate insert is a no-op");
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.match_spo(Some(s), None, None).len(), 1);
/// assert_eq!(store.count_match(None, Some(p), None), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Store {
    all: FxHashSet<Triple>,
    spo: TwoLevel,
    pos: TwoLevel,
    osp: TwoLevel,
}

fn index_insert(index: &mut TwoLevel, a: Term, b: Term, c: Term) {
    let level2 = index.entry(a).or_default();
    let posting = level2.map.entry(b).or_default();
    if let Err(pos) = posting.binary_search(&c) {
        posting.insert(pos, c);
        level2.total += 1;
    }
}

/// Removes a batch of `(a, b, c)` entries — given as triples rearranged
/// through `key` into this index's component order and sorted by that
/// order — sharing level-1/level-2 probes across runs with equal keys and
/// rewriting each touched posting in one two-pointer pass.
fn index_remove_batch(
    index: &mut TwoLevel,
    sorted: &[Triple],
    key: impl Fn(&Triple) -> (Term, Term, Term),
) {
    let mut i = 0;
    while i < sorted.len() {
        let a = key(&sorted[i]).0;
        let mut end_a = i + 1;
        while end_a < sorted.len() && key(&sorted[end_a]).0 == a {
            end_a += 1;
        }
        if let Some(level2) = index.get_mut(&a) {
            // Batch entries are distinct and were all present, so a run
            // as long as the level's total covers every entry under this
            // key: drop the whole level without touching its postings.
            if end_a - i == level2.total {
                index.remove(&a);
                i = end_a;
                continue;
            }
            let mut j = i;
            while j < end_a {
                let b = key(&sorted[j]).1;
                let mut end_b = j + 1;
                while end_b < end_a && key(&sorted[end_b]).1 == b {
                    end_b += 1;
                }
                if let Some(posting) = level2.map.get_mut(&b) {
                    // Same coverage argument, one posting down.
                    if end_b - j == posting.len() {
                        level2.total -= posting.len();
                        level2.map.remove(&b);
                        j = end_b;
                        continue;
                    }
                    // Few removals from a long posting: binary-search each
                    // (removing near the tail shifts little). Dense
                    // removals: one retain pass over the posting.
                    if (end_b - j) * 8 < posting.len() {
                        for t in &sorted[j..end_b] {
                            let c = key(t).2;
                            // Tail check first: churn retracts recently
                            // interned terms, which sort last — `pop`
                            // touches one cache line where a binary
                            // search over a cold posting touches ~log n.
                            if posting.last() == Some(&c) {
                                posting.pop();
                                level2.total -= 1;
                            } else if let Ok(pos) = posting.binary_search(&c) {
                                posting.remove(pos);
                                level2.total -= 1;
                            }
                        }
                    } else {
                        let before = posting.len();
                        let mut k = j;
                        posting.retain(|&c| {
                            while k < end_b && key(&sorted[k]).2 < c {
                                k += 1;
                            }
                            !(k < end_b && key(&sorted[k]).2 == c)
                        });
                        level2.total -= before - posting.len();
                    }
                    if posting.is_empty() {
                        level2.map.remove(&b);
                    }
                }
                j = end_b;
            }
            if level2.map.is_empty() {
                index.remove(&a);
            }
        }
        i = end_a;
    }
}

fn index_remove(index: &mut TwoLevel, a: Term, b: Term, c: Term) {
    if let Some(level2) = index.get_mut(&a) {
        if let Some(level3) = level2.map.get_mut(&b) {
            if let Ok(pos) = level3.binary_search(&c) {
                level3.remove(pos);
                level2.total -= 1;
            }
            if level3.is_empty() {
                level2.map.remove(&b);
            }
        }
        if level2.map.is_empty() {
            index.remove(&a);
        }
    }
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        if !self.all.insert(t) {
            return false;
        }
        index_insert(&mut self.spo, t.s, t.p, t.o);
        index_insert(&mut self.pos, t.p, t.o, t.s);
        index_insert(&mut self.osp, t.o, t.s, t.p);
        true
    }

    /// Removes a triple; returns `false` if it was absent.
    pub fn remove(&mut self, t: &Triple) -> bool {
        if !self.all.remove(t) {
            return false;
        }
        index_remove(&mut self.spo, t.s, t.p, t.o);
        index_remove(&mut self.pos, t.p, t.o, t.s);
        index_remove(&mut self.osp, t.o, t.s, t.p);
        true
    }

    /// Removes a batch of triples; returns how many were present.
    ///
    /// Equivalent to calling [`Store::remove`] per triple, but sorts the
    /// batch once per index so runs with equal level-1/level-2 keys share
    /// their hash probes and each touched posting is rewritten in a
    /// single pass instead of shifting per element. Retraction removes
    /// hundreds of triples clustered around a few predicates and objects;
    /// grouped removal takes that well below the per-triple cost.
    pub fn remove_batch(&mut self, triples: &[Triple]) -> usize {
        let mut present: Vec<Triple> = Vec::with_capacity(triples.len());
        for t in triples {
            if self.all.remove(t) {
                present.push(*t);
            }
        }
        let spo_key = |t: &Triple| (t.s, t.p, t.o);
        let pos_key = |t: &Triple| (t.p, t.o, t.s);
        let osp_key = |t: &Triple| (t.o, t.s, t.p);
        present.sort_unstable_by_key(spo_key);
        index_remove_batch(&mut self.spo, &present, spo_key);
        present.sort_unstable_by_key(pos_key);
        index_remove_batch(&mut self.pos, &present, pos_key);
        present.sort_unstable_by_key(osp_key);
        index_remove_batch(&mut self.osp, &present, osp_key);
        present.len()
    }

    /// Whether the triple is present.
    pub fn contains(&self, t: &Triple) -> bool {
        self.all.contains(t)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Iterates over every triple (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.all.iter()
    }

    /// Number of triples whose subject is `s` (O(1)).
    pub fn subject_cardinality(&self, s: Term) -> usize {
        self.spo.get(&s).map_or(0, |l| l.total)
    }

    /// Number of triples whose predicate is `p` (O(1)).
    pub fn predicate_cardinality(&self, p: Term) -> usize {
        self.pos.get(&p).map_or(0, |l| l.total)
    }

    /// Number of triples whose object is `o` (O(1)).
    pub fn object_cardinality(&self, o: Term) -> usize {
        self.osp.get(&o).map_or(0, |l| l.total)
    }

    /// Exact number of triples matching a `(s?, p?, o?)` mask, in O(1) for
    /// every mask shape (the join planner's cost oracle).
    pub fn count_match(&self, s: Option<Term>, p: Option<Term>, o: Option<Term>) -> usize {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains(&Triple::new(s, p, o))),
            (Some(s), Some(p), None) => self.objects_sp(s, p).len(),
            (Some(s), None, Some(o)) => self.predicates_os(o, s).len(),
            (None, Some(p), Some(o)) => self.subjects_po(p, o).len(),
            (Some(s), None, None) => self.subject_cardinality(s),
            (None, Some(p), None) => self.predicate_cardinality(p),
            (None, None, Some(o)) => self.object_cardinality(o),
            (None, None, None) => self.len(),
        }
    }

    /// The objects of every `(s, p, ?o)` triple, as a slice sorted by
    /// [`Term`]'s total order. Empty if none.
    pub fn objects_sp(&self, s: Term, p: Term) -> &[Term] {
        self.spo
            .get(&s)
            .and_then(|l| l.map.get(&p))
            .map_or(EMPTY_POSTING, Vec::as_slice)
    }

    /// The subjects of every `(?s, p, o)` triple, sorted. Empty if none.
    pub fn subjects_po(&self, p: Term, o: Term) -> &[Term] {
        self.pos
            .get(&p)
            .and_then(|l| l.map.get(&o))
            .map_or(EMPTY_POSTING, Vec::as_slice)
    }

    /// The predicates of every `(s, ?p, o)` triple, sorted. Empty if none.
    pub fn predicates_os(&self, o: Term, s: Term) -> &[Term] {
        self.osp
            .get(&o)
            .and_then(|l| l.map.get(&s))
            .map_or(EMPTY_POSTING, Vec::as_slice)
    }

    /// Calls `f` for every triple matching a `(s?, p?, o?)` mask, picking
    /// the best index. This is the allocation-free probe underlying
    /// [`Store::match_spo`]; join evaluation uses it directly.
    pub fn for_each_match(
        &self,
        s: Option<Term>,
        p: Option<Term>,
        o: Option<Term>,
        mut f: impl FnMut(Triple),
    ) {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                if self.contains(&t) {
                    f(t);
                }
            }
            (Some(s), Some(p), None) => {
                if let Some(objects) = self.spo.get(&s).and_then(|l| l.map.get(&p)) {
                    for &o in objects {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, Some(o)) => {
                if let Some(preds) = self.osp.get(&o).and_then(|l| l.map.get(&s)) {
                    for &p in preds {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (None, Some(p), Some(o)) => {
                if let Some(subjects) = self.pos.get(&p).and_then(|l| l.map.get(&o)) {
                    for &s in subjects {
                        f(Triple::new(s, p, o));
                    }
                }
            }
            (Some(s), None, None) => {
                if let Some(l) = self.spo.get(&s) {
                    for (&p, objects) in &l.map {
                        for &o in objects {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, Some(p), None) => {
                if let Some(l) = self.pos.get(&p) {
                    for (&o, subjects) in &l.map {
                        for &s in subjects {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, Some(o)) => {
                if let Some(l) = self.osp.get(&o) {
                    for (&s, preds) in &l.map {
                        for &p in preds {
                            f(Triple::new(s, p, o));
                        }
                    }
                }
            }
            (None, None, None) => {
                for &t in &self.all {
                    f(t);
                }
            }
        }
    }

    /// Matches a `(s?, p?, o?)` mask, collecting into a `Vec`.
    ///
    /// Convenience wrapper over [`Store::for_each_match`] for callers that
    /// want owned results; hot paths should prefer the callback form.
    pub fn match_spo(&self, s: Option<Term>, p: Option<Term>, o: Option<Term>) -> Vec<Triple> {
        let mut out = Vec::new();
        self.for_each_match(s, p, o, |t| out.push(t));
        out
    }

    /// Calls `f` for every stored triple matching `pattern` under
    /// `bindings`, passing the triple itself. Bound variables are
    /// substituted into the probe mask; `f` must itself check positions
    /// occupied by repeated variables — use
    /// [`crate::reason::unify_pattern`] or [`Store::match_pattern`] when
    /// full unification is wanted.
    fn for_each_pattern_candidate(
        &self,
        pattern: &TriplePattern,
        bindings: &[Option<Term>],
        f: impl FnMut(Triple),
    ) {
        let resolve = |pt: PatternTerm| -> Option<Term> {
            match pt {
                PatternTerm::Ground(t) => Some(t),
                PatternTerm::Var(v) => bindings.get(v.0 as usize).copied().flatten(),
            }
        };
        self.for_each_match(
            resolve(pattern.s),
            resolve(pattern.p),
            resolve(pattern.o),
            f,
        );
    }

    /// Matches a pattern under partial bindings, extending them per match.
    ///
    /// For every stored triple matching the pattern (with bound variables
    /// substituted), calls `sink` with the bindings extended by the
    /// pattern's own variables. `bindings` must be at least as long as the
    /// highest variable index used.
    pub fn match_pattern(
        &self,
        pattern: &TriplePattern,
        bindings: &[Option<Term>],
        mut sink: impl FnMut(Vec<Option<Term>>),
    ) {
        self.for_each_pattern_candidate(pattern, bindings, |triple| {
            let mut next = bindings.to_vec();
            let mut consistent = true;
            for (pt, actual) in [
                (pattern.s, triple.s),
                (pattern.p, triple.p),
                (pattern.o, triple.o),
            ] {
                if let PatternTerm::Var(v) = pt {
                    let slot = &mut next[v.0 as usize];
                    match slot {
                        Some(existing) if *existing != actual => {
                            consistent = false;
                            break;
                        }
                        _ => *slot = Some(actual),
                    }
                }
            }
            if consistent {
                sink(next);
            }
        });
    }

    /// In-place variant of [`Store::match_pattern`]: binds the pattern's
    /// variables directly in `bindings`, calls `sink`, then restores the
    /// previous state — no per-match allocation.
    pub fn match_pattern_in_place(
        &self,
        pattern: &TriplePattern,
        bindings: &mut Vec<Option<Term>>,
        mut sink: impl FnMut(&mut Vec<Option<Term>>),
    ) {
        // The probe mask borrows `bindings` only to build three Options.
        let resolve = |pt: PatternTerm, b: &[Option<Term>]| -> Option<Term> {
            match pt {
                PatternTerm::Ground(t) => Some(t),
                PatternTerm::Var(v) => b.get(v.0 as usize).copied().flatten(),
            }
        };
        let (ms, mp, mo) = (
            resolve(pattern.s, bindings),
            resolve(pattern.p, bindings),
            resolve(pattern.o, bindings),
        );
        self.for_each_match(ms, mp, mo, |triple| {
            let mut touched = [None::<u32>; 3];
            let mut touched_len = 0;
            let mut consistent = true;
            for (pt, actual) in [
                (pattern.s, triple.s),
                (pattern.p, triple.p),
                (pattern.o, triple.o),
            ] {
                if let PatternTerm::Var(v) = pt {
                    let slot = &mut bindings[v.0 as usize];
                    match slot {
                        Some(existing) if *existing != actual => {
                            consistent = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            *slot = Some(actual);
                            touched[touched_len] = Some(v.0);
                            touched_len += 1;
                        }
                    }
                }
            }
            if consistent {
                sink(bindings);
            }
            for idx in touched.iter().flatten() {
                bindings[*idx as usize] = None;
            }
        });
    }
}

impl Extend<Triple> for Store {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(t);
        }
    }
}

impl FromIterator<Triple> for Store {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut store = Store::new();
        store.extend(iter);
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Interner, Literal};
    use crate::triple::VarId;

    struct Fixture {
        store: Store,
        alice: Term,
        bob: Term,
        knows: Term,
        age: Term,
    }

    fn fixture() -> Fixture {
        let mut i = Interner::new();
        let alice = Term::Iri(i.intern("ex:alice"));
        let bob = Term::Iri(i.intern("ex:bob"));
        let knows = Term::Iri(i.intern("ex:knows"));
        let age = Term::Iri(i.intern("ex:age"));
        let mut store = Store::new();
        store.insert(Triple::new(alice, knows, bob));
        store.insert(Triple::new(bob, knows, alice));
        store.insert(Triple::new(alice, age, Term::Literal(Literal::Int(30))));
        Fixture {
            store,
            alice,
            bob,
            knows,
            age,
        }
    }

    #[test]
    fn all_masks_agree() {
        let f = fixture();
        assert_eq!(f.store.len(), 3);
        assert_eq!(f.store.match_spo(Some(f.alice), None, None).len(), 2);
        assert_eq!(f.store.match_spo(None, Some(f.knows), None).len(), 2);
        assert_eq!(f.store.match_spo(None, None, Some(f.bob)).len(), 1);
        assert_eq!(
            f.store
                .match_spo(Some(f.alice), Some(f.knows), Some(f.bob))
                .len(),
            1
        );
        assert_eq!(f.store.match_spo(Some(f.bob), Some(f.age), None).len(), 0);
        assert_eq!(f.store.match_spo(None, None, None).len(), 3);
        assert_eq!(f.store.match_spo(Some(f.alice), None, Some(f.bob)).len(), 1);
        assert_eq!(
            f.store.match_spo(None, Some(f.knows), Some(f.alice)).len(),
            1
        );
    }

    #[test]
    fn count_match_agrees_with_match_spo_on_every_mask() {
        let f = fixture();
        let choices = [None, Some(f.alice), Some(f.bob), Some(f.knows), Some(f.age)];
        for s in choices {
            for p in choices {
                for o in choices {
                    assert_eq!(
                        f.store.count_match(s, p, o),
                        f.store.match_spo(s, p, o).len(),
                        "mask ({s:?} {p:?} {o:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn cardinalities_track_inserts_and_removes() {
        let mut f = fixture();
        assert_eq!(f.store.subject_cardinality(f.alice), 2);
        assert_eq!(f.store.predicate_cardinality(f.knows), 2);
        assert_eq!(f.store.object_cardinality(f.bob), 1);
        let t = Triple::new(f.alice, f.knows, f.bob);
        f.store.remove(&t);
        assert_eq!(f.store.subject_cardinality(f.alice), 1);
        assert_eq!(f.store.predicate_cardinality(f.knows), 1);
        assert_eq!(f.store.object_cardinality(f.bob), 0);
        // Re-insert restores the counts.
        f.store.insert(t);
        assert_eq!(f.store.predicate_cardinality(f.knows), 2);
    }

    #[test]
    fn remove_cleans_indexes() {
        let mut f = fixture();
        let t = Triple::new(f.alice, f.knows, f.bob);
        assert!(f.store.remove(&t));
        assert!(!f.store.remove(&t));
        assert_eq!(f.store.len(), 2);
        assert!(f
            .store
            .match_spo(Some(f.alice), Some(f.knows), None)
            .is_empty());
        assert_eq!(f.store.match_spo(None, Some(f.knows), None).len(), 1);
    }

    #[test]
    fn pattern_matching_extends_bindings() {
        let f = fixture();
        // (?x knows ?y)
        let pat = TriplePattern::new(VarId(0), f.knows, VarId(1));
        let mut results = Vec::new();
        f.store
            .match_pattern(&pat, &[None, None], |b| results.push(b));
        assert_eq!(results.len(), 2);
        // (?x knows ?x) matches nothing: nobody knows themselves.
        let self_pat = TriplePattern::new(VarId(0), f.knows, VarId(0));
        let mut hits = 0;
        f.store.match_pattern(&self_pat, &[None], |_| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn in_place_matching_binds_and_restores() {
        let f = fixture();
        let pat = TriplePattern::new(VarId(0), f.knows, VarId(1));
        let mut bindings = vec![None, None];
        let mut seen = Vec::new();
        f.store.match_pattern_in_place(&pat, &mut bindings, |b| {
            seen.push((b[0], b[1]));
        });
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().all(|(a, b)| a.is_some() && b.is_some()));
        // Bindings restored after iteration.
        assert_eq!(bindings, vec![None, None]);
        // Repeated-variable pattern must reject inconsistent triples.
        let self_pat = TriplePattern::new(VarId(0), f.knows, VarId(0));
        let mut hits = 0;
        f.store
            .match_pattern_in_place(&self_pat, &mut vec![None], |_| hits += 1);
        assert_eq!(hits, 0);
    }

    #[test]
    fn pattern_respects_existing_bindings() {
        let f = fixture();
        let pat = TriplePattern::new(VarId(0), f.knows, VarId(1));
        let mut results = Vec::new();
        f.store
            .match_pattern(&pat, &[Some(f.bob), None], |b| results.push(b));
        assert_eq!(results.len(), 1);
        assert_eq!(results[0][1], Some(f.alice));
    }

    #[test]
    fn from_iterator_collects() {
        let f = fixture();
        let copy: Store = f.store.iter().copied().collect();
        assert_eq!(copy.len(), f.store.len());
    }

    #[test]
    fn remove_batch_matches_sequential_removes() {
        // A dense little grid so whole-posting and whole-level drops, the
        // per-element fast path and the retain path all get exercised.
        let mut i = Interner::new();
        let nodes: Vec<Term> = (0..8)
            .map(|k| Term::Iri(i.intern(&format!("ex:n{k}"))))
            .collect();
        let preds: Vec<Term> = (0..3)
            .map(|k| Term::Iri(i.intern(&format!("ex:p{k}"))))
            .collect();
        let mut store = Store::new();
        for &p in &preds {
            for &s in &nodes {
                for &o in &nodes {
                    store.insert(Triple::new(s, p, o));
                }
            }
        }
        // Victims mix: one whole (s, p) group, a diagonal, an absent
        // triple, and duplicates of an earlier victim.
        let absent = Triple::new(nodes[0], Term::Iri(i.intern("ex:q")), nodes[0]);
        let mut victims: Vec<Triple> = nodes
            .iter()
            .map(|&o| Triple::new(nodes[2], preds[1], o))
            .collect();
        victims.extend((0..8).map(|k| Triple::new(nodes[k], preds[0], nodes[k])));
        victims.push(absent);
        victims.push(victims[0]);
        victims.push(victims[3]);

        let mut batch = store.clone();
        let mut sequential = store;
        let removed = batch.remove_batch(&victims);
        let mut removed_seq = 0;
        for t in &victims {
            if sequential.remove(t) {
                removed_seq += 1;
            }
        }
        assert_eq!(removed, removed_seq, "duplicates and absents count once");
        assert_eq!(batch.len(), sequential.len());
        for t in sequential.iter() {
            assert!(batch.contains(t));
        }
        // Index consistency on every single-bound mask.
        for &x in nodes.iter().chain(preds.iter()) {
            assert_eq!(
                batch.match_spo(Some(x), None, None).len(),
                sequential.match_spo(Some(x), None, None).len()
            );
            assert_eq!(
                batch.match_spo(None, Some(x), None).len(),
                sequential.match_spo(None, Some(x), None).len()
            );
            assert_eq!(
                batch.match_spo(None, None, Some(x)).len(),
                sequential.match_spo(None, None, Some(x)).len()
            );
        }
    }
}
