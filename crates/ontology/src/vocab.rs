//! Well-known vocabulary names (RDF, RDFS, OWL, XSD and the paper's `imcl`
//! namespace).

/// `rdf:` names.
pub mod rdf {
    /// `rdf:type`.
    pub const TYPE: &str = "rdf:type";
    /// `rdf:Property`.
    pub const PROPERTY: &str = "rdf:Property";
}

/// `rdfs:` names.
pub mod rdfs {
    /// `rdfs:subClassOf`.
    pub const SUB_CLASS_OF: &str = "rdfs:subClassOf";
    /// `rdfs:subPropertyOf`.
    pub const SUB_PROPERTY_OF: &str = "rdfs:subPropertyOf";
    /// `rdfs:domain`.
    pub const DOMAIN: &str = "rdfs:domain";
    /// `rdfs:range`.
    pub const RANGE: &str = "rdfs:range";
    /// `rdfs:comment`.
    pub const COMMENT: &str = "rdfs:comment";
    /// `rdfs:label`.
    pub const LABEL: &str = "rdfs:label";
}

/// `owl:` names.
pub mod owl {
    /// `owl:Class`.
    pub const CLASS: &str = "owl:Class";
    /// `owl:ObjectProperty`.
    pub const OBJECT_PROPERTY: &str = "owl:ObjectProperty";
    /// `owl:DatatypeProperty`.
    pub const DATATYPE_PROPERTY: &str = "owl:DatatypeProperty";
    /// `owl:TransitiveProperty`.
    pub const TRANSITIVE_PROPERTY: &str = "owl:TransitiveProperty";
    /// `owl:SymmetricProperty`.
    pub const SYMMETRIC_PROPERTY: &str = "owl:SymmetricProperty";
    /// `owl:inverseOf`.
    pub const INVERSE_OF: &str = "owl:inverseOf";
    /// `owl:equivalentClass`.
    pub const EQUIVALENT_CLASS: &str = "owl:equivalentClass";
    /// `owl:sameAs`.
    pub const SAME_AS: &str = "owl:sameAs";
}

/// `imcl:` names — the paper's own namespace (Internet and Mobile Computing
/// Lab), used by its Fig. 5/6 examples.
pub mod imcl {
    /// `imcl:locatedIn` — transitive containment of places.
    pub const LOCATED_IN: &str = "imcl:locatedIn";
    /// `imcl:compatible` — derived compatibility between resources.
    pub const COMPATIBLE: &str = "imcl:compatible";
    /// `imcl:responseTime` — measured network response time (ms).
    pub const RESPONSE_TIME: &str = "imcl:responseTime";
    /// `imcl:address` — host address of a resource.
    pub const ADDRESS: &str = "imcl:address";
    /// `imcl:actName` — name of a derived action.
    pub const ACT_NAME: &str = "imcl:actName";
    /// `imcl:srcAddress` — source of a derived move action.
    pub const SRC_ADDRESS: &str = "imcl:srcAddress";
    /// `imcl:destAddress` — destination of a derived move action.
    pub const DEST_ADDRESS: &str = "imcl:destAddress";
    /// `imcl:Resource` — root class of shareable resources.
    pub const RESOURCE: &str = "imcl:Resource";
    /// `imcl:Printer` — the running example class.
    pub const PRINTER: &str = "imcl:Printer";
    /// `imcl:Transferable` — resources that may be shipped.
    pub const TRANSFERABLE: &str = "imcl:Transferable";
    /// `imcl:UnTransferable` — resources that must stay put.
    pub const UNTRANSFERABLE: &str = "imcl:UnTransferable";
    /// `imcl:Substitutable` — resources with acceptable local stand-ins.
    pub const SUBSTITUTABLE: &str = "imcl:Substitutable";
    /// `imcl:UnSubstitutable` — resources without stand-ins.
    pub const UNSUBSTITUTABLE: &str = "imcl:UnSubstitutable";
}

/// `xsd:` datatype names.
pub mod xsd {
    /// `xsd:string`.
    pub const STRING: &str = "xsd:string";
    /// `xsd:integer`.
    pub const INTEGER: &str = "xsd:integer";
    /// `xsd:double`.
    pub const DOUBLE: &str = "xsd:double";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "xsd:boolean";
}
