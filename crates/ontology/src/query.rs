//! Conjunctive (basic-graph-pattern) queries — the OWL-QL stand-in.
//!
//! The paper's autonomous agents retrieve destination resources "in the
//! standard OWL Query Language"; this module provides the equivalent
//! operation: solve a conjunction of triple patterns plus builtin filters
//! against a graph and return variable bindings.

use crate::fx::FxHashMap;
use std::sync::Arc;

use crate::graph::Graph;
use crate::parser::{syntax_error, tokenize, ParseError};
use crate::rule::{BuiltinAtom, BuiltinOp, Rule, RuleAtom};
use crate::store::Store;
use crate::term::Term;
use crate::triple::VarId;

/// A compiled conjunctive query.
///
/// # Examples
///
/// ```
/// use mdagent_ontology::{Graph, Query};
///
/// let mut g = Graph::new();
/// g.add("imcl:prn1", "rdf:type", "imcl:Printer");
/// g.add("imcl:prn1", "imcl:locatedIn", "imcl:Office821");
/// g.add("imcl:prn2", "rdf:type", "imcl:Printer");
///
/// let q = Query::parse("(?x rdf:type imcl:Printer), (?x imcl:locatedIn ?where)", &mut g)?;
/// let rows = q.solve(g.store());
/// assert_eq!(rows.len(), 1);
/// assert_eq!(rows[0].get("x"), g.try_iri("imcl:prn1"));
/// # Ok::<(), mdagent_ontology::parser::ParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    rule: Rule,
    schema: Arc<RowSchema>,
}

/// Shared variable-name table of a query's result rows: the names in
/// first-mention order plus a sorted permutation for binary-search lookup.
/// Built once per query and shared by every row, so [`Row::get`] needs no
/// linear scan and rows don't each own a copy of the names.
#[derive(Debug, PartialEq)]
struct RowSchema {
    names: Vec<String>,
    /// Indices into `names`, ordered so the referenced names ascend.
    sorted: Vec<u32>,
}

impl RowSchema {
    fn new(names: Vec<String>) -> Self {
        let mut sorted: Vec<u32> = (0..names.len() as u32).collect();
        sorted.sort_by(|&a, &b| names[a as usize].cmp(&names[b as usize]));
        RowSchema { names, sorted }
    }

    /// Index of a named variable, by binary search over the permutation.
    fn index_of(&self, name: &str) -> Option<usize> {
        self.sorted
            .binary_search_by(|&i| self.names[i as usize].as_str().cmp(name))
            .ok()
            .map(|pos| self.sorted[pos] as usize)
    }
}

/// One solution row: variable name → term.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    schema: Arc<RowSchema>,
    values: Vec<Option<Term>>,
}

impl Row {
    /// The binding of a named variable.
    pub fn get(&self, name: &str) -> Option<Term> {
        let idx = self.schema.index_of(name)?;
        self.values.get(idx).copied().flatten()
    }

    /// The binding of a variable by its rule-local id — O(1), no name
    /// lookup. Ids come from [`Query::var_names`] positions (or
    /// [`crate::rule::Rule::var`] when the query was built from atoms).
    pub fn get_var(&self, var: VarId) -> Option<Term> {
        self.values.get(var.0 as usize).copied().flatten()
    }

    /// All `(name, term)` pairs with bound values.
    pub fn bindings(&self) -> impl Iterator<Item = (&str, Term)> {
        self.schema
            .names
            .iter()
            .zip(&self.values)
            .filter_map(|(n, v)| v.map(|t| (n.as_str(), t)))
    }
}

impl Query {
    /// Parses query text: comma-separated atoms in rule-body syntax, e.g.
    /// `"(?x rdf:type imcl:Printer), lessThan(?t, 1000)"`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed text.
    pub fn parse(text: &str, graph: &mut Graph) -> Result<Query, ParseError> {
        // Reuse the rule parser by wrapping the atoms in a dummy rule with an
        // empty head marker pattern that we strip.
        let tokens = tokenize(text)?;
        if tokens.is_empty() {
            return Err(syntax_error("query", None));
        }
        let wrapped = format!("[q: {text} -> (?q_dummy_s ?q_dummy_p ?q_dummy_o)]");
        let mut rules = crate::parser::parse_rules(&wrapped, graph)?;
        let Some(mut rule) = rules.pop() else {
            return Err(syntax_error("query", None));
        };
        rule.conclusions.clear();
        // Drop the three dummy head vars from the table tail (they were the
        // last ones introduced and are referenced nowhere after clearing).
        for _ in 0..3 {
            if rule
                .var_names
                .last()
                .is_some_and(|n| n.starts_with("q_dummy_"))
            {
                rule.var_names.pop();
            }
        }
        let schema = Arc::new(RowSchema::new(rule.var_names.clone()));
        Ok(Query { rule, schema })
    }

    /// Builds a query directly from atoms (used by the registry layer).
    pub fn from_atoms(atoms: Vec<RuleAtom>, var_names: Vec<String>) -> Query {
        let schema = Arc::new(RowSchema::new(var_names.clone()));
        Query {
            rule: Rule::new("query", atoms, Vec::new(), var_names),
            schema,
        }
    }

    /// The variable names, in first-mention order.
    pub fn var_names(&self) -> &[String] {
        &self.rule.var_names
    }

    /// Solves the query, returning all rows.
    pub fn solve(&self, store: &Store) -> Vec<Row> {
        crate::reason::match_rule(store, &self.rule)
            .into_iter()
            .map(|values| Row {
                schema: Arc::clone(&self.schema),
                values,
            })
            .collect()
    }

    /// Whether at least one solution exists (ASK-style).
    pub fn ask(&self, store: &Store) -> bool {
        !self.solve(store).is_empty()
    }

    /// Solves and projects one variable, deduplicated, in stable order.
    pub fn select(&self, store: &Store, var: &str) -> Vec<Term> {
        let mut seen = FxHashMap::default();
        let mut out = Vec::new();
        for row in self.solve(store) {
            if let Some(t) = row.get(var) {
                if seen.insert(t, ()).is_none() {
                    out.push(t);
                }
            }
        }
        out
    }
}

/// Convenience: one-shot ASK of a single `(s p o)` pattern with optional
/// wildcards, by name.
pub fn ask_pattern(graph: &Graph, s: Option<&str>, p: Option<&str>, o: Option<&str>) -> bool {
    let resolve = |name: Option<&str>| -> Option<Option<Term>> {
        match name {
            None => Some(None),
            Some(n) => graph.try_iri(n).map(Some),
        }
    };
    let (Some(s), Some(p), Some(o)) = (resolve(s), resolve(p), resolve(o)) else {
        return false; // A named term that was never interned matches nothing.
    };
    !graph.store().match_spo(s, p, o).is_empty()
}

/// Builds a [`BuiltinAtom`] filter for use with [`Query::from_atoms`].
pub fn filter(op: BuiltinOp, lhs: VarId, rhs: Term) -> RuleAtom {
    RuleAtom::Builtin(BuiltinAtom {
        op,
        lhs: lhs.into(),
        rhs: rhs.into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.add("imcl:prn1", "rdf:type", "imcl:Printer");
        g.add("imcl:prn1", "imcl:locatedIn", "imcl:Office821");
        g.add("imcl:prn2", "rdf:type", "imcl:Printer");
        g.add("imcl:prn2", "imcl:locatedIn", "imcl:Office822");
        g.add("imcl:scanner", "rdf:type", "imcl:Scanner");
        let rt = g.double_lit(120.0);
        g.add_with_object("imcl:net1", "imcl:responseTime", rt);
        g
    }

    #[test]
    fn join_across_patterns() {
        let mut g = sample();
        let q = Query::parse(
            "(?x rdf:type imcl:Printer), (?x imcl:locatedIn imcl:Office821)",
            &mut g,
        )
        .unwrap();
        let rows = q.solve(g.store());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), g.try_iri("imcl:prn1"));
        assert!(q.ask(g.store()));
    }

    #[test]
    fn select_projects_and_dedups() {
        let mut g = sample();
        let q = Query::parse("(?x rdf:type imcl:Printer)", &mut g).unwrap();
        let printers = q.select(g.store(), "x");
        assert_eq!(printers.len(), 2);
        assert!(q.select(g.store(), "nope").is_empty());
    }

    #[test]
    fn builtin_filters_apply() {
        let mut g = sample();
        let q = Query::parse(
            "(?n imcl:responseTime ?t), lessThan(?t, '1000'^^xsd:double)",
            &mut g,
        )
        .unwrap();
        assert!(q.ask(g.store()));
        let q2 = Query::parse(
            "(?n imcl:responseTime ?t), greaterThan(?t, '1000'^^xsd:double)",
            &mut g,
        )
        .unwrap();
        assert!(!q2.ask(g.store()));
    }

    #[test]
    fn no_match_returns_empty() {
        let mut g = sample();
        let q = Query::parse("(?x rdf:type imcl:Projector)", &mut g).unwrap();
        assert!(q.solve(g.store()).is_empty());
        assert!(!q.ask(g.store()));
    }

    #[test]
    fn var_names_exclude_dummies() {
        let mut g = sample();
        let q = Query::parse("(?a rdf:type ?b)", &mut g).unwrap();
        assert_eq!(q.var_names(), ["a", "b"]);
    }

    #[test]
    fn get_var_agrees_with_named_get() {
        let mut g = sample();
        let q = Query::parse(
            "(?x rdf:type imcl:Printer), (?x imcl:locatedIn ?where)",
            &mut g,
        )
        .unwrap();
        let rows = q.solve(g.store());
        assert!(!rows.is_empty());
        for row in &rows {
            for (i, name) in q.var_names().iter().enumerate() {
                assert_eq!(row.get_var(VarId(i as u32)), row.get(name), "var {name}");
            }
        }
        // Out-of-range ids and unknown names are both just unbound.
        assert_eq!(rows[0].get_var(VarId(99)), None);
        assert_eq!(rows[0].get("no-such-var"), None);
    }

    #[test]
    fn schema_lookup_handles_many_vars() {
        // Enough variables that the sorted permutation actually matters
        // (first-mention order differs from lexicographic order).
        let mut g = Graph::new();
        for (s, p) in [("ex:s", "ex:zz"), ("ex:s", "ex:aa"), ("ex:s", "ex:mm")] {
            g.add(s, p, &format!("{p}-val"));
        }
        let q = Query::parse("(?zebra ex:zz ?apple), (?zebra ex:aa ?mango)", &mut g).unwrap();
        assert_eq!(q.var_names(), ["zebra", "apple", "mango"]);
        let rows = q.solve(g.store());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("zebra"), g.try_iri("ex:s"));
        assert_eq!(rows[0].get("apple"), g.try_iri("ex:zz-val"));
        assert_eq!(rows[0].get("mango"), g.try_iri("ex:aa-val"));
    }

    #[test]
    fn row_bindings_iterate() {
        let mut g = sample();
        let q = Query::parse("(?x imcl:locatedIn imcl:Office821)", &mut g).unwrap();
        let rows = q.solve(g.store());
        let pairs: Vec<_> = rows[0].bindings().collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, "x");
    }

    #[test]
    fn ask_pattern_wildcards() {
        let g = sample();
        assert!(ask_pattern(&g, Some("imcl:prn1"), None, None));
        assert!(ask_pattern(
            &g,
            None,
            Some("rdf:type"),
            Some("imcl:Scanner")
        ));
        assert!(!ask_pattern(&g, Some("imcl:ghost"), None, None));
        assert!(!ask_pattern(
            &g,
            Some("imcl:prn1"),
            Some("rdf:type"),
            Some("imcl:Scanner")
        ));
    }

    #[test]
    fn empty_query_is_an_error() {
        let mut g = Graph::new();
        assert!(Query::parse("", &mut g).is_err());
        assert!(Query::parse("   # only a comment", &mut g).is_err());
    }
}
