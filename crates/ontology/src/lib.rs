//! # mdagent-ontology — RDF store, OWL-lite reasoning, Jena-style rules
//!
//! The paper models pervasive resources and their relations in OWL and lets
//! autonomous agents reason over them with Jena rules (Figs. 5–6). No
//! ontology stack exists in the offline crate set, so this crate implements
//! the needed slice from scratch:
//!
//! * [`Term`]/[`Triple`]/[`Store`] — interned terms and an SPO/POS/OSP
//!   indexed triple store; [`Graph`] bundles store + interner.
//! * [`parser`] — Jena-style rule text and Turtle-lite triple text.
//! * [`Rule`]/[`Reasoner`] — forward chaining to fixpoint with comparison
//!   builtins (`lessThan`, …) and skolemized head-only variables.
//! * [`axiom_rules`] — RDFS + OWL-lite semantics (`subClassOf`,
//!   `TransitiveProperty`, `SymmetricProperty`, `inverseOf`, …).
//! * [`Query`] — conjunctive queries with filters (the OWL-QL stand-in).
//! * [`ClassDescription`] — builder emitting Fig. 5-style descriptions.
//!
//! # Examples
//!
//! The paper's compatibility reasoning end to end:
//!
//! ```
//! use mdagent_ontology::{Graph, Reasoner, parser::parse_rules};
//!
//! let mut g = Graph::new();
//! // Source and destination each have a printer of the same class.
//! let marker = g.str_lit("printer");
//! g.add_with_object("imcl:PrinterCls", "imcl:printerObj", marker);
//! g.add("imcl:srcPrn", "rdf:type", "imcl:PrinterCls");
//! g.add("imcl:dstPrn", "rdf:type", "imcl:PrinterCls");
//! let rules = parse_rules(
//!     "[Rule2: (?ptr imcl:printerObj 'printer'), (?srcRsc rdf:type ?ptr), (?destRsc rdf:type ?ptr) \
//!      -> (?srcRsc imcl:compatible ?destRsc)]",
//!     &mut g,
//! )?;
//! let mut reasoner = Reasoner::new();
//! reasoner.add_rules(rules);
//! reasoner.materialize(&mut g);
//! assert!(g.contains("imcl:srcPrn", "imcl:compatible", "imcl:dstPrn"));
//! # Ok::<(), mdagent_ontology::parser::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod describe;
pub mod fx;
mod graph;
pub mod parser;
mod query;
mod reason;
mod rule;
mod serializer;
mod store;
mod term;
mod triple;
pub mod vocab;

pub use describe::ClassDescription;
pub use graph::Graph;
pub use query::{ask_pattern, filter, Query, Row};
pub use reason::{axiom_rules, match_rule, unify_pattern, Reasoner, ReasonerStats, RetractStats};
pub use rule::{BuiltinAtom, BuiltinOp, Rule, RuleAtom};
pub use serializer::{write_rule, write_rules, write_triples};
pub use store::Store;
pub use term::{Interner, Literal, OrderedF64, SymbolId, Term};
pub use triple::{PatternTerm, Triple, TriplePattern, VarId};
