//! Horn rules in the style of Jena's general-purpose rule engine.

use std::fmt;

use crate::term::Term;
use crate::triple::{PatternTerm, TriplePattern, VarId};

/// Comparison builtins available in rule bodies (Jena's `lessThan` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinOp {
    /// `lessThan(a, b)` — numeric `a < b`.
    LessThan,
    /// `greaterThan(a, b)` — numeric `a > b`.
    GreaterThan,
    /// `le(a, b)` — numeric `a <= b`.
    LessOrEqual,
    /// `ge(a, b)` — numeric `a >= b`.
    GreaterOrEqual,
    /// `equal(a, b)` — term equality (numeric-aware for literals).
    Equal,
    /// `notEqual(a, b)` — negation of `equal`.
    NotEqual,
}

impl BuiltinOp {
    /// Parses a builtin name as it appears in rule text.
    pub fn from_name(name: &str) -> Option<BuiltinOp> {
        Some(match name {
            "lessThan" => BuiltinOp::LessThan,
            "greaterThan" => BuiltinOp::GreaterThan,
            "le" => BuiltinOp::LessOrEqual,
            "ge" => BuiltinOp::GreaterOrEqual,
            "equal" => BuiltinOp::Equal,
            "notEqual" => BuiltinOp::NotEqual,
            _ => return None,
        })
    }

    /// The rule-text name.
    pub fn name(self) -> &'static str {
        match self {
            BuiltinOp::LessThan => "lessThan",
            BuiltinOp::GreaterThan => "greaterThan",
            BuiltinOp::LessOrEqual => "le",
            BuiltinOp::GreaterOrEqual => "ge",
            BuiltinOp::Equal => "equal",
            BuiltinOp::NotEqual => "notEqual",
        }
    }

    /// Evaluates the builtin over two ground terms.
    ///
    /// Numeric comparisons require numeric literals; `Equal`/`NotEqual`
    /// compare numerically when both sides are numeric, structurally
    /// otherwise. Non-numeric operands make ordering builtins `false`.
    pub fn eval(self, a: Term, b: Term) -> bool {
        match self {
            BuiltinOp::LessThan
            | BuiltinOp::GreaterThan
            | BuiltinOp::LessOrEqual
            | BuiltinOp::GreaterOrEqual => {
                let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
                    return false;
                };
                match self {
                    BuiltinOp::LessThan => x < y,
                    BuiltinOp::GreaterThan => x > y,
                    BuiltinOp::LessOrEqual => x <= y,
                    // The outer arm admits only the four ordering ops.
                    _ => x >= y,
                }
            }
            BuiltinOp::Equal => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => a == b,
            },
            BuiltinOp::NotEqual => !BuiltinOp::Equal.eval(a, b),
        }
    }
}

impl fmt::Display for BuiltinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A builtin call with its (possibly variable) arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltinAtom {
    /// Which comparison to run.
    pub op: BuiltinOp,
    /// Left argument.
    pub lhs: PatternTerm,
    /// Right argument.
    pub rhs: PatternTerm,
}

impl BuiltinAtom {
    /// Evaluates under bindings; unbound variables make the atom `false`.
    pub fn eval(&self, bindings: &[Option<Term>]) -> bool {
        let resolve = |pt: PatternTerm| -> Option<Term> {
            match pt {
                PatternTerm::Ground(t) => Some(t),
                PatternTerm::Var(v) => bindings.get(v.0 as usize).copied().flatten(),
            }
        };
        match (resolve(self.lhs), resolve(self.rhs)) {
            (Some(a), Some(b)) => self.op.eval(a, b),
            _ => false,
        }
    }
}

/// One atom of a rule body: a triple pattern or a builtin call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleAtom {
    /// A triple pattern to join against the store.
    Pattern(TriplePattern),
    /// A guard evaluated once its arguments are bound.
    Builtin(BuiltinAtom),
}

/// A forward-chaining Horn rule: `premises -> conclusions`.
///
/// Variables are identified by index into the rule's own variable table
/// ([`Rule::var_names`]); [`VarId`]s are rule-local.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule name, e.g. `"Rule1"`.
    pub name: String,
    /// Body atoms, evaluated left to right.
    pub premises: Vec<RuleAtom>,
    /// Head patterns instantiated for every satisfying binding.
    pub conclusions: Vec<TriplePattern>,
    /// Variable names by [`VarId`] index (without the leading `?`).
    pub var_names: Vec<String>,
}

impl Rule {
    /// Creates a rule.
    pub fn new(
        name: impl Into<String>,
        premises: Vec<RuleAtom>,
        conclusions: Vec<TriplePattern>,
        var_names: Vec<String>,
    ) -> Rule {
        Rule {
            name: name.into(),
            premises,
            conclusions,
            var_names,
        }
    }

    /// Head variables never bound by a body pattern.
    ///
    /// The paper's Rule3 introduces `?action` only in its head; like Jena's
    /// `makeSkolem`, the engine mints a fresh IRI for each such variable per
    /// rule firing.
    pub fn skolem_vars(&self) -> Vec<VarId> {
        let mut bound = vec![false; self.var_names.len()];
        for atom in &self.premises {
            if let RuleAtom::Pattern(p) = atom {
                for v in p.vars() {
                    if let Some(slot) = bound.get_mut(v.0 as usize) {
                        *slot = true;
                    }
                }
            }
        }
        let mut skolems = Vec::new();
        for conclusion in &self.conclusions {
            for v in conclusion.vars() {
                if !bound.get(v.0 as usize).copied().unwrap_or(false) && !skolems.contains(&v) {
                    skolems.push(v);
                }
            }
        }
        skolems
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Id of a named variable, if the rule uses it.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Interner, Literal};

    #[test]
    fn builtin_numeric_comparisons() {
        let three = Term::Literal(Literal::Int(3));
        let pi = Term::Literal(Literal::double(3.25));
        assert!(BuiltinOp::LessThan.eval(three, pi));
        assert!(!BuiltinOp::GreaterThan.eval(three, pi));
        assert!(BuiltinOp::LessOrEqual.eval(three, three));
        assert!(BuiltinOp::GreaterOrEqual.eval(pi, three));
        // Mixed int/double equality is numeric.
        assert!(BuiltinOp::Equal.eval(three, Term::Literal(Literal::double(3.0))));
        assert!(BuiltinOp::NotEqual.eval(three, pi));
    }

    #[test]
    fn builtin_on_non_numeric_terms() {
        let mut i = Interner::new();
        let a = Term::Iri(i.intern("ex:a"));
        let b = Term::Iri(i.intern("ex:b"));
        assert!(!BuiltinOp::LessThan.eval(a, b));
        assert!(BuiltinOp::Equal.eval(a, a));
        assert!(BuiltinOp::NotEqual.eval(a, b));
    }

    #[test]
    fn builtin_atom_requires_bound_vars() {
        let atom = BuiltinAtom {
            op: BuiltinOp::Equal,
            lhs: PatternTerm::Var(VarId(0)),
            rhs: PatternTerm::Ground(Term::Literal(Literal::Int(1))),
        };
        assert!(!atom.eval(&[None]));
        assert!(atom.eval(&[Some(Term::Literal(Literal::Int(1)))]));
        assert!(!atom.eval(&[Some(Term::Literal(Literal::Int(2)))]));
    }

    #[test]
    fn head_only_vars_are_skolems() {
        let mut i = Interner::new();
        let p = Term::Iri(i.intern("ex:p"));
        // Conclusion uses ?y which never appears in a premise pattern.
        let rule = Rule::new(
            "skolemized",
            vec![RuleAtom::Pattern(TriplePattern::new(VarId(0), p, VarId(0)))],
            vec![TriplePattern::new(VarId(0), p, VarId(1))],
            vec!["x".into(), "y".into()],
        );
        assert_eq!(rule.skolem_vars(), [VarId(1)]);
    }

    #[test]
    fn builtin_binding_does_not_make_var_bound() {
        let mut i = Interner::new();
        let p = Term::Iri(i.intern("ex:p"));
        let rule = Rule::new(
            "builtin-only",
            vec![RuleAtom::Builtin(BuiltinAtom {
                op: BuiltinOp::Equal,
                lhs: PatternTerm::Var(VarId(0)),
                rhs: PatternTerm::Var(VarId(0)),
            })],
            vec![TriplePattern::new(VarId(0), p, VarId(0))],
            vec!["x".into()],
        );
        assert_eq!(rule.skolem_vars(), [VarId(0)]);
    }

    #[test]
    fn fully_bound_rules_have_no_skolems() {
        let mut i = Interner::new();
        let p = Term::Iri(i.intern("ex:p"));
        let rule = Rule::new(
            "safe",
            vec![RuleAtom::Pattern(TriplePattern::new(VarId(0), p, VarId(1)))],
            vec![TriplePattern::new(VarId(1), p, VarId(0))],
            vec!["x".into(), "y".into()],
        );
        assert!(rule.skolem_vars().is_empty());
    }

    #[test]
    fn var_lookup() {
        let rule = Rule::new("r", vec![], vec![], vec!["p".into(), "q".into()]);
        assert_eq!(rule.var("q"), Some(VarId(1)));
        assert_eq!(rule.var("zz"), None);
        assert_eq!(rule.var_count(), 2);
    }

    #[test]
    fn builtin_names_roundtrip() {
        for op in [
            BuiltinOp::LessThan,
            BuiltinOp::GreaterThan,
            BuiltinOp::LessOrEqual,
            BuiltinOp::GreaterOrEqual,
            BuiltinOp::Equal,
            BuiltinOp::NotEqual,
        ] {
            assert_eq!(BuiltinOp::from_name(op.name()), Some(op));
        }
        assert_eq!(BuiltinOp::from_name("bogus"), None);
    }
}
