//! Semi-naive forward-chaining rule engine with RDFS/OWL-lite axiom rules.
//!
//! This is the reproduction's stand-in for Jena's inference support: rules
//! run to a fixpoint over the [`Graph`], deriving new ground triples.
//! Head-only variables are skolemized per distinct firing (Jena
//! `makeSkolem` semantics), which is what the paper's Rule3 relies on to
//! mint its `move` action individuals.
//!
//! # Evaluation strategy
//!
//! The engine is **delta-driven (semi-naive)**: each fixpoint round only
//! considers derivations that use at least one triple produced in the
//! previous round. A predicate → rule-occurrence index maps every delta
//! triple to the body patterns it can match; the triple is unified into
//! that pattern and the *rest* of the body is solved against the full
//! store (Δ ⋈ rest-of-body). Rules untouched by the delta are never
//! re-evaluated, so a round's cost is proportional to what actually
//! changed instead of to the whole rule set times the whole store.
//!
//! Delta rows are **batched per rule occurrence**: each round groups the
//! delta by predicate and visits every `(rule, premise)` occurrence once
//! with all of its rows, so join planning, binding buffers and premise
//! splitting are paid per occurrence instead of per row. Two-premise
//! rules without builtins or skolems (the entire RDFS core plus the
//! paper's Rule1) run a specialized single-join kernel over the store's
//! sorted posting lists; when the rule additionally has one free variable
//! and one conclusion, novelty is decided by a **sorted-merge set
//! difference** between the candidate posting list and the conclusion's
//! posting list — no hashing at all for the (dominant) already-derived
//! case. Everything else falls back to the general greedy planner.
//!
//! Body solving is shared with [`crate::query::Query::solve`] and uses a
//! greedy join plan: at every step the engine picks the remaining pattern
//! with the fewest matching triples under the current bindings (an exact
//! O(1) count from the store's per-position cardinality stats), and
//! evaluates builtin guards the moment their arguments are bound.
//! Candidate probes run through the store's callback path
//! ([`Store::match_pattern_in_place`]) without allocating per match.
//!
//! Skolem IRIs are derived from the rule name and the bound-variable
//! signature (not from a mint counter), so the closure is bit-identical
//! regardless of evaluation order — the naive reference evaluator
//! ([`Reasoner::materialize_naive`], kept for differential testing and
//! benchmarks) produces exactly the same triples.
//!
//! # Retraction
//!
//! Deletion is first-class: [`Reasoner::retract`] /
//! [`Reasoner::retract_batch`] incrementally maintain the closure when
//! facts disappear, using **DRed** (delete–rederive): conservatively
//! overdelete every stored fact with a derivation through a deleted fact
//! (joining against the pre-deletion store), then rederive the survivors
//! that still have an independent proof. DRed is sound for recursive
//! rules — unlike pure counting, which miscounts cyclic support (a
//! symmetric-property pair derives itself in two steps) — see DESIGN.md
//! §12 for the trade-off. A derivation-count table keyed by derived
//! triple rides along for introspection ([`Reasoner::derivation_count`])
//! and doubles as the single-hash novelty check of the forward pass;
//! facts whose predicate appears in no rule body or head skip DRed
//! entirely (the registry's address/capability churn).

use crate::fx::{FxHashMap, FxHashSet};

use crate::graph::Graph;
use crate::rule::{BuiltinAtom, Rule, RuleAtom};
use crate::store::Store;
use crate::term::{Interner, Term};
use crate::triple::{PatternTerm, Triple, TriplePattern, VarId};
use crate::vocab::{owl, rdf, rdfs};

/// Hard cap on fixpoint rounds; prevents pathological rule sets from
/// spinning forever.
const MAX_ROUNDS: usize = 10_000;

/// Where each body pattern of each rule can be seeded from: predicate term
/// → list of `(rule index, premise index)` whose pattern has that ground
/// predicate, plus a bucket for variable-predicate patterns that any delta
/// triple can feed.
#[derive(Debug, Clone, Default)]
struct OccurrenceIndex {
    by_predicate: FxHashMap<Term, Vec<(usize, usize)>>,
    any_predicate: Vec<(usize, usize)>,
    /// Rules with no body patterns at all (builtin-only or empty bodies);
    /// they are input-independent and fire once per run.
    pattern_free: Vec<usize>,
    /// Precomputed [`Rule::skolem_vars`] per rule.
    skolem_vars: Vec<Vec<VarId>>,
    /// Ground predicates appearing in some rule head. A fact whose
    /// predicate is absent here (and that matches no body occurrence) can
    /// neither be derived nor feed a derivation, so retracting it needs
    /// no DRed pass at all.
    conclusion_predicates: FxHashSet<Term>,
    /// Whether any rule head has a variable in predicate position, which
    /// defeats the [`OccurrenceIndex::conclusion_predicates`] filter.
    any_conclusion_predicate: bool,
}

fn build_occurrences(rules: &[Rule]) -> OccurrenceIndex {
    let mut occ = OccurrenceIndex::default();
    for (ri, rule) in rules.iter().enumerate() {
        let mut has_pattern = false;
        for (ai, atom) in rule.premises.iter().enumerate() {
            if let RuleAtom::Pattern(p) = atom {
                has_pattern = true;
                match p.p {
                    PatternTerm::Ground(pred) => {
                        occ.by_predicate.entry(pred).or_default().push((ri, ai));
                    }
                    PatternTerm::Var(_) => occ.any_predicate.push((ri, ai)),
                }
            }
        }
        if !has_pattern {
            occ.pattern_free.push(ri);
        }
        for conclusion in &rule.conclusions {
            match conclusion.p {
                PatternTerm::Ground(pred) => {
                    occ.conclusion_predicates.insert(pred);
                }
                PatternTerm::Var(_) => occ.any_conclusion_predicate = true,
            }
        }
        occ.skolem_vars.push(rule.skolem_vars());
    }
    occ
}

/// Profiling counters from the most recent semi-naive fixpoint run.
///
/// Collected by [`Reasoner::materialize`] / (see also
/// [`Reasoner::materialize_incremental`]) and read back through
/// [`Reasoner::last_stats`]; telemetry spans attach these to AA decision
/// spans so reasoning cost is visible per decision.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReasonerStats {
    /// Fixpoint rounds executed, including the final round that derived
    /// nothing and closed the fixpoint.
    pub rounds: usize,
    /// Delta size consumed at the start of each round, in round order.
    pub delta_sizes: Vec<usize>,
    /// Distinct rules evaluated, summed over rounds (a rule touched by
    /// the round's delta counts once per round).
    pub rules_evaluated: usize,
    /// Distinct rules the occurrence index proved untouched by the
    /// round's delta, summed over rounds — work the semi-naive engine
    /// skipped relative to naive evaluation.
    pub rules_skipped: usize,
    /// Δ-seeded body joins attempted across all rounds (one per
    /// delta-triple/premise-occurrence hit).
    pub seed_evaluations: usize,
    /// New triples derived over the whole run.
    pub facts_derived: usize,
}

impl ReasonerStats {
    /// Largest single-round delta, or zero for an empty run.
    pub fn max_delta(&self) -> usize {
        self.delta_sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Profiling counters from the most recent [`Reasoner::retract_batch`]
/// run, read back through [`Reasoner::last_retract_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetractStats {
    /// Facts the caller asked to retract.
    pub requested: usize,
    /// Requested facts that were present and lost their base (asserted)
    /// status.
    pub retracted_base: usize,
    /// Requested facts removed without a DRed pass because their
    /// predicate appears in no rule body or head.
    pub fast_exits: usize,
    /// Derived facts conservatively deleted by the overdelete phase.
    pub overdeleted: usize,
    /// Overdeleted or retracted facts restored because an independent
    /// derivation survives.
    pub rederived: usize,
    /// Overdelete propagation waves.
    pub waves: usize,
    /// Net triples removed from the store.
    pub removed: usize,
}

/// A forward-chaining reasoner over a set of [`Rule`]s.
///
/// # Examples
///
/// Run the paper's transitive `locatedIn` rule:
///
/// ```
/// use mdagent_ontology::{Graph, Reasoner, parser::parse_rules};
///
/// let mut g = Graph::new();
/// g.add("imcl:prn", "imcl:locatedIn", "imcl:Office821");
/// g.add("imcl:Office821", "imcl:locatedIn", "imcl:Building8");
/// let rules = parse_rules(
///     "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]",
///     &mut g,
/// )?;
/// let mut reasoner = Reasoner::new();
/// reasoner.add_rules(rules);
/// let derived = reasoner.materialize(&mut g);
/// assert_eq!(derived, 1);
/// assert!(g.contains("imcl:prn", "imcl:locatedIn", "imcl:Building8"));
/// # Ok::<(), mdagent_ontology::parser::ParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Reasoner {
    rules: Vec<Rule>,
    /// Memo of skolem terms per (rule index, bound-variable signature).
    /// Purely a cache: names are content-derived, so a cold memo re-mints
    /// the identical IRIs.
    skolems: SkolemMemo,
    /// Lazily (re)built when the rule set changes.
    occurrences: Option<OccurrenceIndex>,
    /// Counters from the most recent semi-naive run.
    last_stats: ReasonerStats,
    /// Known-derivation markers per derived triple: `counts[t] >= 1`
    /// means at least one firing concluding `t` has been discovered.
    /// The value is a discovery count, *not* an exact support
    /// multiplicity: semi-naive evaluation may discover one firing
    /// through several delta premises, and the merge-join fast path
    /// skips discoveries whose conclusion is already stored. Retraction
    /// therefore never trusts the number — it reruns the rules (DRed).
    counts: FxHashMap<Triple, u32>,
    /// Facts this reasoner saw as *inputs* (seeds of [`Reasoner::materialize`]
    /// or deltas of [`Reasoner::materialize_incremental`]) rather than
    /// deriving them. Base facts survive overdeletion — only an explicit
    /// [`Reasoner::retract`] removes their asserted status.
    base: FxHashSet<Triple>,
    /// Counters from the most recent retraction.
    last_retract: RetractStats,
}

/// Memo of skolem terms per (rule index, bound-variable signature).
type SkolemMemo = FxHashMap<(usize, Vec<Term>), Vec<Term>>;

impl Reasoner {
    /// Creates a reasoner with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a reasoner preloaded with the RDFS/OWL-lite axiom rules
    /// (see [`axiom_rules`]).
    pub fn with_axioms(graph: &mut Graph) -> Self {
        let mut r = Reasoner::new();
        r.add_rules(axiom_rules(graph));
        r
    }

    /// Adds one rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
        self.occurrences = None;
    }

    /// Adds many rules.
    pub fn add_rules(&mut self, rules: impl IntoIterator<Item = Rule>) {
        self.rules.extend(rules);
        self.occurrences = None;
    }

    /// The current rule set.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Profiling counters from the most recent [`Reasoner::materialize`]
    /// or [`Reasoner::materialize_incremental`] run. The naive reference
    /// evaluator does not update these.
    pub fn last_stats(&self) -> &ReasonerStats {
        &self.last_stats
    }

    /// Profiling counters from the most recent [`Reasoner::retract`] or
    /// [`Reasoner::retract_batch`] run.
    pub fn last_retract_stats(&self) -> &RetractStats {
        &self.last_retract
    }

    /// Number of known derivations of `t` (zero if never derived). An
    /// upper-bound discovery count — see the field docs on the count
    /// table for why it is not an exact support multiplicity.
    pub fn derivation_count(&self, t: &Triple) -> u32 {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Whether `t` was asserted as an input (vs. only ever derived).
    pub fn is_base(&self, t: &Triple) -> bool {
        self.base.contains(t)
    }

    /// Clears the per-graph state: the skolem memo, the derivation-count
    /// table and the base-fact set. Required before reusing one reasoner
    /// against a *different* graph: memoized terms are relative to the
    /// interner they were minted in (and skolem names are content-derived
    /// anyway, so a cold memo re-mints identical IRIs), and the
    /// derivation bookkeeping describes the graph it was built against.
    pub fn reset_skolem_memo(&mut self) {
        self.skolems.clear();
        self.counts.clear();
        self.base.clear();
    }

    /// Runs all rules to fixpoint, inserting derivations into `graph`.
    /// Returns the number of new triples added.
    ///
    /// Every triple present at call time is treated as a *base* (input)
    /// fact for later [`Reasoner::retract`] calls; derivation bookkeeping
    /// restarts from scratch.
    pub fn materialize(&mut self, graph: &mut Graph) -> usize {
        self.counts.clear();
        self.base.clear();
        let seed: Vec<Triple> = graph.store().iter().copied().collect();
        self.base.extend(seed.iter().copied());
        self.run_seminaive(graph, seed)
    }

    /// Extends an already-materialized graph after `delta` is asserted.
    ///
    /// Every delta triple is inserted (if absent), marked as a base fact,
    /// and used to seed the delta-driven fixpoint, so only consequences
    /// of the delta are recomputed. The rest of the store is assumed
    /// closed under the current rules — exactly the state
    /// [`Reasoner::materialize`] leaves behind. Returns the number of
    /// *derived* triples added (delta insertions are not counted).
    pub fn materialize_incremental(
        &mut self,
        graph: &mut Graph,
        delta: impl IntoIterator<Item = Triple>,
    ) -> usize {
        let mut seed = Vec::new();
        for t in delta {
            graph.add_triple(t);
            self.base.insert(t);
            seed.push(t);
        }
        self.run_seminaive(graph, seed)
    }

    fn run_seminaive(&mut self, graph: &mut Graph, mut delta: Vec<Triple>) -> usize {
        let occ = self
            .occurrences
            .take()
            .unwrap_or_else(|| build_occurrences(&self.rules));
        let mut stats = ReasonerStats::default();
        let mut touched = vec![false; self.rules.len()];
        let mut added_total = 0usize;
        let mut fresh: Vec<Triple> = Vec::new();
        // Per-round grouping of delta rows by predicate, in first-seen
        // order, so every (rule, premise) occurrence is planned once and
        // then fed its whole batch of seed rows.
        let mut by_pred: FxHashMap<Term, Vec<Triple>> = FxHashMap::default();
        let mut pred_order: Vec<Term> = Vec::new();
        for round in 0..MAX_ROUNDS {
            stats.rounds += 1;
            stats.delta_sizes.push(delta.len());
            touched.iter_mut().for_each(|t| *t = false);
            fresh.clear();
            {
                let (interner, store) = graph.split_mut_full();
                if round == 0 {
                    for &ri in &occ.pattern_free {
                        touched[ri] = true;
                        stats.seed_evaluations += 1;
                        fire_batch(
                            &self.rules,
                            &mut self.skolems,
                            &mut self.counts,
                            interner,
                            store,
                            ri,
                            &occ.skolem_vars[ri],
                            None,
                            &[],
                            &mut fresh,
                        );
                    }
                }
                pred_order.clear();
                for rows in by_pred.values_mut() {
                    rows.clear();
                }
                for &t in &delta {
                    if occ.by_predicate.contains_key(&t.p) {
                        let rows = by_pred.entry(t.p).or_default();
                        if rows.is_empty() {
                            pred_order.push(t.p);
                        }
                        rows.push(t);
                    }
                }
                for &pred in &pred_order {
                    let (Some(rows), Some(hits)) =
                        (by_pred.get(&pred), occ.by_predicate.get(&pred))
                    else {
                        continue;
                    };
                    for &(ri, ai) in hits {
                        touched[ri] = true;
                        stats.seed_evaluations += rows.len();
                        fire_batch(
                            &self.rules,
                            &mut self.skolems,
                            &mut self.counts,
                            interner,
                            store,
                            ri,
                            &occ.skolem_vars[ri],
                            Some(ai),
                            rows,
                            &mut fresh,
                        );
                    }
                }
                if !delta.is_empty() {
                    for &(ri, ai) in &occ.any_predicate {
                        touched[ri] = true;
                        stats.seed_evaluations += delta.len();
                        fire_batch(
                            &self.rules,
                            &mut self.skolems,
                            &mut self.counts,
                            interner,
                            store,
                            ri,
                            &occ.skolem_vars[ri],
                            Some(ai),
                            &delta,
                            &mut fresh,
                        );
                    }
                }
            }
            let evaluated = touched.iter().filter(|&&t| t).count();
            stats.rules_evaluated += evaluated;
            stats.rules_skipped += self.rules.len() - evaluated;
            if fresh.is_empty() {
                break;
            }
            // Fresh conclusions were inserted into the store eagerly by
            // `fire_batch`; they become the next round's delta here.
            added_total += fresh.len();
            std::mem::swap(&mut delta, &mut fresh);
        }
        self.occurrences = Some(occ);
        stats.facts_derived = added_total;
        self.last_stats = stats;
        added_total
    }

    /// Retracts a single base fact and incrementally repairs the closure.
    /// Equivalent to `retract_batch(graph, [t])`; see there.
    pub fn retract(&mut self, graph: &mut Graph, t: Triple) -> usize {
        self.retract_batch(graph, [t])
    }

    /// Retracts a batch of base facts and incrementally repairs the
    /// closure via DRed (delete–rederive). Returns the net number of
    /// triples removed from the store.
    ///
    /// The graph must be closed under this reasoner's rules *by this
    /// reasoner instance* (so its base/derived bookkeeping matches the
    /// store); that is the state [`Reasoner::materialize`] /
    /// [`Reasoner::materialize_incremental`] leave behind. The result is
    /// set-identical to materializing from scratch without the retracted
    /// facts: retracting a fact that remains derivable from the surviving
    /// base facts only clears its asserted status — the triple itself is
    /// rederived and stays.
    pub fn retract_batch(
        &mut self,
        graph: &mut Graph,
        facts: impl IntoIterator<Item = Triple>,
    ) -> usize {
        let occ = self
            .occurrences
            .take()
            .unwrap_or_else(|| build_occurrences(&self.rules));
        let mut stats = RetractStats::default();
        // Phase 0: clear base marks; peel off facts whose predicate no
        // rule reads or writes — removing those cannot change any other
        // fact, so they skip DRed entirely.
        let mut seeds: Vec<Triple> = Vec::new();
        // Overdeleted facts, kept in a `Store` so the overdelete fast
        // path can run the same sorted-merge difference the forward pass
        // uses (candidates minus already-overdeleted).
        let mut od = Store::new();
        for t in facts {
            stats.requested += 1;
            let was_base = self.base.remove(&t);
            if !graph.store().contains(&t) {
                continue;
            }
            if was_base {
                stats.retracted_base += 1;
            }
            let seeds_rules = occ.by_predicate.contains_key(&t.p) || !occ.any_predicate.is_empty();
            let derivable_pred =
                occ.any_conclusion_predicate || occ.conclusion_predicates.contains(&t.p);
            if !seeds_rules && !derivable_pred {
                graph.store_mut().remove(&t);
                self.counts.remove(&t);
                stats.fast_exits += 1;
                continue;
            }
            if od.insert(t) {
                seeds.push(t);
            }
        }
        // Phase 1: overdelete. Conservatively collect every stored,
        // non-base fact with a derivation through a deleted fact. Bodies
        // join against the *pre-deletion* store (nothing is removed until
        // phase 2) so no dependency is missed even when several premises
        // of one firing are deleted together.
        let mut over_list: Vec<Triple> = Vec::new();
        let mut wave: Vec<Triple> = seeds.clone();
        let mut next: Vec<Triple> = Vec::new();
        let mut by_pred: FxHashMap<Term, Vec<Triple>> = FxHashMap::default();
        let mut pred_order: Vec<Term> = Vec::new();
        while !wave.is_empty() {
            stats.waves += 1;
            next.clear();
            {
                let (interner, store) = graph.split_mut();
                pred_order.clear();
                for rows in by_pred.values_mut() {
                    rows.clear();
                }
                for &t in &wave {
                    if occ.by_predicate.contains_key(&t.p) {
                        let rows = by_pred.entry(t.p).or_default();
                        if rows.is_empty() {
                            pred_order.push(t.p);
                        }
                        rows.push(t);
                    }
                }
                for &pred in &pred_order {
                    let (Some(rows), Some(hits)) =
                        (by_pred.get(&pred), occ.by_predicate.get(&pred))
                    else {
                        continue;
                    };
                    for &(ri, ai) in hits {
                        overdelete_batch(
                            &self.rules,
                            &mut self.skolems,
                            interner,
                            store,
                            ri,
                            &occ.skolem_vars[ri],
                            ai,
                            rows,
                            &self.base,
                            &mut od,
                            &mut next,
                        );
                    }
                }
                for &(ri, ai) in &occ.any_predicate {
                    overdelete_batch(
                        &self.rules,
                        &mut self.skolems,
                        interner,
                        store,
                        ri,
                        &occ.skolem_vars[ri],
                        ai,
                        &wave,
                        &self.base,
                        &mut od,
                        &mut next,
                    );
                }
            }
            over_list.extend(next.iter().copied());
            std::mem::swap(&mut wave, &mut next);
        }
        stats.overdeleted = over_list.len();
        // Phase 2: physically remove the retracted facts and everything
        // overdeleted, in one grouped sweep.
        let candidates: Vec<Triple> = seeds.iter().chain(over_list.iter()).copied().collect();
        let mut removed = graph.store_mut().remove_batch(&candidates);
        for t in &candidates {
            self.counts.remove(t);
        }
        // Phase 3: rederive. A removed fact survives iff some rule still
        // proves it from the current store; every consequence of a
        // rederived fact is itself a candidate (its old derivation went
        // through deleted facts too), so closing over the candidate list
        // is a full fixpoint — no forward pass needed afterwards.
        let mut proven = vec![false; candidates.len()];
        loop {
            let mut progress = false;
            for (i, &c) in candidates.iter().enumerate() {
                if proven[i] {
                    continue;
                }
                let ok = {
                    let (interner, store) = graph.split_mut();
                    derivable(&self.rules, &mut self.skolems, interner, store, &occ, c)
                };
                if ok {
                    graph.add_triple(c);
                    self.counts.insert(c, 1);
                    proven[i] = true;
                    progress = true;
                    stats.rederived += 1;
                    removed = removed.saturating_sub(1);
                }
            }
            if !progress {
                break;
            }
        }
        stats.removed = removed + stats.fast_exits;
        let out = stats.removed;
        self.occurrences = Some(occ);
        self.last_retract = stats;
        out
    }

    /// Reference implementation: the naive evaluate-everything-per-round
    /// fixpoint, joining premises in textual order with `Vec`-scan
    /// deduplication. Kept verbatim from the pre-semi-naive engine for
    /// differential tests and benchmark baselines; derives exactly the
    /// same closure as [`Reasoner::materialize`] (skolem names are
    /// content-derived in both).
    pub fn materialize_naive(&mut self, graph: &mut Graph) -> usize {
        let mut added_total = 0usize;
        for _round in 0..MAX_ROUNDS {
            let mut new_triples: Vec<Triple> = Vec::new();
            for rule_idx in 0..self.rules.len() {
                let bindings = match_rule_textual(graph.store(), &self.rules[rule_idx]);
                let skolem_vars = self.rules[rule_idx].skolem_vars();
                for mut binding in bindings {
                    if !skolem_vars.is_empty() {
                        apply_skolems(
                            &mut self.skolems,
                            rule_idx,
                            &self.rules[rule_idx],
                            graph.interner_mut(),
                            &skolem_vars,
                            &mut binding,
                        );
                    }
                    for conclusion in &self.rules[rule_idx].conclusions {
                        if let Some(t) = conclusion.instantiate(&binding) {
                            if !graph.store().contains(&t) && !new_triples.contains(&t) {
                                new_triples.push(t);
                            }
                        }
                    }
                }
            }
            if new_triples.is_empty() {
                break;
            }
            for t in new_triples {
                if graph.add_triple(t) {
                    added_total += 1;
                }
            }
        }
        added_total
    }
}

/// Per-candidate action at one triple position of a single-join kernel,
/// computed once per batch: positions covered by the probe mask (ground
/// terms and seed-bound variables) need nothing, free variables are
/// written, and repeated free occurrences are consistency-checked. A
/// `Write` for a variable always precedes any `Check` of it within one
/// candidate (first occurrence wins), so no restore step is needed.
#[derive(Debug, Clone, Copy)]
enum CandOp {
    Skip,
    Write(u32),
    Check(u32),
}

/// Compiled form of a two-premise rule occurrence: the seed premise plus
/// exactly one remaining pattern, no builtins, no skolems. Built once per
/// (occurrence, round) batch.
#[derive(Debug)]
struct SingleJoinPlan {
    seed: TriplePattern,
    rem: TriplePattern,
    ops: [CandOp; 3],
    /// `(free position in rem, free position in the conclusion)` when the
    /// sorted-merge difference applies: one free variable occurring once
    /// in the remaining pattern and once in the rule's single conclusion,
    /// all other conclusion variables bound by the seed.
    merge: Option<(usize, usize)>,
}

fn plan_single_join(rule: &Rule, seed: &TriplePattern, rem: TriplePattern) -> SingleJoinPlan {
    let mut seed_vars: Vec<u32> = Vec::new();
    for pt in [seed.s, seed.p, seed.o] {
        if let PatternTerm::Var(v) = pt {
            if !seed_vars.contains(&v.0) {
                seed_vars.push(v.0);
            }
        }
    }
    let mut ops = [CandOp::Skip; 3];
    let mut free: Vec<u32> = Vec::new();
    let mut free_pos = usize::MAX;
    let mut checks = 0usize;
    for (i, pt) in [rem.s, rem.p, rem.o].into_iter().enumerate() {
        if let PatternTerm::Var(v) = pt {
            if seed_vars.contains(&v.0) {
                continue;
            }
            if free.contains(&v.0) {
                ops[i] = CandOp::Check(v.0);
                checks += 1;
            } else {
                free.push(v.0);
                ops[i] = CandOp::Write(v.0);
                free_pos = i;
            }
        }
    }
    let mut merge = None;
    if free.len() == 1 && checks == 0 && rule.conclusions.len() == 1 {
        let v = free[0];
        let c = &rule.conclusions[0];
        let mut concl_free: Vec<usize> = Vec::new();
        let mut bindable = true;
        for (i, pt) in [c.s, c.p, c.o].into_iter().enumerate() {
            if let PatternTerm::Var(cv) = pt {
                if cv.0 == v {
                    concl_free.push(i);
                } else if !seed_vars.contains(&cv.0) {
                    bindable = false;
                }
            }
        }
        if bindable && concl_free.len() == 1 {
            merge = Some((free_pos, concl_free[0]));
        }
    }
    SingleJoinPlan {
        seed: *seed,
        rem,
        ops,
        merge,
    }
}

/// Instantiates every conclusion of one satisfied rule body into `out`,
/// minting skolem terms when the rule has head-only variables.
fn conclude_into(
    rule_idx: usize,
    rule: &Rule,
    skolem_vars: &[VarId],
    memo: &mut SkolemMemo,
    interner: &mut Interner,
    out: &mut Vec<Triple>,
    b: &[Option<Term>],
) {
    if skolem_vars.is_empty() {
        for conclusion in &rule.conclusions {
            if let Some(t) = conclusion.instantiate(b) {
                out.push(t);
            }
        }
    } else {
        let mut full = b.to_vec();
        apply_skolems(memo, rule_idx, rule, interner, skolem_vars, &mut full);
        for conclusion in &rule.conclusions {
            if let Some(t) = conclusion.instantiate(&full) {
                out.push(t);
            }
        }
    }
}

fn resolve_pt(pt: PatternTerm, b: &[Option<Term>]) -> Option<Term> {
    match pt {
        PatternTerm::Ground(t) => Some(t),
        PatternTerm::Var(v) => b.get(v.0 as usize).copied().flatten(),
    }
}

/// The posting list matching a mask with exactly one free position;
/// `None` when the other two positions are not both bound.
// mdlint::hot
fn posting_for<'a>(
    store: &'a Store,
    free_pos: usize,
    mask: &[Option<Term>; 3],
) -> Option<&'a [Term]> {
    match free_pos {
        0 => match (mask[1], mask[2]) {
            (Some(p), Some(o)) => Some(store.subjects_po(p, o)),
            _ => None,
        },
        1 => match (mask[0], mask[2]) {
            (Some(s), Some(o)) => Some(store.predicates_os(o, s)),
            _ => None,
        },
        _ => match (mask[0], mask[1]) {
            (Some(s), Some(p)) => Some(store.objects_sp(s, p)),
            _ => None,
        },
    }
}

/// Calls `f` for every element of `cs` absent from `es`; both slices are
/// sorted by [`Term`]'s total order. Runs a linear two-pointer merge when
/// the lists are comparably sized and switches to per-candidate binary
/// search (galloping) when `es` dwarfs `cs` — overdelete waves hit
/// exactly that shape (a few candidates per seed row against one long
/// overdeleted posting, re-walked once per row).
#[inline]
// mdlint::hot
fn for_each_absent(cs: &[Term], es: &[Term], mut f: impl FnMut(Term)) {
    if es.len() > 16 && es.len() / 4 > cs.len() {
        for &v in cs {
            if es.binary_search(&v).is_err() {
                f(v);
            }
        }
        return;
    }
    let mut j = 0usize;
    for &v in cs {
        while j < es.len() && es[j] < v {
            j += 1;
        }
        if j < es.len() && es[j] == v {
            continue;
        }
        f(v);
    }
}

/// Calls `f` for every element of `cs` that is present in `ins` and
/// absent from `outs`; all three slices sorted by [`Term`]'s total order.
/// The overdelete merge path uses this to fuse the "is the conclusion
/// stored" filter into the sorted walk: `ins` is the store's posting for
/// the conclusion mask, so survivors never hash-probe the full (large)
/// triple set.
#[inline]
// mdlint::hot
fn for_each_present_absent(cs: &[Term], ins: &[Term], outs: &[Term], mut f: impl FnMut(Term)) {
    let (mut ji, mut jo) = (0usize, 0usize);
    for &v in cs {
        while ji < ins.len() && ins[ji] < v {
            ji += 1;
        }
        if ji == ins.len() {
            return;
        }
        if ins[ji] != v {
            continue;
        }
        while jo < outs.len() && outs[jo] < v {
            jo += 1;
        }
        if jo < outs.len() && outs[jo] == v {
            continue;
        }
        f(v);
    }
}

/// Rebuilds a conclusion triple from its two bound positions plus the
/// free-position value `v`.
#[inline]
fn place_free(cmask: &[Option<Term>; 3], concl_free: usize, v: Term) -> Option<Triple> {
    match concl_free {
        0 => match (cmask[1], cmask[2]) {
            (Some(p), Some(o)) => Some(Triple::new(v, p, o)),
            _ => None,
        },
        1 => match (cmask[0], cmask[2]) {
            (Some(s), Some(o)) => Some(Triple::new(s, v, o)),
            _ => None,
        },
        _ => match (cmask[0], cmask[1]) {
            (Some(s), Some(p)) => Some(Triple::new(s, p, v)),
            _ => None,
        },
    }
}

/// Evaluates one rule occurrence against a whole batch of delta rows,
/// inserting novel conclusions into the store *eagerly* — after every
/// seed row — and appending them to `fresh` (the next round's delta).
///
/// Eager insertion is the second half of the merge-join optimization:
/// because each row's conclusions land in the store before the next row
/// runs, the sorted-merge difference filters rediscoveries across rows at
/// a slice comparison each, and the per-discovery hash probe the old
/// dedup set paid is gone. The round structure is unchanged — eagerly
/// inserted facts still seed joins only through the next round's delta —
/// so evaluation stays semi-naive; some firings are merely *filtered*
/// (not re-derived) a round earlier. The closure is the same fixpoint
/// either way, and skolem names are content-derived, so the result is
/// bit-identical to the insert-at-round-end schedule.
///
/// `seed_premise == None` means a pattern-free rule evaluated once (rows
/// are ignored). Dispatches to the single-join kernel — and within it the
/// sorted-merge difference — when the occurrence shape allows, and to the
/// general greedy planner otherwise.
#[allow(clippy::too_many_arguments)]
fn fire_batch(
    rules: &[Rule],
    memo: &mut SkolemMemo,
    counts: &mut FxHashMap<Triple, u32>,
    interner: &mut Interner,
    store: &mut Store,
    rule_idx: usize,
    skolem_vars: &[VarId],
    seed_premise: Option<usize>,
    rows: &[Triple],
    fresh: &mut Vec<Triple>,
) {
    let rule = &rules[rule_idx];
    let mut binding: Vec<Option<Term>> = vec![None; rule.var_count()];
    let mut patterns: Vec<TriplePattern> = Vec::new();
    let mut builtins: Vec<BuiltinAtom> = Vec::new();
    let mut seed_pat: Option<TriplePattern> = None;
    for (ai, atom) in rule.premises.iter().enumerate() {
        match atom {
            RuleAtom::Pattern(p) => {
                if seed_premise == Some(ai) {
                    seed_pat = Some(*p);
                } else {
                    patterns.push(*p);
                }
            }
            RuleAtom::Builtin(b) => builtins.push(*b),
        }
    }
    // Conclusions of the current row, staged while the row's joins hold
    // shared borrows of the store, then flushed into it.
    let mut out: Vec<Triple> = Vec::new();
    let Some(seed_pat) = seed_pat else {
        // Pattern-free rule: solve the whole body once.
        solve_rest(
            store,
            &mut patterns,
            &mut builtins,
            &mut binding,
            &mut |b| {
                conclude_into(rule_idx, rule, skolem_vars, memo, interner, &mut out, b);
            },
        );
        for t in out.drain(..) {
            if store.insert(t) {
                counts.insert(t, 1);
                fresh.push(t);
            }
        }
        return;
    };
    if patterns.len() == 1 && builtins.is_empty() && skolem_vars.is_empty() {
        let plan = plan_single_join(rule, &seed_pat, patterns[0]);
        for &row in rows {
            binding.iter_mut().for_each(|s| *s = None);
            if !unify_pattern(&plan.seed, row, &mut binding) {
                continue;
            }
            let mask = [
                resolve_pt(plan.rem.s, &binding),
                resolve_pt(plan.rem.p, &binding),
                resolve_pt(plan.rem.o, &binding),
            ];
            let mut merged = false;
            if let Some((free_pos, concl_free)) = plan.merge {
                let c = &rule.conclusions[0];
                let cmask = [
                    resolve_pt(c.s, &binding),
                    resolve_pt(c.p, &binding),
                    resolve_pt(c.o, &binding),
                ];
                let cs = posting_for(store, free_pos, &mask);
                let es = posting_for(store, concl_free, &cmask);
                if let (Some(cs), Some(es)) = (cs, es) {
                    // Sorted-merge difference: candidates whose conclusion
                    // is already stored — including conclusions of earlier
                    // rows in this batch — are skipped without hashing.
                    for_each_absent(cs, es, |v| {
                        if let Some(t) = place_free(&cmask, concl_free, v) {
                            out.push(t);
                        }
                    });
                    merged = true;
                }
            }
            if !merged {
                store.for_each_match(mask[0], mask[1], mask[2], |cand| {
                    let vals = [cand.s, cand.p, cand.o];
                    for (i, &v) in vals.iter().enumerate() {
                        match plan.ops[i] {
                            CandOp::Skip => {}
                            CandOp::Write(slot) => binding[slot as usize] = Some(v),
                            CandOp::Check(slot) => {
                                if binding[slot as usize] != Some(v) {
                                    return;
                                }
                            }
                        }
                    }
                    for conclusion in &rule.conclusions {
                        if let Some(t) = conclusion.instantiate(&binding) {
                            out.push(t);
                        }
                    }
                });
            }
            for t in out.drain(..) {
                if store.insert(t) {
                    counts.insert(t, 1);
                    fresh.push(t);
                }
            }
        }
        return;
    }
    for &row in rows {
        binding.iter_mut().for_each(|s| *s = None);
        if !unify_pattern(&seed_pat, row, &mut binding) {
            continue;
        }
        solve_rest(
            store,
            &mut patterns,
            &mut builtins,
            &mut binding,
            &mut |b| {
                conclude_into(rule_idx, rule, skolem_vars, memo, interner, &mut out, b);
            },
        );
        for t in out.drain(..) {
            if store.insert(t) {
                counts.insert(t, 1);
                fresh.push(t);
            }
        }
    }
}

/// Overdelete step of DRed: evaluates one rule occurrence seeded by a
/// batch of just-deleted rows against the *pre-deletion* store, marking
/// every stored, non-base conclusion as overdeleted. Mirrors
/// [`fire_batch`]'s kernel dispatch, with the merge difference running
/// against the overdeleted set instead of the store.
#[allow(clippy::too_many_arguments)]
fn overdelete_batch(
    rules: &[Rule],
    memo: &mut SkolemMemo,
    interner: &mut Interner,
    store: &Store,
    rule_idx: usize,
    skolem_vars: &[VarId],
    seed_premise: usize,
    rows: &[Triple],
    base: &FxHashSet<Triple>,
    od: &mut Store,
    next: &mut Vec<Triple>,
) {
    let rule = &rules[rule_idx];
    let mut binding: Vec<Option<Term>> = vec![None; rule.var_count()];
    let mut patterns: Vec<TriplePattern> = Vec::new();
    let mut builtins: Vec<BuiltinAtom> = Vec::new();
    let mut seed_pat: Option<TriplePattern> = None;
    for (ai, atom) in rule.premises.iter().enumerate() {
        match atom {
            RuleAtom::Pattern(p) => {
                if seed_premise == ai {
                    seed_pat = Some(*p);
                } else {
                    patterns.push(*p);
                }
            }
            RuleAtom::Builtin(b) => builtins.push(*b),
        }
    }
    let Some(seed_pat) = seed_pat else {
        return;
    };
    // On a closed graph every enumerated conclusion is already stored, so
    // the common case is "seen before": filter against the overdeleted
    // set by sorted merge, hash only the survivors.
    if patterns.len() == 1 && builtins.is_empty() && skolem_vars.is_empty() {
        let plan = plan_single_join(rule, &seed_pat, patterns[0]);
        let mut survivors: Vec<Triple> = Vec::new();
        // Conclusion masks proven fully overdeleted stay that way (`od`
        // only grows within a wave), so one cached mask short-circuits
        // the long runs of rows that share a conclusion shape.
        let mut last_dominated: Option<[Option<Term>; 3]> = None;
        for &row in rows {
            binding.iter_mut().for_each(|s| *s = None);
            if !unify_pattern(&plan.seed, row, &mut binding) {
                continue;
            }
            let mask = [
                resolve_pt(plan.rem.s, &binding),
                resolve_pt(plan.rem.p, &binding),
                resolve_pt(plan.rem.o, &binding),
            ];
            let mut merged = false;
            let mut survivors_stored = false;
            if let Some((free_pos, concl_free)) = plan.merge {
                let cs = posting_for(store, free_pos, &mask);
                if let Some(cs) = cs {
                    if cs.is_empty() {
                        // The remaining premise has no matches under this
                        // row's bindings; nothing can fire.
                        continue;
                    }
                    let c = &rule.conclusions[0];
                    let cmask = [
                        resolve_pt(c.s, &binding),
                        resolve_pt(c.p, &binding),
                        resolve_pt(c.o, &binding),
                    ];
                    if last_dominated.as_ref() == Some(&cmask) {
                        continue;
                    }
                    let es = posting_for(od, concl_free, &cmask);
                    let stored = posting_for(store, concl_free, &cmask);
                    if let (Some(es), Some(stored)) = (es, stored) {
                        // Dominance skip: `od` only ever holds stored
                        // facts, so its posting is a subset of the store's
                        // for the same mask — equal lengths mean every
                        // stored conclusion this row could reach is
                        // already overdeleted, and no candidate can
                        // survive the store/base filter below. Late
                        // overdelete waves are usually fully dominated,
                        // making them O(rows) instead of O(candidates).
                        if stored.len() == es.len() {
                            last_dominated = Some(cmask);
                            continue;
                        }
                        for_each_present_absent(cs, stored, es, |v| {
                            if let Some(t) = place_free(&cmask, concl_free, v) {
                                survivors.push(t);
                            }
                        });
                        merged = true;
                        survivors_stored = true;
                    }
                }
            }
            if !merged {
                store.for_each_match(mask[0], mask[1], mask[2], |cand| {
                    let vals = [cand.s, cand.p, cand.o];
                    for (i, &v) in vals.iter().enumerate() {
                        match plan.ops[i] {
                            CandOp::Skip => {}
                            CandOp::Write(slot) => binding[slot as usize] = Some(v),
                            CandOp::Check(slot) => {
                                if binding[slot as usize] != Some(v) {
                                    return;
                                }
                            }
                        }
                    }
                    for conclusion in &rule.conclusions {
                        if let Some(t) = conclusion.instantiate(&binding) {
                            survivors.push(t);
                        }
                    }
                });
            }
            for &t in &survivors {
                if (survivors_stored || store.contains(&t)) && !base.contains(&t) && od.insert(t) {
                    next.push(t);
                }
            }
            survivors.clear();
        }
        return;
    }
    for &row in rows {
        binding.iter_mut().for_each(|s| *s = None);
        if !unify_pattern(&seed_pat, row, &mut binding) {
            continue;
        }
        let mut survivors: Vec<Triple> = Vec::new();
        solve_rest(
            store,
            &mut patterns,
            &mut builtins,
            &mut binding,
            &mut |b| {
                if skolem_vars.is_empty() {
                    for conclusion in &rule.conclusions {
                        if let Some(t) = conclusion.instantiate(b) {
                            survivors.push(t);
                        }
                    }
                } else {
                    let mut full = b.to_vec();
                    apply_skolems(memo, rule_idx, rule, interner, skolem_vars, &mut full);
                    for conclusion in &rule.conclusions {
                        if let Some(t) = conclusion.instantiate(&full) {
                            survivors.push(t);
                        }
                    }
                }
            },
        );
        for &t in &survivors {
            if store.contains(&t) && !base.contains(&t) && od.insert(t) {
                next.push(t);
            }
        }
    }
}

/// Whether `goal` has at least one derivation from the current store: some
/// rule conclusion unifies with it and the rule body is satisfiable under
/// the resulting bindings. For skolemizing rules the skolem terms bound
/// from the goal are treated as *expectations* — the body solution must
/// re-mint exactly those terms (content-derived names make this check
/// exact).
fn derivable(
    rules: &[Rule],
    memo: &mut SkolemMemo,
    interner: &mut Interner,
    store: &Store,
    occ: &OccurrenceIndex,
    goal: Triple,
) -> bool {
    for (ri, rule) in rules.iter().enumerate() {
        let skolem_vars = &occ.skolem_vars[ri];
        for conclusion in &rule.conclusions {
            // Ground-predicate prefilter: skip without allocating when
            // the conclusion cannot match the goal's predicate.
            if let PatternTerm::Ground(p) = conclusion.p {
                if p != goal.p {
                    continue;
                }
            }
            let mut binding: Vec<Option<Term>> = vec![None; rule.var_count()];
            if !unify_pattern(conclusion, goal, &mut binding) {
                continue;
            }
            let mut expected: Vec<(usize, Term)> = Vec::new();
            for v in skolem_vars {
                if let Some(t) = binding.get_mut(v.0 as usize).and_then(|slot| slot.take()) {
                    expected.push((v.0 as usize, t));
                }
            }
            let mut patterns: Vec<TriplePattern> = Vec::new();
            let mut builtins: Vec<BuiltinAtom> = Vec::new();
            for atom in &rule.premises {
                match atom {
                    RuleAtom::Pattern(p) => patterns.push(*p),
                    RuleAtom::Builtin(b) => builtins.push(*b),
                }
            }
            let found = if skolem_vars.is_empty() {
                solve_until(
                    store,
                    &mut patterns,
                    &mut builtins,
                    &mut binding,
                    &mut |_| true,
                )
            } else {
                solve_until(
                    store,
                    &mut patterns,
                    &mut builtins,
                    &mut binding,
                    &mut |b| {
                        let mut full = b.to_vec();
                        apply_skolems(memo, ri, rule, interner, skolem_vars, &mut full);
                        expected
                            .iter()
                            .all(|&(slot, t)| full.get(slot).copied().flatten() == Some(t))
                    },
                )
            };
            if found {
                return true;
            }
        }
    }
    false
}

/// FNV-1a, the 64-bit flavor; tiny and dependency-free, used only to
/// derive skolem IRI names from firing signatures.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Binds skolem variables to IRIs derived from the rule name and the
/// rendered bound-variable signature: `skolem:{rule}#{hash16}`. The same
/// firing always mints the same IRI, in any engine, in any evaluation
/// order — which is what makes naive and semi-naive closures identical.
fn apply_skolems(
    memo: &mut FxHashMap<(usize, Vec<Term>), Vec<Term>>,
    rule_idx: usize,
    rule: &Rule,
    interner: &mut Interner,
    skolem_vars: &[VarId],
    binding: &mut [Option<Term>],
) {
    // Signature: the values of all *bound* variables, in table order.
    let signature: Vec<Term> = binding.iter().flatten().copied().collect();
    let key = (rule_idx, signature);
    if let Some(existing) = memo.get(&key) {
        for (var, term) in skolem_vars.iter().zip(existing) {
            binding[var.0 as usize] = Some(*term);
        }
        return;
    }
    let mut minted = Vec::with_capacity(skolem_vars.len());
    for (pos, var) in skolem_vars.iter().enumerate() {
        let mut h = Fnv64::new();
        h.update(rule.name.as_bytes());
        h.update(&[0xff]);
        h.update(&pos.to_le_bytes());
        for &t in &key.1 {
            h.update(&[0xfe]);
            h.update(t.display(interner).to_string().as_bytes());
        }
        let iri = format!("skolem:{}#{:016x}", rule.name, h.finish());
        let term = Term::Iri(interner.intern(&iri));
        binding[var.0 as usize] = Some(term);
        minted.push(term);
    }
    memo.insert(key, minted);
}

/// Unifies a ground triple against a pattern, extending `binding` with the
/// pattern's variables. Returns `false` (leaving `binding` untouched) on a
/// ground-term mismatch, a conflict with an existing binding, or a
/// repeated variable matching two different terms.
pub fn unify_pattern(
    pattern: &TriplePattern,
    triple: Triple,
    binding: &mut [Option<Term>],
) -> bool {
    let mut staged: [(u32, Term); 3] = [(0, triple.s); 3];
    let mut staged_len = 0usize;
    for (pt, actual) in [
        (pattern.s, triple.s),
        (pattern.p, triple.p),
        (pattern.o, triple.o),
    ] {
        match pt {
            PatternTerm::Ground(g) => {
                if g != actual {
                    return false;
                }
            }
            PatternTerm::Var(v) => {
                let earlier = staged[..staged_len]
                    .iter()
                    .find(|(idx, _)| *idx == v.0)
                    .map(|(_, t)| *t)
                    .or_else(|| binding.get(v.0 as usize).copied().flatten());
                match earlier {
                    Some(existing) if existing != actual => return false,
                    Some(_) => {}
                    None => {
                        staged[staged_len] = (v.0, actual);
                        staged_len += 1;
                    }
                }
            }
        }
    }
    for &(idx, t) in &staged[..staged_len] {
        binding[idx as usize] = Some(t);
    }
    true
}

/// Exact number of stored triples matching `pattern` under `binding`
/// (upper bound when the pattern repeats an unbound variable). O(1).
fn pattern_cost(store: &Store, pattern: &TriplePattern, binding: &[Option<Term>]) -> usize {
    let resolve = |pt: PatternTerm| -> Option<Term> {
        match pt {
            PatternTerm::Ground(t) => Some(t),
            PatternTerm::Var(v) => binding.get(v.0 as usize).copied().flatten(),
        }
    };
    store.count_match(resolve(pattern.s), resolve(pattern.p), resolve(pattern.o))
}

fn builtin_ready(b: &BuiltinAtom, binding: &[Option<Term>]) -> bool {
    let bound = |pt: PatternTerm| -> bool {
        match pt {
            PatternTerm::Ground(_) => true,
            PatternTerm::Var(v) => binding.get(v.0 as usize).copied().flatten().is_some(),
        }
    };
    bound(b.lhs) && bound(b.rhs)
}

/// Greedy-ordered join over the remaining body atoms.
///
/// Builtins run the moment both arguments are bound (a false guard prunes
/// the whole branch); otherwise the cheapest remaining pattern — by exact
/// match count under the current bindings — is matched next through the
/// store's in-place callback path. `sink` is called once per satisfying
/// assignment. Builtins whose variables are never bound by any pattern
/// evaluate to false, matching the naive engine's end-of-body check.
fn solve_rest(
    store: &Store,
    patterns: &mut Vec<TriplePattern>,
    builtins: &mut Vec<BuiltinAtom>,
    binding: &mut Vec<Option<Term>>,
    sink: &mut dyn FnMut(&[Option<Term>]),
) {
    solve_until(store, patterns, builtins, binding, &mut |b| {
        sink(b);
        false
    });
}

/// Early-exit variant of [`solve_rest`]: the sink returns `true` to stop
/// the search, and the function reports whether any sink call did. Used by
/// the rederivation step, where one witness derivation suffices.
fn solve_until(
    store: &Store,
    patterns: &mut Vec<TriplePattern>,
    builtins: &mut Vec<BuiltinAtom>,
    binding: &mut Vec<Option<Term>>,
    sink: &mut dyn FnMut(&[Option<Term>]) -> bool,
) -> bool {
    if let Some(pos) = builtins.iter().position(|b| builtin_ready(b, binding)) {
        let guard = builtins.swap_remove(pos);
        let mut done = false;
        if guard.eval(binding) {
            done = solve_until(store, patterns, builtins, binding, sink);
        }
        builtins.push(guard);
        return done;
    }
    if patterns.is_empty() {
        // Any builtin still unresolved here has a forever-unbound variable
        // and can never hold.
        if builtins.is_empty() {
            return sink(binding);
        }
        return false;
    }
    let mut best = 0usize;
    let mut best_cost = usize::MAX;
    for (i, p) in patterns.iter().enumerate() {
        let cost = pattern_cost(store, p, binding);
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    if best_cost == 0 {
        return false;
    }
    let pat = patterns.swap_remove(best);
    let mut done = false;
    store.match_pattern_in_place(&pat, binding, |b| {
        if !done {
            done = solve_until(store, patterns, builtins, b, sink);
        }
    });
    patterns.push(pat);
    done
}

/// Computes every satisfying assignment of `rule`'s premises against
/// `store`, joining through the greedy planner (cheapest pattern first,
/// builtins as soon as bound). This is the engine behind
/// [`crate::query::Query::solve`].
pub fn match_rule(store: &Store, rule: &Rule) -> Vec<Vec<Option<Term>>> {
    let mut patterns: Vec<TriplePattern> = Vec::new();
    let mut builtins: Vec<BuiltinAtom> = Vec::new();
    for atom in &rule.premises {
        match atom {
            RuleAtom::Pattern(p) => patterns.push(*p),
            RuleAtom::Builtin(b) => builtins.push(*b),
        }
    }
    let mut binding: Vec<Option<Term>> = vec![None; rule.var_count()];
    let mut results = Vec::new();
    solve_rest(
        store,
        &mut patterns,
        &mut builtins,
        &mut binding,
        &mut |b| {
            results.push(b.to_vec());
        },
    );
    results
}

/// The pre-planner join: premises in textual order, builtins checked after
/// all patterns, one `Vec` allocation per intermediate binding. Feeds
/// [`Reasoner::materialize_naive`] only.
fn match_rule_textual(store: &Store, rule: &Rule) -> Vec<Vec<Option<Term>>> {
    let patterns: Vec<_> = rule
        .premises
        .iter()
        .filter_map(|a| match a {
            RuleAtom::Pattern(p) => Some(*p),
            RuleAtom::Builtin(_) => None,
        })
        .collect();
    let builtins: Vec<_> = rule
        .premises
        .iter()
        .filter_map(|a| match a {
            RuleAtom::Builtin(b) => Some(*b),
            RuleAtom::Pattern(_) => None,
        })
        .collect();

    let mut results = Vec::new();
    let initial = vec![None; rule.var_count()];
    join_textual(store, &patterns, 0, initial, &mut |binding: Vec<
        Option<Term>,
    >| {
        if builtins.iter().all(|b| b.eval(&binding)) {
            results.push(binding);
        }
    });
    results
}

fn join_textual(
    store: &Store,
    patterns: &[TriplePattern],
    idx: usize,
    binding: Vec<Option<Term>>,
    sink: &mut impl FnMut(Vec<Option<Term>>),
) {
    if idx == patterns.len() {
        sink(binding);
        return;
    }
    store.match_pattern(&patterns[idx], &binding, |next| {
        join_textual(store, patterns, idx + 1, next, sink);
    });
}

/// Builds the RDFS/OWL-lite axiom rule set:
///
/// * `rdfs9`/`rdfs11` — `subClassOf` inheritance and transitivity.
/// * `rdfs5`/`rdfs7` — `subPropertyOf` transitivity and inheritance.
/// * `rdfs2`/`rdfs3` — `domain`/`range` typing.
/// * `owl-trans` — `TransitiveProperty`.
/// * `owl-sym` — `SymmetricProperty`.
/// * `owl-inv` — `inverseOf` (both directions).
/// * `owl-eqc` — `equivalentClass` implies mutual `subClassOf`.
/// * `owl-sameas-sym`/`owl-sameas-trans` — `sameAs` symmetry/transitivity.
pub fn axiom_rules(graph: &mut Graph) -> Vec<Rule> {
    let text = format!(
        "[rdfs9: (?c {sub} ?d), (?x {ty} ?c) -> (?x {ty} ?d)]\n\
         [rdfs11: (?c {sub} ?d), (?d {sub} ?e) -> (?c {sub} ?e)]\n\
         [rdfs5: (?p {subp} ?q), (?q {subp} ?r) -> (?p {subp} ?r)]\n\
         [rdfs7: (?p {subp} ?q), (?x ?p ?y) -> (?x ?q ?y)]\n\
         [rdfs2: (?p {dom} ?c), (?x ?p ?y) -> (?x {ty} ?c)]\n\
         [rdfs3: (?p {rng} ?c), (?x ?p ?y), (?y {ty} ?anyclass) -> (?y {ty} ?c)]\n\
         [owl-trans: (?p {ty} {tp}), (?x ?p ?y), (?y ?p ?z) -> (?x ?p ?z)]\n\
         [owl-sym: (?p {ty} {sp}), (?x ?p ?y) -> (?y ?p ?x)]\n\
         [owl-inv1: (?p {inv} ?q), (?x ?p ?y) -> (?y ?q ?x)]\n\
         [owl-inv2: (?p {inv} ?q), (?x ?q ?y) -> (?y ?p ?x)]\n\
         [owl-eqc1: (?c {eqc} ?d) -> (?c {sub} ?d), (?d {sub} ?c)]\n\
         [owl-sameas-sym: (?x {same} ?y) -> (?y {same} ?x)]\n\
         [owl-sameas-trans: (?x {same} ?y), (?y {same} ?z) -> (?x {same} ?z)]",
        sub = rdfs::SUB_CLASS_OF,
        subp = rdfs::SUB_PROPERTY_OF,
        dom = rdfs::DOMAIN,
        rng = rdfs::RANGE,
        ty = rdf::TYPE,
        tp = owl::TRANSITIVE_PROPERTY,
        sp = owl::SYMMETRIC_PROPERTY,
        inv = owl::INVERSE_OF,
        eqc = owl::EQUIVALENT_CLASS,
        same = owl::SAME_AS,
    );
    crate::parser::parse_rules(&text, graph).expect("axiom rules are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rules;
    use std::collections::BTreeSet;

    /// Renders a graph's triples to sorted strings so closures from
    /// different graphs (whose interners may have assigned ids in a
    /// different order) can be compared.
    fn rendered(g: &Graph) -> BTreeSet<String> {
        g.store()
            .iter()
            .map(|t| t.display(g.interner()).to_string())
            .collect()
    }

    #[test]
    fn subclass_inheritance_and_transitivity() {
        let mut g = Graph::new();
        g.add("imcl:hpLaserJet", rdfs::SUB_CLASS_OF, "imcl:Printer");
        g.add("imcl:Printer", rdfs::SUB_CLASS_OF, "imcl:Resource");
        g.add("imcl:thePrinter", rdf::TYPE, "imcl:hpLaserJet");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("imcl:hpLaserJet", rdfs::SUB_CLASS_OF, "imcl:Resource"));
        assert!(g.contains("imcl:thePrinter", rdf::TYPE, "imcl:Printer"));
        assert!(g.contains("imcl:thePrinter", rdf::TYPE, "imcl:Resource"));
    }

    #[test]
    fn transitive_property_axiom() {
        let mut g = Graph::new();
        g.add("imcl:locatedIn", rdf::TYPE, owl::TRANSITIVE_PROPERTY);
        g.add("ex:prn", "imcl:locatedIn", "ex:room");
        g.add("ex:room", "imcl:locatedIn", "ex:building");
        g.add("ex:building", "imcl:locatedIn", "ex:campus");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:prn", "imcl:locatedIn", "ex:building"));
        assert!(g.contains("ex:prn", "imcl:locatedIn", "ex:campus"));
        assert!(g.contains("ex:room", "imcl:locatedIn", "ex:campus"));
    }

    #[test]
    fn symmetric_and_inverse_axioms() {
        let mut g = Graph::new();
        g.add("ex:adjacentTo", rdf::TYPE, owl::SYMMETRIC_PROPERTY);
        g.add("ex:a", "ex:adjacentTo", "ex:b");
        g.add("ex:contains", owl::INVERSE_OF, "imcl:locatedIn");
        g.add("ex:room", "ex:contains", "ex:prn");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:b", "ex:adjacentTo", "ex:a"));
        assert!(g.contains("ex:prn", "imcl:locatedIn", "ex:room"));
    }

    #[test]
    fn equivalent_class_gives_mutual_subclass() {
        let mut g = Graph::new();
        g.add("ex:Laptop", owl::EQUIVALENT_CLASS, "ex:NotebookComputer");
        g.add("ex:mine", rdf::TYPE, "ex:Laptop");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:mine", rdf::TYPE, "ex:NotebookComputer"));
    }

    #[test]
    fn domain_typing() {
        let mut g = Graph::new();
        g.add("ex:plays", rdfs::DOMAIN, "ex:MediaPlayer");
        g.add("ex:app1", "ex:plays", "ex:track1");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:app1", rdf::TYPE, "ex:MediaPlayer"));
    }

    #[test]
    fn materialization_is_idempotent() {
        let mut g = Graph::new();
        g.add("a", rdfs::SUB_CLASS_OF, "b");
        g.add("b", rdfs::SUB_CLASS_OF, "c");
        let mut r = Reasoner::with_axioms(&mut g);
        let first = r.materialize(&mut g);
        assert!(first > 0);
        let second = r.materialize(&mut g);
        assert_eq!(second, 0, "second run derives nothing new");
    }

    #[test]
    fn skolemization_is_stable_across_rounds() {
        let mut g = Graph::new();
        g.add("ex:x", "ex:p", "ex:y");
        let rules = parse_rules("[mk: (?a ex:p ?b) -> (?act ex:about ?a)]", &mut g).unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        let added = r.materialize(&mut g);
        // Exactly one skolem triple; re-running adds nothing.
        assert_eq!(added, 1);
        assert_eq!(r.materialize(&mut g), 0);
        let actions = g
            .store()
            .iter()
            .filter(|t| g.term_to_string(t.p) == "ex:about")
            .count();
        assert_eq!(actions, 1);
    }

    #[test]
    fn skolem_names_are_content_derived() {
        // Two independent reasoners over independently built graphs mint
        // the identical skolem IRI for the same firing.
        let build = || {
            let mut g = Graph::new();
            g.add("ex:x", "ex:p", "ex:y");
            let rules = parse_rules("[mk: (?a ex:p ?b) -> (?act ex:about ?a)]", &mut g).unwrap();
            let mut r = Reasoner::new();
            r.add_rules(rules);
            r.materialize(&mut g);
            rendered(&g)
        };
        assert_eq!(build(), build());
        // And the memo is a pure cache: a fresh reasoner re-derives the
        // same name on an already-materialized graph, adding nothing.
        let mut g = Graph::new();
        g.add("ex:x", "ex:p", "ex:y");
        let rules = parse_rules("[mk: (?a ex:p ?b) -> (?act ex:about ?a)]", &mut g).unwrap();
        let mut r1 = Reasoner::new();
        r1.add_rules(rules.clone());
        assert_eq!(r1.materialize(&mut g), 1);
        let mut r2 = Reasoner::new();
        r2.add_rules(rules);
        assert_eq!(r2.materialize(&mut g), 0, "cold memo mints identical IRIs");
    }

    #[test]
    fn builtin_guard_prunes_firings() {
        let mut g = Graph::new();
        let fast = g.int_lit(300);
        let slow = g.int_lit(3000);
        g.add_with_object("ex:linkA", "ex:rt", fast);
        g.add_with_object("ex:linkB", "ex:rt", slow);
        let rules = parse_rules(
            "[ok: (?l ex:rt ?t), lessThan(?t, '1000'^^xsd:double) -> (?l ex:usable 'yes')]",
            &mut g,
        )
        .unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        assert!(
            g.contains("ex:linkA", "ex:usable", "'yes'") || {
                // 'yes' is a string literal, check via objects_of
                let o = g.objects_of("ex:linkA", "ex:usable");
                !o.is_empty()
            }
        );
        assert!(g.objects_of("ex:linkB", "ex:usable").is_empty());
    }

    #[test]
    fn derived_closure_is_sound_for_chains() {
        // locatedIn chain of length n: closure adds n*(n-1)/2 - (n-1) pairs... just
        // verify every derived pair respects reachability.
        let mut g = Graph::new();
        let n = 6;
        for i in 0..n {
            g.add(
                &format!("ex:n{i}"),
                "imcl:locatedIn",
                &format!("ex:n{}", i + 1),
            );
        }
        let rules = parse_rules(
            "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]",
            &mut g,
        )
        .unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        // All pairs (i, j) with i < j must now be present: (n+1) nodes.
        for i in 0..=n {
            for j in (i + 1)..=n {
                assert!(
                    g.contains(&format!("ex:n{i}"), "imcl:locatedIn", &format!("ex:n{j}")),
                    "missing ({i},{j})"
                );
            }
        }
        let expected = (n + 1) * n / 2;
        let actual = g
            .store()
            .iter()
            .filter(|t| Some(t.p) == g.try_iri("imcl:locatedIn"))
            .count();
        assert_eq!(
            actual, expected,
            "closure is exactly the reachability relation"
        );
    }

    /// Builds a mixed workload exercising every axiom family plus a
    /// skolemizing custom rule and a builtin guard.
    fn mixed_workload() -> (Graph, Vec<Rule>) {
        let mut g = Graph::new();
        for i in 0..5 {
            g.add(
                &format!("ex:C{i}"),
                rdfs::SUB_CLASS_OF,
                &format!("ex:C{}", i + 1),
            );
            g.add(&format!("ex:inst{i}"), rdf::TYPE, &format!("ex:C{i}"));
        }
        g.add("imcl:locatedIn", rdf::TYPE, owl::TRANSITIVE_PROPERTY);
        for i in 0..6 {
            g.add(
                &format!("ex:s{i}"),
                "imcl:locatedIn",
                &format!("ex:s{}", i + 1),
            );
        }
        g.add("ex:near", rdf::TYPE, owl::SYMMETRIC_PROPERTY);
        g.add("ex:s0", "ex:near", "ex:s3");
        g.add("ex:hosts", owl::INVERSE_OF, "imcl:locatedIn");
        g.add("ex:plays", rdfs::DOMAIN, "ex:MediaPlayer");
        g.add("ex:app", "ex:plays", "ex:track");
        let rt = g.int_lit(120);
        g.add_with_object("ex:link", "ex:rt", rt);
        let mut rules = axiom_rules(&mut g);
        rules.extend(
            parse_rules(
                "[mk: (?x imcl:locatedIn ?y), (?x ex:near ?z) -> (?act ex:visits ?z)]\n\
                 [guard: (?l ex:rt ?t), lessThan(?t, '1000'^^xsd:double) -> (?l ex:fast 'y')]",
                &mut g,
            )
            .unwrap(),
        );
        (g, rules)
    }

    #[test]
    fn seminaive_closure_equals_naive_closure() {
        let (g, rules) = mixed_workload();
        let mut g_fast = g.clone();
        let mut g_slow = g;
        let mut fast = Reasoner::new();
        fast.add_rules(rules.clone());
        let mut slow = Reasoner::new();
        slow.add_rules(rules);
        let added_fast = fast.materialize(&mut g_fast);
        let added_slow = slow.materialize_naive(&mut g_slow);
        assert_eq!(added_fast, added_slow, "same number of derivations");
        assert_eq!(
            rendered(&g_fast),
            rendered(&g_slow),
            "bit-identical closure"
        );
    }

    #[test]
    fn incremental_matches_full_rematerialization() {
        let (g, rules) = mixed_workload();
        let mut g_inc = g.clone();
        let mut r_inc = Reasoner::new();
        r_inc.add_rules(rules.clone());
        r_inc.materialize(&mut g_inc);

        // Assert a new fact that interacts with the transitive chain.
        let mut g_full = g;
        let delta = {
            let s = g_inc.iri("ex:s7");
            let p = g_inc.iri("imcl:locatedIn");
            let o = g_inc.iri("ex:s8");
            Triple::new(s, p, o)
        };
        let inc_added = r_inc.materialize_incremental(&mut g_inc, [delta]);
        assert!(inc_added > 0, "delta has consequences");

        g_full.add("ex:s7", "imcl:locatedIn", "ex:s8");
        let mut r_full = Reasoner::new();
        r_full.add_rules(rules);
        r_full.materialize(&mut g_full);
        assert_eq!(rendered(&g_inc), rendered(&g_full));
    }

    #[test]
    fn incremental_on_closed_graph_is_a_noop() {
        let (mut g, rules) = mixed_workload();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        // Re-asserting an existing triple derives nothing new.
        let existing = *g.store().iter().next().unwrap();
        assert_eq!(r.materialize_incremental(&mut g, [existing]), 0);
    }

    #[test]
    fn planner_join_matches_textual_join() {
        let (mut g, rules) = mixed_workload();
        let mut r = Reasoner::new();
        r.add_rules(rules.clone());
        r.materialize(&mut g);
        for rule in &rules {
            let mut planned = match_rule(g.store(), rule);
            let mut textual = match_rule_textual(g.store(), rule);
            planned.sort();
            textual.sort();
            assert_eq!(planned, textual, "rule {}", rule.name);
        }
    }

    #[test]
    fn variable_predicate_rules_chain_incrementally() {
        // rdfs7-style rule where the delta's predicate position is a
        // variable: must be seeded via the any-predicate bucket.
        let mut g = Graph::new();
        g.add("ex:p", rdfs::SUB_PROPERTY_OF, "ex:q");
        let rules = axiom_rules(&mut g);
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        let delta = {
            let s = g.iri("ex:a");
            let p = g.iri("ex:p");
            let o = g.iri("ex:b");
            Triple::new(s, p, o)
        };
        r.materialize_incremental(&mut g, [delta]);
        assert!(g.contains("ex:a", "ex:q", "ex:b"), "rdfs7 fired on delta");
    }

    #[test]
    fn stats_track_rounds_and_skips() {
        let mut g = Graph::new();
        g.add("imcl:prn", "imcl:locatedIn", "imcl:Office821");
        g.add("imcl:Office821", "imcl:locatedIn", "imcl:Building8");
        g.add("imcl:Building8", "imcl:locatedIn", "imcl:Campus");
        let rules = crate::parser::parse_rules(
            "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]\
             [Idle: (?x imcl:neverSeen ?y) -> (?y imcl:neverSeen ?x)]",
            &mut g,
        )
        .unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        let derived = r.materialize(&mut g);
        let stats = r.last_stats().clone();
        assert_eq!(stats.facts_derived, derived);
        assert!(derived > 0);
        assert!(stats.rounds >= 2, "transitive closure needs 2+ rounds");
        assert_eq!(stats.delta_sizes.len(), stats.rounds);
        assert_eq!(stats.delta_sizes[0], 3, "round 0 delta is the whole store");
        assert!(stats.rules_evaluated >= 1);
        assert!(
            stats.rules_skipped >= 1,
            "occurrence index must skip the idle rule in later rounds"
        );
        assert!(stats.seed_evaluations >= stats.rules_evaluated);
        assert_eq!(stats.max_delta(), 3);

        // Incremental run resets the counters.
        let delta = {
            let s = g.iri("imcl:Campus");
            let p = g.iri("imcl:locatedIn");
            let o = g.iri("imcl:Earth");
            Triple::new(s, p, o)
        };
        r.materialize_incremental(&mut g, [delta]);
        let stats2 = r.last_stats();
        assert_eq!(stats2.delta_sizes[0], 1);
        assert!(stats2.facts_derived >= 3, "closure extends to imcl:Earth");
    }

    #[test]
    fn unify_pattern_rejects_conflicts() {
        let mut g = Graph::new();
        let p = g.iri("ex:p");
        let a = g.iri("ex:a");
        let b = g.iri("ex:b");
        // (?x ex:p ?x) vs (a p b): repeated var mismatch.
        let pat = TriplePattern::new(VarId(0), p, VarId(0));
        let mut binding = vec![None];
        assert!(!unify_pattern(&pat, Triple::new(a, p, b), &mut binding));
        assert_eq!(binding, vec![None], "failed unify leaves binding untouched");
        // (?x ex:p ?x) vs (a p a): binds.
        assert!(unify_pattern(&pat, Triple::new(a, p, a), &mut binding));
        assert_eq!(binding, vec![Some(a)]);
        // Existing binding conflicts.
        let pat2 = TriplePattern::new(VarId(0), p, VarId(1));
        let mut binding2 = vec![Some(b), None];
        assert!(!unify_pattern(&pat2, Triple::new(a, p, b), &mut binding2));
        // Ground mismatch.
        let pat3 = TriplePattern::new(a, p, b);
        assert!(!unify_pattern(&pat3, Triple::new(b, p, b), &mut []));
    }

    /// Builds the transitive `locatedIn` chain `n0 → n1 → … → n{len}`,
    /// closes it, and returns the graph/reasoner pair.
    fn closed_chain(len: usize) -> (Graph, Reasoner) {
        let mut g = Graph::new();
        g.add("imcl:locatedIn", rdf::TYPE, owl::TRANSITIVE_PROPERTY);
        for i in 0..len {
            g.add(
                &format!("ex:n{i}"),
                "imcl:locatedIn",
                &format!("ex:n{}", i + 1),
            );
        }
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        (g, r)
    }

    /// The closure a fresh reasoner computes over `g`'s base triples after
    /// dropping `skip`, rendered for comparison.
    fn from_scratch_without(base: &[(String, String, String)], skip: &[usize]) -> BTreeSet<String> {
        let mut g = Graph::new();
        for (i, (s, p, o)) in base.iter().enumerate() {
            if !skip.contains(&i) {
                g.add(s, p, o);
            }
        }
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        rendered(&g)
    }

    #[test]
    fn retract_chain_edge_matches_from_scratch() {
        let (mut g, mut r) = closed_chain(6);
        let base: Vec<(String, String, String)> = std::iter::once((
            "imcl:locatedIn".to_owned(),
            rdf::TYPE.to_owned(),
            owl::TRANSITIVE_PROPERTY.to_owned(),
        ))
        .chain((0..6).map(|i| {
            (
                format!("ex:n{i}"),
                "imcl:locatedIn".to_owned(),
                format!("ex:n{}", i + 1),
            )
        }))
        .collect();
        // Retract the middle edge n2 → n3: every path crossing it dies,
        // everything strictly left or right of the cut survives.
        let t = {
            let s = g.iri("ex:n2");
            let p = g.iri("imcl:locatedIn");
            let o = g.iri("ex:n3");
            Triple::new(s, p, o)
        };
        let removed = r.retract(&mut g, t);
        assert!(removed > 1, "cut edge takes derived paths with it");
        assert_eq!(rendered(&g), from_scratch_without(&base, &[3]));
        let stats = r.last_retract_stats();
        assert_eq!(stats.requested, 1);
        assert_eq!(stats.retracted_base, 1);
        assert_eq!(stats.removed, removed);
        assert!(stats.waves >= 1);
    }

    #[test]
    fn retract_derived_fact_is_a_net_noop() {
        let (mut g, mut r) = closed_chain(4);
        // n0 → n2 is derived, not base: retracting it clears nothing
        // because the chain still proves it.
        let t = {
            let s = g.iri("ex:n0");
            let p = g.iri("imcl:locatedIn");
            let o = g.iri("ex:n2");
            Triple::new(s, p, o)
        };
        assert!(!r.is_base(&t));
        let before = rendered(&g);
        let removed = r.retract(&mut g, t);
        assert_eq!(removed, 0);
        assert_eq!(rendered(&g), before, "rederivation restores the closure");
        assert!(r.last_retract_stats().rederived >= 1);
    }

    #[test]
    fn retract_fact_that_is_both_base_and_derived() {
        let mut g = Graph::new();
        g.add("imcl:locatedIn", rdf::TYPE, owl::TRANSITIVE_PROPERTY);
        g.add("ex:a", "imcl:locatedIn", "ex:b");
        g.add("ex:b", "imcl:locatedIn", "ex:c");
        // Also asserted directly, so it is base *and* derivable.
        g.add("ex:a", "imcl:locatedIn", "ex:c");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        let t = {
            let s = g.iri("ex:a");
            let p = g.iri("imcl:locatedIn");
            let o = g.iri("ex:c");
            Triple::new(s, p, o)
        };
        assert!(r.is_base(&t));
        let removed = r.retract(&mut g, t);
        assert_eq!(removed, 0, "still derivable from the surviving chain");
        assert!(g.contains("ex:a", "imcl:locatedIn", "ex:c"));
        assert!(!r.is_base(&t), "asserted status is gone regardless");
        // Now cut the chain: the fact loses its last support and dies.
        let edge = {
            let s = g.iri("ex:b");
            let p = g.iri("imcl:locatedIn");
            let o = g.iri("ex:c");
            Triple::new(s, p, o)
        };
        let removed = r.retract(&mut g, edge);
        assert_eq!(removed, 2, "chain edge and the no-longer-derivable a→c");
        assert!(!g.contains("ex:a", "imcl:locatedIn", "ex:c"));
    }

    #[test]
    fn retract_cyclic_support_dies_together() {
        // Symmetric property: a↔b support each other in a 2-cycle. A
        // pure counting scheme would leave both alive (each counts the
        // other as support); DRed must delete both.
        let mut g = Graph::new();
        g.add("ex:adjacentTo", rdf::TYPE, owl::SYMMETRIC_PROPERTY);
        g.add("ex:a", "ex:adjacentTo", "ex:b");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:b", "ex:adjacentTo", "ex:a"));
        let t = {
            let s = g.iri("ex:a");
            let p = g.iri("ex:adjacentTo");
            let o = g.iri("ex:b");
            Triple::new(s, p, o)
        };
        let removed = r.retract(&mut g, t);
        assert_eq!(removed, 2, "both directions die: no external support");
        assert!(!g.contains("ex:a", "ex:adjacentTo", "ex:b"));
        assert!(!g.contains("ex:b", "ex:adjacentTo", "ex:a"));
    }

    #[test]
    fn retract_unreferenced_predicate_takes_fast_exit() {
        // The axiom set has variable-predicate rules (every fact seeds
        // them), so the fast exit needs a ground-predicate rule set.
        let mut g = Graph::new();
        g.add("ex:a", "imcl:locatedIn", "ex:b");
        let rules = parse_rules(
            "[tr: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]",
            &mut g,
        )
        .unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        g.add("ex:n0", "ex:label", "ex:tag");
        let t = {
            let s = g.iri("ex:n0");
            let p = g.iri("ex:label");
            let o = g.iri("ex:tag");
            Triple::new(s, p, o)
        };
        r.materialize_incremental(&mut g, [t]);
        let removed = r.retract(&mut g, t);
        assert_eq!(removed, 1);
        assert!(!g.contains("ex:n0", "ex:label", "ex:tag"));
        let stats = r.last_retract_stats();
        assert_eq!(stats.fast_exits, 1, "no rule reads or writes ex:label");
        assert_eq!(stats.waves, 0, "no DRed pass ran");
    }

    #[test]
    fn retract_batch_matches_sequential_retracts() {
        let build = || closed_chain(8);
        let edges = |g: &mut Graph| -> Vec<Triple> {
            [(1usize, 2usize), (4, 5), (6, 7)]
                .iter()
                .map(|&(i, j)| {
                    let s = g.iri(&format!("ex:n{i}"));
                    let p = g.iri("imcl:locatedIn");
                    let o = g.iri(&format!("ex:n{j}"));
                    Triple::new(s, p, o)
                })
                .collect()
        };
        let (mut g1, mut r1) = build();
        let ts = edges(&mut g1);
        r1.retract_batch(&mut g1, ts.iter().copied());
        let (mut g2, mut r2) = build();
        let ts2 = edges(&mut g2);
        for t in ts2 {
            r2.retract(&mut g2, t);
        }
        assert_eq!(rendered(&g1), rendered(&g2));
        assert_eq!(r1.last_retract_stats().requested, 3);
    }

    #[test]
    fn retract_missing_fact_is_harmless() {
        let (mut g, mut r) = closed_chain(3);
        let before = rendered(&g);
        let t = {
            let s = g.iri("ex:ghost");
            let p = g.iri("imcl:locatedIn");
            let o = g.iri("ex:nowhere");
            Triple::new(s, p, o)
        };
        assert_eq!(r.retract(&mut g, t), 0);
        assert_eq!(rendered(&g), before);
    }

    #[test]
    fn retract_then_rematerialize_round_trip() {
        // After a retraction the reasoner's bookkeeping must still accept
        // new increments and produce the same closure a fresh run would.
        let (mut g, mut r) = closed_chain(5);
        let t = {
            let s = g.iri("ex:n1");
            let p = g.iri("imcl:locatedIn");
            let o = g.iri("ex:n2");
            Triple::new(s, p, o)
        };
        r.retract(&mut g, t);
        // Re-assert the same edge incrementally: full closure returns.
        g.add_triple(t);
        r.materialize_incremental(&mut g, [t]);
        let (g2, _) = closed_chain(5);
        assert_eq!(rendered(&g), rendered(&g2));
    }
}
