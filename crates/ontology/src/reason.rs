//! Forward-chaining rule engine with RDFS/OWL-lite axiom rules.
//!
//! This is the reproduction's stand-in for Jena's inference support: rules
//! run to a fixpoint over the [`Graph`], deriving new ground triples.
//! Head-only variables are skolemized per distinct firing (Jena
//! `makeSkolem` semantics), which is what the paper's Rule3 relies on to
//! mint its `move` action individuals.

use std::collections::HashMap;

use crate::graph::Graph;
use crate::rule::{Rule, RuleAtom};
use crate::store::Store;
use crate::term::Term;
use crate::triple::{Triple, VarId};
use crate::vocab::{owl, rdf, rdfs};

/// Hard cap on fixpoint rounds; prevents pathological rule sets from
/// spinning forever.
const MAX_ROUNDS: usize = 10_000;

/// A forward-chaining reasoner over a set of [`Rule`]s.
///
/// # Examples
///
/// Run the paper's transitive `locatedIn` rule:
///
/// ```
/// use mdagent_ontology::{Graph, Reasoner, parser::parse_rules};
///
/// let mut g = Graph::new();
/// g.add("imcl:prn", "imcl:locatedIn", "imcl:Office821");
/// g.add("imcl:Office821", "imcl:locatedIn", "imcl:Building8");
/// let rules = parse_rules(
///     "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]",
///     &mut g,
/// )?;
/// let mut reasoner = Reasoner::new();
/// reasoner.add_rules(rules);
/// let derived = reasoner.materialize(&mut g);
/// assert_eq!(derived, 1);
/// assert!(g.contains("imcl:prn", "imcl:locatedIn", "imcl:Building8"));
/// # Ok::<(), mdagent_ontology::parser::ParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Reasoner {
    rules: Vec<Rule>,
    /// Memo of skolem terms per (rule index, bound-variable signature).
    skolems: HashMap<(usize, Vec<Term>), Vec<Term>>,
    skolem_counter: u64,
}

impl Reasoner {
    /// Creates a reasoner with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a reasoner preloaded with the RDFS/OWL-lite axiom rules
    /// (see [`axiom_rules`]).
    pub fn with_axioms(graph: &mut Graph) -> Self {
        let mut r = Reasoner::new();
        r.add_rules(axiom_rules(graph));
        r
    }

    /// Adds one rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Adds many rules.
    pub fn add_rules(&mut self, rules: impl IntoIterator<Item = Rule>) {
        self.rules.extend(rules);
    }

    /// The current rule set.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Runs all rules to fixpoint, inserting derivations into `graph`.
    /// Returns the number of new triples added.
    pub fn materialize(&mut self, graph: &mut Graph) -> usize {
        let mut added_total = 0usize;
        for _round in 0..MAX_ROUNDS {
            let mut new_triples: Vec<Triple> = Vec::new();
            for rule_idx in 0..self.rules.len() {
                let bindings = match_rule(graph.store(), &self.rules[rule_idx]);
                let skolem_vars = self.rules[rule_idx].skolem_vars();
                for mut binding in bindings {
                    if !skolem_vars.is_empty() {
                        self.apply_skolems(graph, rule_idx, &skolem_vars, &mut binding);
                    }
                    for conclusion in &self.rules[rule_idx].conclusions {
                        if let Some(t) = conclusion.instantiate(&binding) {
                            if !graph.store().contains(&t) && !new_triples.contains(&t) {
                                new_triples.push(t);
                            }
                        }
                    }
                }
            }
            if new_triples.is_empty() {
                break;
            }
            for t in new_triples {
                if graph.add_triple(t) {
                    added_total += 1;
                }
            }
        }
        added_total
    }

    fn apply_skolems(
        &mut self,
        graph: &mut Graph,
        rule_idx: usize,
        skolem_vars: &[VarId],
        binding: &mut [Option<Term>],
    ) {
        // Signature: the values of all *bound* variables, in table order.
        let signature: Vec<Term> = binding.iter().flatten().copied().collect();
        let key = (rule_idx, signature);
        if let Some(existing) = self.skolems.get(&key) {
            for (var, term) in skolem_vars.iter().zip(existing) {
                binding[var.0 as usize] = Some(*term);
            }
            return;
        }
        let rule_name = self.rules[rule_idx].name.clone();
        let mut minted = Vec::with_capacity(skolem_vars.len());
        for var in skolem_vars {
            let iri = format!("skolem:{}#{}", rule_name, self.skolem_counter);
            self.skolem_counter += 1;
            let term = graph.iri(&iri);
            binding[var.0 as usize] = Some(term);
            minted.push(term);
        }
        self.skolems.insert(key, minted);
    }
}

/// Computes every satisfying assignment of `rule`'s premises against
/// `store`. Builtins are evaluated as soon as their arguments are bound and
/// all are re-checked at the end.
pub fn match_rule(store: &Store, rule: &Rule) -> Vec<Vec<Option<Term>>> {
    let patterns: Vec<_> = rule
        .premises
        .iter()
        .filter_map(|a| match a {
            RuleAtom::Pattern(p) => Some(*p),
            RuleAtom::Builtin(_) => None,
        })
        .collect();
    let builtins: Vec<_> = rule
        .premises
        .iter()
        .filter_map(|a| match a {
            RuleAtom::Builtin(b) => Some(*b),
            RuleAtom::Pattern(_) => None,
        })
        .collect();

    let mut results = Vec::new();
    let initial = vec![None; rule.var_count()];
    join(store, &patterns, 0, initial, &mut |binding: Vec<
        Option<Term>,
    >| {
        if builtins.iter().all(|b| b.eval(&binding)) {
            results.push(binding);
        }
    });
    results
}

fn join(
    store: &Store,
    patterns: &[crate::triple::TriplePattern],
    idx: usize,
    binding: Vec<Option<Term>>,
    sink: &mut impl FnMut(Vec<Option<Term>>),
) {
    if idx == patterns.len() {
        sink(binding);
        return;
    }
    store.match_pattern(&patterns[idx], &binding, |next| {
        join(store, patterns, idx + 1, next, sink);
    });
}

/// Builds the RDFS/OWL-lite axiom rule set:
///
/// * `rdfs9`/`rdfs11` — `subClassOf` inheritance and transitivity.
/// * `rdfs5`/`rdfs7` — `subPropertyOf` transitivity and inheritance.
/// * `rdfs2`/`rdfs3` — `domain`/`range` typing.
/// * `owl-trans` — `TransitiveProperty`.
/// * `owl-sym` — `SymmetricProperty`.
/// * `owl-inv` — `inverseOf` (both directions).
/// * `owl-eqc` — `equivalentClass` implies mutual `subClassOf`.
/// * `owl-sameas-sym`/`owl-sameas-trans` — `sameAs` symmetry/transitivity.
pub fn axiom_rules(graph: &mut Graph) -> Vec<Rule> {
    let text = format!(
        "[rdfs9: (?c {sub} ?d), (?x {ty} ?c) -> (?x {ty} ?d)]\n\
         [rdfs11: (?c {sub} ?d), (?d {sub} ?e) -> (?c {sub} ?e)]\n\
         [rdfs5: (?p {subp} ?q), (?q {subp} ?r) -> (?p {subp} ?r)]\n\
         [rdfs7: (?p {subp} ?q), (?x ?p ?y) -> (?x ?q ?y)]\n\
         [rdfs2: (?p {dom} ?c), (?x ?p ?y) -> (?x {ty} ?c)]\n\
         [rdfs3: (?p {rng} ?c), (?x ?p ?y), (?y {ty} ?anyclass) -> (?y {ty} ?c)]\n\
         [owl-trans: (?p {ty} {tp}), (?x ?p ?y), (?y ?p ?z) -> (?x ?p ?z)]\n\
         [owl-sym: (?p {ty} {sp}), (?x ?p ?y) -> (?y ?p ?x)]\n\
         [owl-inv1: (?p {inv} ?q), (?x ?p ?y) -> (?y ?q ?x)]\n\
         [owl-inv2: (?p {inv} ?q), (?x ?q ?y) -> (?y ?p ?x)]\n\
         [owl-eqc1: (?c {eqc} ?d) -> (?c {sub} ?d), (?d {sub} ?c)]\n\
         [owl-sameas-sym: (?x {same} ?y) -> (?y {same} ?x)]\n\
         [owl-sameas-trans: (?x {same} ?y), (?y {same} ?z) -> (?x {same} ?z)]",
        sub = rdfs::SUB_CLASS_OF,
        subp = rdfs::SUB_PROPERTY_OF,
        dom = rdfs::DOMAIN,
        rng = rdfs::RANGE,
        ty = rdf::TYPE,
        tp = owl::TRANSITIVE_PROPERTY,
        sp = owl::SYMMETRIC_PROPERTY,
        inv = owl::INVERSE_OF,
        eqc = owl::EQUIVALENT_CLASS,
        same = owl::SAME_AS,
    );
    crate::parser::parse_rules(&text, graph).expect("axiom rules are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rules;

    #[test]
    fn subclass_inheritance_and_transitivity() {
        let mut g = Graph::new();
        g.add("imcl:hpLaserJet", rdfs::SUB_CLASS_OF, "imcl:Printer");
        g.add("imcl:Printer", rdfs::SUB_CLASS_OF, "imcl:Resource");
        g.add("imcl:thePrinter", rdf::TYPE, "imcl:hpLaserJet");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("imcl:hpLaserJet", rdfs::SUB_CLASS_OF, "imcl:Resource"));
        assert!(g.contains("imcl:thePrinter", rdf::TYPE, "imcl:Printer"));
        assert!(g.contains("imcl:thePrinter", rdf::TYPE, "imcl:Resource"));
    }

    #[test]
    fn transitive_property_axiom() {
        let mut g = Graph::new();
        g.add("imcl:locatedIn", rdf::TYPE, owl::TRANSITIVE_PROPERTY);
        g.add("ex:prn", "imcl:locatedIn", "ex:room");
        g.add("ex:room", "imcl:locatedIn", "ex:building");
        g.add("ex:building", "imcl:locatedIn", "ex:campus");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:prn", "imcl:locatedIn", "ex:building"));
        assert!(g.contains("ex:prn", "imcl:locatedIn", "ex:campus"));
        assert!(g.contains("ex:room", "imcl:locatedIn", "ex:campus"));
    }

    #[test]
    fn symmetric_and_inverse_axioms() {
        let mut g = Graph::new();
        g.add("ex:adjacentTo", rdf::TYPE, owl::SYMMETRIC_PROPERTY);
        g.add("ex:a", "ex:adjacentTo", "ex:b");
        g.add("ex:contains", owl::INVERSE_OF, "imcl:locatedIn");
        g.add("ex:room", "ex:contains", "ex:prn");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:b", "ex:adjacentTo", "ex:a"));
        assert!(g.contains("ex:prn", "imcl:locatedIn", "ex:room"));
    }

    #[test]
    fn equivalent_class_gives_mutual_subclass() {
        let mut g = Graph::new();
        g.add("ex:Laptop", owl::EQUIVALENT_CLASS, "ex:NotebookComputer");
        g.add("ex:mine", rdf::TYPE, "ex:Laptop");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:mine", rdf::TYPE, "ex:NotebookComputer"));
    }

    #[test]
    fn domain_typing() {
        let mut g = Graph::new();
        g.add("ex:plays", rdfs::DOMAIN, "ex:MediaPlayer");
        g.add("ex:app1", "ex:plays", "ex:track1");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:app1", rdf::TYPE, "ex:MediaPlayer"));
    }

    #[test]
    fn materialization_is_idempotent() {
        let mut g = Graph::new();
        g.add("a", rdfs::SUB_CLASS_OF, "b");
        g.add("b", rdfs::SUB_CLASS_OF, "c");
        let mut r = Reasoner::with_axioms(&mut g);
        let first = r.materialize(&mut g);
        assert!(first > 0);
        let second = r.materialize(&mut g);
        assert_eq!(second, 0, "second run derives nothing new");
    }

    #[test]
    fn skolemization_is_stable_across_rounds() {
        let mut g = Graph::new();
        g.add("ex:x", "ex:p", "ex:y");
        let rules = parse_rules("[mk: (?a ex:p ?b) -> (?act ex:about ?a)]", &mut g).unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        let added = r.materialize(&mut g);
        // Exactly one skolem triple; re-running adds nothing.
        assert_eq!(added, 1);
        assert_eq!(r.materialize(&mut g), 0);
        let actions = g
            .store()
            .iter()
            .filter(|t| g.term_to_string(t.p) == "ex:about")
            .count();
        assert_eq!(actions, 1);
    }

    #[test]
    fn builtin_guard_prunes_firings() {
        let mut g = Graph::new();
        let fast = g.int_lit(300);
        let slow = g.int_lit(3000);
        g.add_with_object("ex:linkA", "ex:rt", fast);
        g.add_with_object("ex:linkB", "ex:rt", slow);
        let rules = parse_rules(
            "[ok: (?l ex:rt ?t), lessThan(?t, '1000'^^xsd:double) -> (?l ex:usable 'yes')]",
            &mut g,
        )
        .unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        assert!(
            g.contains("ex:linkA", "ex:usable", "'yes'") || {
                // 'yes' is a string literal, check via objects_of
                let o = g.objects_of("ex:linkA", "ex:usable");
                !o.is_empty()
            }
        );
        assert!(g.objects_of("ex:linkB", "ex:usable").is_empty());
    }

    #[test]
    fn derived_closure_is_sound_for_chains() {
        // locatedIn chain of length n: closure adds n*(n-1)/2 - (n-1) pairs... just
        // verify every derived pair respects reachability.
        let mut g = Graph::new();
        let n = 6;
        for i in 0..n {
            g.add(
                &format!("ex:n{i}"),
                "imcl:locatedIn",
                &format!("ex:n{}", i + 1),
            );
        }
        let rules = parse_rules(
            "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]",
            &mut g,
        )
        .unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        // All pairs (i, j) with i < j must now be present: (n+1) nodes.
        for i in 0..=n {
            for j in (i + 1)..=n {
                assert!(
                    g.contains(&format!("ex:n{i}"), "imcl:locatedIn", &format!("ex:n{j}")),
                    "missing ({i},{j})"
                );
            }
        }
        let expected = (n + 1) * n / 2;
        let actual = g
            .store()
            .iter()
            .filter(|t| Some(t.p) == g.try_iri("imcl:locatedIn"))
            .count();
        assert_eq!(
            actual, expected,
            "closure is exactly the reachability relation"
        );
    }
}
