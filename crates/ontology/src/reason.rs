//! Semi-naive forward-chaining rule engine with RDFS/OWL-lite axiom rules.
//!
//! This is the reproduction's stand-in for Jena's inference support: rules
//! run to a fixpoint over the [`Graph`], deriving new ground triples.
//! Head-only variables are skolemized per distinct firing (Jena
//! `makeSkolem` semantics), which is what the paper's Rule3 relies on to
//! mint its `move` action individuals.
//!
//! # Evaluation strategy
//!
//! The engine is **delta-driven (semi-naive)**: each fixpoint round only
//! considers derivations that use at least one triple produced in the
//! previous round. A predicate → rule-occurrence index maps every delta
//! triple to the body patterns it can match; the triple is unified into
//! that pattern and the *rest* of the body is solved against the full
//! store (Δ ⋈ rest-of-body). Rules untouched by the delta are never
//! re-evaluated, so a round's cost is proportional to what actually
//! changed instead of to the whole rule set times the whole store.
//!
//! Body solving is shared with [`crate::query::Query::solve`] and uses a
//! greedy join plan: at every step the engine picks the remaining pattern
//! with the fewest matching triples under the current bindings (an exact
//! O(1) count from the store's per-position cardinality stats), and
//! evaluates builtin guards the moment their arguments are bound.
//! Candidate probes run through the store's callback path
//! ([`Store::match_pattern_in_place`]) without allocating per match.
//!
//! Skolem IRIs are derived from the rule name and the bound-variable
//! signature (not from a mint counter), so the closure is bit-identical
//! regardless of evaluation order — the naive reference evaluator
//! ([`Reasoner::materialize_naive`], kept for differential testing and
//! benchmarks) produces exactly the same triples.

use crate::fx::{FxHashMap, FxHashSet};

use crate::graph::Graph;
use crate::rule::{BuiltinAtom, Rule, RuleAtom};
use crate::store::Store;
use crate::term::{Interner, Term};
use crate::triple::{PatternTerm, Triple, TriplePattern, VarId};
use crate::vocab::{owl, rdf, rdfs};

/// Hard cap on fixpoint rounds; prevents pathological rule sets from
/// spinning forever.
const MAX_ROUNDS: usize = 10_000;

/// Where each body pattern of each rule can be seeded from: predicate term
/// → list of `(rule index, premise index)` whose pattern has that ground
/// predicate, plus a bucket for variable-predicate patterns that any delta
/// triple can feed.
#[derive(Debug, Clone, Default)]
struct OccurrenceIndex {
    by_predicate: FxHashMap<Term, Vec<(usize, usize)>>,
    any_predicate: Vec<(usize, usize)>,
    /// Rules with no body patterns at all (builtin-only or empty bodies);
    /// they are input-independent and fire once per run.
    pattern_free: Vec<usize>,
    /// Precomputed [`Rule::skolem_vars`] per rule.
    skolem_vars: Vec<Vec<VarId>>,
}

fn build_occurrences(rules: &[Rule]) -> OccurrenceIndex {
    let mut occ = OccurrenceIndex::default();
    for (ri, rule) in rules.iter().enumerate() {
        let mut has_pattern = false;
        for (ai, atom) in rule.premises.iter().enumerate() {
            if let RuleAtom::Pattern(p) = atom {
                has_pattern = true;
                match p.p {
                    PatternTerm::Ground(pred) => {
                        occ.by_predicate.entry(pred).or_default().push((ri, ai));
                    }
                    PatternTerm::Var(_) => occ.any_predicate.push((ri, ai)),
                }
            }
        }
        if !has_pattern {
            occ.pattern_free.push(ri);
        }
        occ.skolem_vars.push(rule.skolem_vars());
    }
    occ
}

/// Profiling counters from the most recent semi-naive fixpoint run.
///
/// Collected by [`Reasoner::materialize`] / (see also
/// [`Reasoner::materialize_incremental`]) and read back through
/// [`Reasoner::last_stats`]; telemetry spans attach these to AA decision
/// spans so reasoning cost is visible per decision.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReasonerStats {
    /// Fixpoint rounds executed, including the final round that derived
    /// nothing and closed the fixpoint.
    pub rounds: usize,
    /// Delta size consumed at the start of each round, in round order.
    pub delta_sizes: Vec<usize>,
    /// Distinct rules evaluated, summed over rounds (a rule touched by
    /// the round's delta counts once per round).
    pub rules_evaluated: usize,
    /// Distinct rules the occurrence index proved untouched by the
    /// round's delta, summed over rounds — work the semi-naive engine
    /// skipped relative to naive evaluation.
    pub rules_skipped: usize,
    /// Δ-seeded body joins attempted across all rounds (one per
    /// delta-triple/premise-occurrence hit).
    pub seed_evaluations: usize,
    /// New triples derived over the whole run.
    pub facts_derived: usize,
}

impl ReasonerStats {
    /// Largest single-round delta, or zero for an empty run.
    pub fn max_delta(&self) -> usize {
        self.delta_sizes.iter().copied().max().unwrap_or(0)
    }
}

/// A forward-chaining reasoner over a set of [`Rule`]s.
///
/// # Examples
///
/// Run the paper's transitive `locatedIn` rule:
///
/// ```
/// use mdagent_ontology::{Graph, Reasoner, parser::parse_rules};
///
/// let mut g = Graph::new();
/// g.add("imcl:prn", "imcl:locatedIn", "imcl:Office821");
/// g.add("imcl:Office821", "imcl:locatedIn", "imcl:Building8");
/// let rules = parse_rules(
///     "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]",
///     &mut g,
/// )?;
/// let mut reasoner = Reasoner::new();
/// reasoner.add_rules(rules);
/// let derived = reasoner.materialize(&mut g);
/// assert_eq!(derived, 1);
/// assert!(g.contains("imcl:prn", "imcl:locatedIn", "imcl:Building8"));
/// # Ok::<(), mdagent_ontology::parser::ParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Reasoner {
    rules: Vec<Rule>,
    /// Memo of skolem terms per (rule index, bound-variable signature).
    /// Purely a cache: names are content-derived, so a cold memo re-mints
    /// the identical IRIs.
    skolems: FxHashMap<(usize, Vec<Term>), Vec<Term>>,
    /// Lazily (re)built when the rule set changes.
    occurrences: Option<OccurrenceIndex>,
    /// Counters from the most recent semi-naive run.
    last_stats: ReasonerStats,
}

impl Reasoner {
    /// Creates a reasoner with no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a reasoner preloaded with the RDFS/OWL-lite axiom rules
    /// (see [`axiom_rules`]).
    pub fn with_axioms(graph: &mut Graph) -> Self {
        let mut r = Reasoner::new();
        r.add_rules(axiom_rules(graph));
        r
    }

    /// Adds one rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
        self.occurrences = None;
    }

    /// Adds many rules.
    pub fn add_rules(&mut self, rules: impl IntoIterator<Item = Rule>) {
        self.rules.extend(rules);
        self.occurrences = None;
    }

    /// The current rule set.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Profiling counters from the most recent [`Reasoner::materialize`]
    /// or [`Reasoner::materialize_incremental`] run. The naive reference
    /// evaluator does not update these.
    pub fn last_stats(&self) -> &ReasonerStats {
        &self.last_stats
    }

    /// Clears the skolem memo. Required before reusing one reasoner
    /// against a *different* graph: memoized terms are relative to the
    /// interner they were minted in, and skolem names are content-derived
    /// anyway, so a cold memo re-mints identical IRIs.
    pub fn reset_skolem_memo(&mut self) {
        self.skolems.clear();
    }

    /// Runs all rules to fixpoint, inserting derivations into `graph`.
    /// Returns the number of new triples added.
    pub fn materialize(&mut self, graph: &mut Graph) -> usize {
        let seed: Vec<Triple> = graph.store().iter().copied().collect();
        self.run_seminaive(graph, seed)
    }

    /// Extends an already-materialized graph after `delta` is asserted.
    ///
    /// Every delta triple is inserted (if absent) and used to seed the
    /// delta-driven fixpoint, so only consequences of the delta are
    /// recomputed. The rest of the store is assumed closed under the
    /// current rules — exactly the state [`Reasoner::materialize`] leaves
    /// behind. Returns the number of *derived* triples added (delta
    /// insertions are not counted).
    pub fn materialize_incremental(
        &mut self,
        graph: &mut Graph,
        delta: impl IntoIterator<Item = Triple>,
    ) -> usize {
        let mut seed = Vec::new();
        for t in delta {
            graph.add_triple(t);
            seed.push(t);
        }
        self.run_seminaive(graph, seed)
    }

    fn run_seminaive(&mut self, graph: &mut Graph, mut delta: Vec<Triple>) -> usize {
        let occ = self
            .occurrences
            .take()
            .unwrap_or_else(|| build_occurrences(&self.rules));
        let mut stats = ReasonerStats::default();
        let mut touched = vec![false; self.rules.len()];
        let mut added_total = 0usize;
        let mut fresh_set: FxHashSet<Triple> = FxHashSet::default();
        for round in 0..MAX_ROUNDS {
            fresh_set.clear();
            stats.rounds += 1;
            stats.delta_sizes.push(delta.len());
            touched.iter_mut().for_each(|t| *t = false);
            let mut fresh: Vec<Triple> = Vec::new();
            {
                let (interner, store) = graph.split_mut();
                if round == 0 {
                    for &ri in &occ.pattern_free {
                        touched[ri] = true;
                        stats.seed_evaluations += 1;
                        self.fire_seeded(
                            interner,
                            store,
                            ri,
                            &occ.skolem_vars[ri],
                            None,
                            &mut fresh_set,
                            &mut fresh,
                        );
                    }
                }
                for &t in &delta {
                    if let Some(hits) = occ.by_predicate.get(&t.p) {
                        for &(ri, ai) in hits {
                            touched[ri] = true;
                            stats.seed_evaluations += 1;
                            self.fire_seeded(
                                interner,
                                store,
                                ri,
                                &occ.skolem_vars[ri],
                                Some((ai, t)),
                                &mut fresh_set,
                                &mut fresh,
                            );
                        }
                    }
                    for &(ri, ai) in &occ.any_predicate {
                        touched[ri] = true;
                        stats.seed_evaluations += 1;
                        self.fire_seeded(
                            interner,
                            store,
                            ri,
                            &occ.skolem_vars[ri],
                            Some((ai, t)),
                            &mut fresh_set,
                            &mut fresh,
                        );
                    }
                }
            }
            let evaluated = touched.iter().filter(|&&t| t).count();
            stats.rules_evaluated += evaluated;
            stats.rules_skipped += self.rules.len() - evaluated;
            if fresh.is_empty() {
                break;
            }
            for &t in &fresh {
                graph.add_triple(t);
            }
            added_total += fresh.len();
            delta = fresh;
        }
        self.occurrences = Some(occ);
        stats.facts_derived = added_total;
        self.last_stats = stats;
        added_total
    }

    /// Evaluates one rule with premise `seed.0` pre-bound to the delta
    /// triple `seed.1` (or with no seeding for pattern-free rules),
    /// pushing novel conclusions into `fresh`.
    #[allow(clippy::too_many_arguments)]
    fn fire_seeded(
        &mut self,
        interner: &mut Interner,
        store: &Store,
        rule_idx: usize,
        skolem_vars: &[VarId],
        seed: Option<(usize, Triple)>,
        fresh_set: &mut FxHashSet<Triple>,
        fresh: &mut Vec<Triple>,
    ) {
        let rule = &self.rules[rule_idx];
        let memo = &mut self.skolems;
        let mut binding: Vec<Option<Term>> = vec![None; rule.var_count()];
        let mut patterns: Vec<TriplePattern> = Vec::new();
        let mut builtins: Vec<BuiltinAtom> = Vec::new();
        for (ai, atom) in rule.premises.iter().enumerate() {
            match atom {
                RuleAtom::Pattern(p) => match seed {
                    Some((si, t)) if si == ai => {
                        if !unify_pattern(p, t, &mut binding) {
                            return;
                        }
                    }
                    _ => patterns.push(*p),
                },
                RuleAtom::Builtin(b) => builtins.push(*b),
            }
        }
        solve_rest(
            store,
            &mut patterns,
            &mut builtins,
            &mut binding,
            &mut |b| {
                if skolem_vars.is_empty() {
                    for conclusion in &rule.conclusions {
                        if let Some(t) = conclusion.instantiate(b) {
                            if !store.contains(&t) && fresh_set.insert(t) {
                                fresh.push(t);
                            }
                        }
                    }
                } else {
                    let mut full = b.to_vec();
                    apply_skolems(memo, rule_idx, rule, interner, skolem_vars, &mut full);
                    for conclusion in &rule.conclusions {
                        if let Some(t) = conclusion.instantiate(&full) {
                            if !store.contains(&t) && fresh_set.insert(t) {
                                fresh.push(t);
                            }
                        }
                    }
                }
            },
        );
    }

    /// Reference implementation: the naive evaluate-everything-per-round
    /// fixpoint, joining premises in textual order with `Vec`-scan
    /// deduplication. Kept verbatim from the pre-semi-naive engine for
    /// differential tests and benchmark baselines; derives exactly the
    /// same closure as [`Reasoner::materialize`] (skolem names are
    /// content-derived in both).
    pub fn materialize_naive(&mut self, graph: &mut Graph) -> usize {
        let mut added_total = 0usize;
        for _round in 0..MAX_ROUNDS {
            let mut new_triples: Vec<Triple> = Vec::new();
            for rule_idx in 0..self.rules.len() {
                let bindings = match_rule_textual(graph.store(), &self.rules[rule_idx]);
                let skolem_vars = self.rules[rule_idx].skolem_vars();
                for mut binding in bindings {
                    if !skolem_vars.is_empty() {
                        apply_skolems(
                            &mut self.skolems,
                            rule_idx,
                            &self.rules[rule_idx],
                            graph.interner_mut(),
                            &skolem_vars,
                            &mut binding,
                        );
                    }
                    for conclusion in &self.rules[rule_idx].conclusions {
                        if let Some(t) = conclusion.instantiate(&binding) {
                            if !graph.store().contains(&t) && !new_triples.contains(&t) {
                                new_triples.push(t);
                            }
                        }
                    }
                }
            }
            if new_triples.is_empty() {
                break;
            }
            for t in new_triples {
                if graph.add_triple(t) {
                    added_total += 1;
                }
            }
        }
        added_total
    }
}

/// FNV-1a, the 64-bit flavor; tiny and dependency-free, used only to
/// derive skolem IRI names from firing signatures.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Binds skolem variables to IRIs derived from the rule name and the
/// rendered bound-variable signature: `skolem:{rule}#{hash16}`. The same
/// firing always mints the same IRI, in any engine, in any evaluation
/// order — which is what makes naive and semi-naive closures identical.
fn apply_skolems(
    memo: &mut FxHashMap<(usize, Vec<Term>), Vec<Term>>,
    rule_idx: usize,
    rule: &Rule,
    interner: &mut Interner,
    skolem_vars: &[VarId],
    binding: &mut [Option<Term>],
) {
    // Signature: the values of all *bound* variables, in table order.
    let signature: Vec<Term> = binding.iter().flatten().copied().collect();
    let key = (rule_idx, signature);
    if let Some(existing) = memo.get(&key) {
        for (var, term) in skolem_vars.iter().zip(existing) {
            binding[var.0 as usize] = Some(*term);
        }
        return;
    }
    let mut minted = Vec::with_capacity(skolem_vars.len());
    for (pos, var) in skolem_vars.iter().enumerate() {
        let mut h = Fnv64::new();
        h.update(rule.name.as_bytes());
        h.update(&[0xff]);
        h.update(&pos.to_le_bytes());
        for &t in &key.1 {
            h.update(&[0xfe]);
            h.update(t.display(interner).to_string().as_bytes());
        }
        let iri = format!("skolem:{}#{:016x}", rule.name, h.finish());
        let term = Term::Iri(interner.intern(&iri));
        binding[var.0 as usize] = Some(term);
        minted.push(term);
    }
    memo.insert(key, minted);
}

/// Unifies a ground triple against a pattern, extending `binding` with the
/// pattern's variables. Returns `false` (leaving `binding` untouched) on a
/// ground-term mismatch, a conflict with an existing binding, or a
/// repeated variable matching two different terms.
pub fn unify_pattern(
    pattern: &TriplePattern,
    triple: Triple,
    binding: &mut [Option<Term>],
) -> bool {
    let mut staged: [(u32, Term); 3] = [(0, triple.s); 3];
    let mut staged_len = 0usize;
    for (pt, actual) in [
        (pattern.s, triple.s),
        (pattern.p, triple.p),
        (pattern.o, triple.o),
    ] {
        match pt {
            PatternTerm::Ground(g) => {
                if g != actual {
                    return false;
                }
            }
            PatternTerm::Var(v) => {
                let earlier = staged[..staged_len]
                    .iter()
                    .find(|(idx, _)| *idx == v.0)
                    .map(|(_, t)| *t)
                    .or_else(|| binding.get(v.0 as usize).copied().flatten());
                match earlier {
                    Some(existing) if existing != actual => return false,
                    Some(_) => {}
                    None => {
                        staged[staged_len] = (v.0, actual);
                        staged_len += 1;
                    }
                }
            }
        }
    }
    for &(idx, t) in &staged[..staged_len] {
        binding[idx as usize] = Some(t);
    }
    true
}

/// Exact number of stored triples matching `pattern` under `binding`
/// (upper bound when the pattern repeats an unbound variable). O(1).
fn pattern_cost(store: &Store, pattern: &TriplePattern, binding: &[Option<Term>]) -> usize {
    let resolve = |pt: PatternTerm| -> Option<Term> {
        match pt {
            PatternTerm::Ground(t) => Some(t),
            PatternTerm::Var(v) => binding.get(v.0 as usize).copied().flatten(),
        }
    };
    store.count_match(resolve(pattern.s), resolve(pattern.p), resolve(pattern.o))
}

fn builtin_ready(b: &BuiltinAtom, binding: &[Option<Term>]) -> bool {
    let bound = |pt: PatternTerm| -> bool {
        match pt {
            PatternTerm::Ground(_) => true,
            PatternTerm::Var(v) => binding.get(v.0 as usize).copied().flatten().is_some(),
        }
    };
    bound(b.lhs) && bound(b.rhs)
}

/// Greedy-ordered join over the remaining body atoms.
///
/// Builtins run the moment both arguments are bound (a false guard prunes
/// the whole branch); otherwise the cheapest remaining pattern — by exact
/// match count under the current bindings — is matched next through the
/// store's in-place callback path. `sink` is called once per satisfying
/// assignment. Builtins whose variables are never bound by any pattern
/// evaluate to false, matching the naive engine's end-of-body check.
fn solve_rest(
    store: &Store,
    patterns: &mut Vec<TriplePattern>,
    builtins: &mut Vec<BuiltinAtom>,
    binding: &mut Vec<Option<Term>>,
    sink: &mut dyn FnMut(&[Option<Term>]),
) {
    if let Some(pos) = builtins.iter().position(|b| builtin_ready(b, binding)) {
        let guard = builtins.swap_remove(pos);
        if guard.eval(binding) {
            solve_rest(store, patterns, builtins, binding, sink);
        }
        builtins.push(guard);
        return;
    }
    if patterns.is_empty() {
        // Any builtin still unresolved here has a forever-unbound variable
        // and can never hold.
        if builtins.is_empty() {
            sink(binding);
        }
        return;
    }
    let mut best = 0usize;
    let mut best_cost = usize::MAX;
    for (i, p) in patterns.iter().enumerate() {
        let cost = pattern_cost(store, p, binding);
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    if best_cost == 0 {
        return;
    }
    let pat = patterns.swap_remove(best);
    store.match_pattern_in_place(&pat, binding, |b| {
        solve_rest(store, patterns, builtins, b, sink);
    });
    patterns.push(pat);
}

/// Computes every satisfying assignment of `rule`'s premises against
/// `store`, joining through the greedy planner (cheapest pattern first,
/// builtins as soon as bound). This is the engine behind
/// [`crate::query::Query::solve`].
pub fn match_rule(store: &Store, rule: &Rule) -> Vec<Vec<Option<Term>>> {
    let mut patterns: Vec<TriplePattern> = Vec::new();
    let mut builtins: Vec<BuiltinAtom> = Vec::new();
    for atom in &rule.premises {
        match atom {
            RuleAtom::Pattern(p) => patterns.push(*p),
            RuleAtom::Builtin(b) => builtins.push(*b),
        }
    }
    let mut binding: Vec<Option<Term>> = vec![None; rule.var_count()];
    let mut results = Vec::new();
    solve_rest(
        store,
        &mut patterns,
        &mut builtins,
        &mut binding,
        &mut |b| {
            results.push(b.to_vec());
        },
    );
    results
}

/// The pre-planner join: premises in textual order, builtins checked after
/// all patterns, one `Vec` allocation per intermediate binding. Feeds
/// [`Reasoner::materialize_naive`] only.
fn match_rule_textual(store: &Store, rule: &Rule) -> Vec<Vec<Option<Term>>> {
    let patterns: Vec<_> = rule
        .premises
        .iter()
        .filter_map(|a| match a {
            RuleAtom::Pattern(p) => Some(*p),
            RuleAtom::Builtin(_) => None,
        })
        .collect();
    let builtins: Vec<_> = rule
        .premises
        .iter()
        .filter_map(|a| match a {
            RuleAtom::Builtin(b) => Some(*b),
            RuleAtom::Pattern(_) => None,
        })
        .collect();

    let mut results = Vec::new();
    let initial = vec![None; rule.var_count()];
    join_textual(store, &patterns, 0, initial, &mut |binding: Vec<
        Option<Term>,
    >| {
        if builtins.iter().all(|b| b.eval(&binding)) {
            results.push(binding);
        }
    });
    results
}

fn join_textual(
    store: &Store,
    patterns: &[TriplePattern],
    idx: usize,
    binding: Vec<Option<Term>>,
    sink: &mut impl FnMut(Vec<Option<Term>>),
) {
    if idx == patterns.len() {
        sink(binding);
        return;
    }
    store.match_pattern(&patterns[idx], &binding, |next| {
        join_textual(store, patterns, idx + 1, next, sink);
    });
}

/// Builds the RDFS/OWL-lite axiom rule set:
///
/// * `rdfs9`/`rdfs11` — `subClassOf` inheritance and transitivity.
/// * `rdfs5`/`rdfs7` — `subPropertyOf` transitivity and inheritance.
/// * `rdfs2`/`rdfs3` — `domain`/`range` typing.
/// * `owl-trans` — `TransitiveProperty`.
/// * `owl-sym` — `SymmetricProperty`.
/// * `owl-inv` — `inverseOf` (both directions).
/// * `owl-eqc` — `equivalentClass` implies mutual `subClassOf`.
/// * `owl-sameas-sym`/`owl-sameas-trans` — `sameAs` symmetry/transitivity.
pub fn axiom_rules(graph: &mut Graph) -> Vec<Rule> {
    let text = format!(
        "[rdfs9: (?c {sub} ?d), (?x {ty} ?c) -> (?x {ty} ?d)]\n\
         [rdfs11: (?c {sub} ?d), (?d {sub} ?e) -> (?c {sub} ?e)]\n\
         [rdfs5: (?p {subp} ?q), (?q {subp} ?r) -> (?p {subp} ?r)]\n\
         [rdfs7: (?p {subp} ?q), (?x ?p ?y) -> (?x ?q ?y)]\n\
         [rdfs2: (?p {dom} ?c), (?x ?p ?y) -> (?x {ty} ?c)]\n\
         [rdfs3: (?p {rng} ?c), (?x ?p ?y), (?y {ty} ?anyclass) -> (?y {ty} ?c)]\n\
         [owl-trans: (?p {ty} {tp}), (?x ?p ?y), (?y ?p ?z) -> (?x ?p ?z)]\n\
         [owl-sym: (?p {ty} {sp}), (?x ?p ?y) -> (?y ?p ?x)]\n\
         [owl-inv1: (?p {inv} ?q), (?x ?p ?y) -> (?y ?q ?x)]\n\
         [owl-inv2: (?p {inv} ?q), (?x ?q ?y) -> (?y ?p ?x)]\n\
         [owl-eqc1: (?c {eqc} ?d) -> (?c {sub} ?d), (?d {sub} ?c)]\n\
         [owl-sameas-sym: (?x {same} ?y) -> (?y {same} ?x)]\n\
         [owl-sameas-trans: (?x {same} ?y), (?y {same} ?z) -> (?x {same} ?z)]",
        sub = rdfs::SUB_CLASS_OF,
        subp = rdfs::SUB_PROPERTY_OF,
        dom = rdfs::DOMAIN,
        rng = rdfs::RANGE,
        ty = rdf::TYPE,
        tp = owl::TRANSITIVE_PROPERTY,
        sp = owl::SYMMETRIC_PROPERTY,
        inv = owl::INVERSE_OF,
        eqc = owl::EQUIVALENT_CLASS,
        same = owl::SAME_AS,
    );
    crate::parser::parse_rules(&text, graph).expect("axiom rules are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rules;
    use std::collections::BTreeSet;

    /// Renders a graph's triples to sorted strings so closures from
    /// different graphs (whose interners may have assigned ids in a
    /// different order) can be compared.
    fn rendered(g: &Graph) -> BTreeSet<String> {
        g.store()
            .iter()
            .map(|t| t.display(g.interner()).to_string())
            .collect()
    }

    #[test]
    fn subclass_inheritance_and_transitivity() {
        let mut g = Graph::new();
        g.add("imcl:hpLaserJet", rdfs::SUB_CLASS_OF, "imcl:Printer");
        g.add("imcl:Printer", rdfs::SUB_CLASS_OF, "imcl:Resource");
        g.add("imcl:thePrinter", rdf::TYPE, "imcl:hpLaserJet");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("imcl:hpLaserJet", rdfs::SUB_CLASS_OF, "imcl:Resource"));
        assert!(g.contains("imcl:thePrinter", rdf::TYPE, "imcl:Printer"));
        assert!(g.contains("imcl:thePrinter", rdf::TYPE, "imcl:Resource"));
    }

    #[test]
    fn transitive_property_axiom() {
        let mut g = Graph::new();
        g.add("imcl:locatedIn", rdf::TYPE, owl::TRANSITIVE_PROPERTY);
        g.add("ex:prn", "imcl:locatedIn", "ex:room");
        g.add("ex:room", "imcl:locatedIn", "ex:building");
        g.add("ex:building", "imcl:locatedIn", "ex:campus");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:prn", "imcl:locatedIn", "ex:building"));
        assert!(g.contains("ex:prn", "imcl:locatedIn", "ex:campus"));
        assert!(g.contains("ex:room", "imcl:locatedIn", "ex:campus"));
    }

    #[test]
    fn symmetric_and_inverse_axioms() {
        let mut g = Graph::new();
        g.add("ex:adjacentTo", rdf::TYPE, owl::SYMMETRIC_PROPERTY);
        g.add("ex:a", "ex:adjacentTo", "ex:b");
        g.add("ex:contains", owl::INVERSE_OF, "imcl:locatedIn");
        g.add("ex:room", "ex:contains", "ex:prn");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:b", "ex:adjacentTo", "ex:a"));
        assert!(g.contains("ex:prn", "imcl:locatedIn", "ex:room"));
    }

    #[test]
    fn equivalent_class_gives_mutual_subclass() {
        let mut g = Graph::new();
        g.add("ex:Laptop", owl::EQUIVALENT_CLASS, "ex:NotebookComputer");
        g.add("ex:mine", rdf::TYPE, "ex:Laptop");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:mine", rdf::TYPE, "ex:NotebookComputer"));
    }

    #[test]
    fn domain_typing() {
        let mut g = Graph::new();
        g.add("ex:plays", rdfs::DOMAIN, "ex:MediaPlayer");
        g.add("ex:app1", "ex:plays", "ex:track1");
        let mut r = Reasoner::with_axioms(&mut g);
        r.materialize(&mut g);
        assert!(g.contains("ex:app1", rdf::TYPE, "ex:MediaPlayer"));
    }

    #[test]
    fn materialization_is_idempotent() {
        let mut g = Graph::new();
        g.add("a", rdfs::SUB_CLASS_OF, "b");
        g.add("b", rdfs::SUB_CLASS_OF, "c");
        let mut r = Reasoner::with_axioms(&mut g);
        let first = r.materialize(&mut g);
        assert!(first > 0);
        let second = r.materialize(&mut g);
        assert_eq!(second, 0, "second run derives nothing new");
    }

    #[test]
    fn skolemization_is_stable_across_rounds() {
        let mut g = Graph::new();
        g.add("ex:x", "ex:p", "ex:y");
        let rules = parse_rules("[mk: (?a ex:p ?b) -> (?act ex:about ?a)]", &mut g).unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        let added = r.materialize(&mut g);
        // Exactly one skolem triple; re-running adds nothing.
        assert_eq!(added, 1);
        assert_eq!(r.materialize(&mut g), 0);
        let actions = g
            .store()
            .iter()
            .filter(|t| g.term_to_string(t.p) == "ex:about")
            .count();
        assert_eq!(actions, 1);
    }

    #[test]
    fn skolem_names_are_content_derived() {
        // Two independent reasoners over independently built graphs mint
        // the identical skolem IRI for the same firing.
        let build = || {
            let mut g = Graph::new();
            g.add("ex:x", "ex:p", "ex:y");
            let rules = parse_rules("[mk: (?a ex:p ?b) -> (?act ex:about ?a)]", &mut g).unwrap();
            let mut r = Reasoner::new();
            r.add_rules(rules);
            r.materialize(&mut g);
            rendered(&g)
        };
        assert_eq!(build(), build());
        // And the memo is a pure cache: a fresh reasoner re-derives the
        // same name on an already-materialized graph, adding nothing.
        let mut g = Graph::new();
        g.add("ex:x", "ex:p", "ex:y");
        let rules = parse_rules("[mk: (?a ex:p ?b) -> (?act ex:about ?a)]", &mut g).unwrap();
        let mut r1 = Reasoner::new();
        r1.add_rules(rules.clone());
        assert_eq!(r1.materialize(&mut g), 1);
        let mut r2 = Reasoner::new();
        r2.add_rules(rules);
        assert_eq!(r2.materialize(&mut g), 0, "cold memo mints identical IRIs");
    }

    #[test]
    fn builtin_guard_prunes_firings() {
        let mut g = Graph::new();
        let fast = g.int_lit(300);
        let slow = g.int_lit(3000);
        g.add_with_object("ex:linkA", "ex:rt", fast);
        g.add_with_object("ex:linkB", "ex:rt", slow);
        let rules = parse_rules(
            "[ok: (?l ex:rt ?t), lessThan(?t, '1000'^^xsd:double) -> (?l ex:usable 'yes')]",
            &mut g,
        )
        .unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        assert!(
            g.contains("ex:linkA", "ex:usable", "'yes'") || {
                // 'yes' is a string literal, check via objects_of
                let o = g.objects_of("ex:linkA", "ex:usable");
                !o.is_empty()
            }
        );
        assert!(g.objects_of("ex:linkB", "ex:usable").is_empty());
    }

    #[test]
    fn derived_closure_is_sound_for_chains() {
        // locatedIn chain of length n: closure adds n*(n-1)/2 - (n-1) pairs... just
        // verify every derived pair respects reachability.
        let mut g = Graph::new();
        let n = 6;
        for i in 0..n {
            g.add(
                &format!("ex:n{i}"),
                "imcl:locatedIn",
                &format!("ex:n{}", i + 1),
            );
        }
        let rules = parse_rules(
            "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]",
            &mut g,
        )
        .unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        // All pairs (i, j) with i < j must now be present: (n+1) nodes.
        for i in 0..=n {
            for j in (i + 1)..=n {
                assert!(
                    g.contains(&format!("ex:n{i}"), "imcl:locatedIn", &format!("ex:n{j}")),
                    "missing ({i},{j})"
                );
            }
        }
        let expected = (n + 1) * n / 2;
        let actual = g
            .store()
            .iter()
            .filter(|t| Some(t.p) == g.try_iri("imcl:locatedIn"))
            .count();
        assert_eq!(
            actual, expected,
            "closure is exactly the reachability relation"
        );
    }

    /// Builds a mixed workload exercising every axiom family plus a
    /// skolemizing custom rule and a builtin guard.
    fn mixed_workload() -> (Graph, Vec<Rule>) {
        let mut g = Graph::new();
        for i in 0..5 {
            g.add(
                &format!("ex:C{i}"),
                rdfs::SUB_CLASS_OF,
                &format!("ex:C{}", i + 1),
            );
            g.add(&format!("ex:inst{i}"), rdf::TYPE, &format!("ex:C{i}"));
        }
        g.add("imcl:locatedIn", rdf::TYPE, owl::TRANSITIVE_PROPERTY);
        for i in 0..6 {
            g.add(
                &format!("ex:s{i}"),
                "imcl:locatedIn",
                &format!("ex:s{}", i + 1),
            );
        }
        g.add("ex:near", rdf::TYPE, owl::SYMMETRIC_PROPERTY);
        g.add("ex:s0", "ex:near", "ex:s3");
        g.add("ex:hosts", owl::INVERSE_OF, "imcl:locatedIn");
        g.add("ex:plays", rdfs::DOMAIN, "ex:MediaPlayer");
        g.add("ex:app", "ex:plays", "ex:track");
        let rt = g.int_lit(120);
        g.add_with_object("ex:link", "ex:rt", rt);
        let mut rules = axiom_rules(&mut g);
        rules.extend(
            parse_rules(
                "[mk: (?x imcl:locatedIn ?y), (?x ex:near ?z) -> (?act ex:visits ?z)]\n\
                 [guard: (?l ex:rt ?t), lessThan(?t, '1000'^^xsd:double) -> (?l ex:fast 'y')]",
                &mut g,
            )
            .unwrap(),
        );
        (g, rules)
    }

    #[test]
    fn seminaive_closure_equals_naive_closure() {
        let (g, rules) = mixed_workload();
        let mut g_fast = g.clone();
        let mut g_slow = g;
        let mut fast = Reasoner::new();
        fast.add_rules(rules.clone());
        let mut slow = Reasoner::new();
        slow.add_rules(rules);
        let added_fast = fast.materialize(&mut g_fast);
        let added_slow = slow.materialize_naive(&mut g_slow);
        assert_eq!(added_fast, added_slow, "same number of derivations");
        assert_eq!(
            rendered(&g_fast),
            rendered(&g_slow),
            "bit-identical closure"
        );
    }

    #[test]
    fn incremental_matches_full_rematerialization() {
        let (g, rules) = mixed_workload();
        let mut g_inc = g.clone();
        let mut r_inc = Reasoner::new();
        r_inc.add_rules(rules.clone());
        r_inc.materialize(&mut g_inc);

        // Assert a new fact that interacts with the transitive chain.
        let mut g_full = g;
        let delta = {
            let s = g_inc.iri("ex:s7");
            let p = g_inc.iri("imcl:locatedIn");
            let o = g_inc.iri("ex:s8");
            Triple::new(s, p, o)
        };
        let inc_added = r_inc.materialize_incremental(&mut g_inc, [delta]);
        assert!(inc_added > 0, "delta has consequences");

        g_full.add("ex:s7", "imcl:locatedIn", "ex:s8");
        let mut r_full = Reasoner::new();
        r_full.add_rules(rules);
        r_full.materialize(&mut g_full);
        assert_eq!(rendered(&g_inc), rendered(&g_full));
    }

    #[test]
    fn incremental_on_closed_graph_is_a_noop() {
        let (mut g, rules) = mixed_workload();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        // Re-asserting an existing triple derives nothing new.
        let existing = *g.store().iter().next().unwrap();
        assert_eq!(r.materialize_incremental(&mut g, [existing]), 0);
    }

    #[test]
    fn planner_join_matches_textual_join() {
        let (mut g, rules) = mixed_workload();
        let mut r = Reasoner::new();
        r.add_rules(rules.clone());
        r.materialize(&mut g);
        for rule in &rules {
            let mut planned = match_rule(g.store(), rule);
            let mut textual = match_rule_textual(g.store(), rule);
            planned.sort();
            textual.sort();
            assert_eq!(planned, textual, "rule {}", rule.name);
        }
    }

    #[test]
    fn variable_predicate_rules_chain_incrementally() {
        // rdfs7-style rule where the delta's predicate position is a
        // variable: must be seeded via the any-predicate bucket.
        let mut g = Graph::new();
        g.add("ex:p", rdfs::SUB_PROPERTY_OF, "ex:q");
        let rules = axiom_rules(&mut g);
        let mut r = Reasoner::new();
        r.add_rules(rules);
        r.materialize(&mut g);
        let delta = {
            let s = g.iri("ex:a");
            let p = g.iri("ex:p");
            let o = g.iri("ex:b");
            Triple::new(s, p, o)
        };
        r.materialize_incremental(&mut g, [delta]);
        assert!(g.contains("ex:a", "ex:q", "ex:b"), "rdfs7 fired on delta");
    }

    #[test]
    fn stats_track_rounds_and_skips() {
        let mut g = Graph::new();
        g.add("imcl:prn", "imcl:locatedIn", "imcl:Office821");
        g.add("imcl:Office821", "imcl:locatedIn", "imcl:Building8");
        g.add("imcl:Building8", "imcl:locatedIn", "imcl:Campus");
        let rules = crate::parser::parse_rules(
            "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]\
             [Idle: (?x imcl:neverSeen ?y) -> (?y imcl:neverSeen ?x)]",
            &mut g,
        )
        .unwrap();
        let mut r = Reasoner::new();
        r.add_rules(rules);
        let derived = r.materialize(&mut g);
        let stats = r.last_stats().clone();
        assert_eq!(stats.facts_derived, derived);
        assert!(derived > 0);
        assert!(stats.rounds >= 2, "transitive closure needs 2+ rounds");
        assert_eq!(stats.delta_sizes.len(), stats.rounds);
        assert_eq!(stats.delta_sizes[0], 3, "round 0 delta is the whole store");
        assert!(stats.rules_evaluated >= 1);
        assert!(
            stats.rules_skipped >= 1,
            "occurrence index must skip the idle rule in later rounds"
        );
        assert!(stats.seed_evaluations >= stats.rules_evaluated);
        assert_eq!(stats.max_delta(), 3);

        // Incremental run resets the counters.
        let delta = {
            let s = g.iri("imcl:Campus");
            let p = g.iri("imcl:locatedIn");
            let o = g.iri("imcl:Earth");
            Triple::new(s, p, o)
        };
        r.materialize_incremental(&mut g, [delta]);
        let stats2 = r.last_stats();
        assert_eq!(stats2.delta_sizes[0], 1);
        assert!(stats2.facts_derived >= 3, "closure extends to imcl:Earth");
    }

    #[test]
    fn unify_pattern_rejects_conflicts() {
        let mut g = Graph::new();
        let p = g.iri("ex:p");
        let a = g.iri("ex:a");
        let b = g.iri("ex:b");
        // (?x ex:p ?x) vs (a p b): repeated var mismatch.
        let pat = TriplePattern::new(VarId(0), p, VarId(0));
        let mut binding = vec![None];
        assert!(!unify_pattern(&pat, Triple::new(a, p, b), &mut binding));
        assert_eq!(binding, vec![None], "failed unify leaves binding untouched");
        // (?x ex:p ?x) vs (a p a): binds.
        assert!(unify_pattern(&pat, Triple::new(a, p, a), &mut binding));
        assert_eq!(binding, vec![Some(a)]);
        // Existing binding conflicts.
        let pat2 = TriplePattern::new(VarId(0), p, VarId(1));
        let mut binding2 = vec![Some(b), None];
        assert!(!unify_pattern(&pat2, Triple::new(a, p, b), &mut binding2));
        // Ground mismatch.
        let pat3 = TriplePattern::new(a, p, b);
        assert!(!unify_pattern(&pat3, Triple::new(b, p, b), &mut []));
    }
}
