//! Turtle-lite triple parser for resource descriptions (paper Fig. 5).

use crate::graph::Graph;
use crate::parser::lexer::{tokenize, Token};
use crate::parser::{syntax_error, ParseError};
use crate::term::{Literal, Term};
use crate::triple::Triple;

/// Parses a simple Turtle-like document into `graph`.
///
/// Grammar per statement: `subject predicate object .` where subject and
/// predicate are prefixed names or `<IRIs>` and the object may additionally
/// be a (typed) literal or a bare number. `@prefix` directives are accepted
/// and ignored (prefixed names are used verbatim as identifiers throughout
/// MDAgent). Returns the number of triples added.
///
/// # Errors
///
/// Returns a [`ParseError`] on the first malformed statement.
///
/// # Examples
///
/// ```
/// use mdagent_ontology::{Graph, parser::parse_triples, vocab};
///
/// let mut g = Graph::new();
/// let n = parse_triples(
///     "imcl:hpLaserJet rdf:type imcl:Printer .\n\
///      imcl:hpLaserJet rdfs:comment 'hp color printer' .",
///     &mut g,
/// )?;
/// assert_eq!(n, 2);
/// assert!(g.contains("imcl:hpLaserJet", vocab::rdf::TYPE, "imcl:Printer"));
/// # Ok::<(), mdagent_ontology::parser::ParseError>(())
/// ```
pub fn parse_triples(text: &str, graph: &mut Graph) -> Result<usize, ParseError> {
    let tokens = tokenize(text)?;
    let mut pos = 0usize;
    let mut added = 0usize;
    while pos < tokens.len() {
        // @prefix name: <iri> .
        if matches!(&tokens[pos], Token::Ident(s) if s == "@prefix") {
            // Skip until the terminating dot.
            while pos < tokens.len() && tokens[pos] != Token::Dot {
                pos += 1;
            }
            if pos == tokens.len() {
                return Err(syntax_error("@prefix directive", None));
            }
            pos += 1;
            continue;
        }
        let subject = parse_iri(&tokens, &mut pos, graph, "subject")?;
        let predicate = parse_iri(&tokens, &mut pos, graph, "predicate")?;
        let object = parse_object(&tokens, &mut pos, graph)?;
        match tokens.get(pos) {
            Some(Token::Dot) => pos += 1,
            other => return Err(syntax_error("statement terminator", other)),
        }
        if graph.add_triple(Triple::new(subject, predicate, object)) {
            added += 1;
        }
    }
    Ok(added)
}

fn parse_iri(
    tokens: &[Token],
    pos: &mut usize,
    graph: &mut Graph,
    context: &'static str,
) -> Result<Term, ParseError> {
    match tokens.get(*pos) {
        Some(Token::Ident(name)) => {
            *pos += 1;
            Ok(graph.iri(name))
        }
        Some(Token::FullIri(iri)) => {
            *pos += 1;
            Ok(graph.iri(iri))
        }
        other => Err(syntax_error(context, other)),
    }
}

fn parse_object(tokens: &[Token], pos: &mut usize, graph: &mut Graph) -> Result<Term, ParseError> {
    match tokens.get(*pos) {
        Some(Token::Ident(name)) => {
            *pos += 1;
            Ok(graph.iri(name))
        }
        Some(Token::FullIri(iri)) => {
            *pos += 1;
            Ok(graph.iri(iri))
        }
        Some(Token::Literal(lex, ty)) => {
            let term = match ty.as_deref() {
                None | Some("xsd:string") => graph.str_lit(lex),
                Some("xsd:integer") | Some("xsd:int") | Some("xsd:long") => {
                    Term::Literal(Literal::Int(
                        lex.parse()
                            .map_err(|_| ParseError::BadNumber(lex.clone()))?,
                    ))
                }
                Some("xsd:double") | Some("xsd:float") | Some("xsd:decimal") => {
                    Term::Literal(Literal::double(
                        lex.parse()
                            .map_err(|_| ParseError::BadNumber(lex.clone()))?,
                    ))
                }
                Some("xsd:boolean") => match lex.as_str() {
                    "true" | "1" => Term::Literal(Literal::Bool(true)),
                    "false" | "0" => Term::Literal(Literal::Bool(false)),
                    _ => return Err(ParseError::BadNumber(lex.clone())),
                },
                Some(other_ty) => {
                    let tagged = format!("{lex}^^{other_ty}");
                    graph.str_lit(&tagged)
                }
            };
            *pos += 1;
            Ok(term)
        }
        Some(Token::Number(n)) => {
            let term = if n.contains('.') {
                Term::Literal(Literal::double(
                    n.parse().map_err(|_| ParseError::BadNumber(n.clone()))?,
                ))
            } else {
                Term::Literal(Literal::Int(
                    n.parse().map_err(|_| ParseError::BadNumber(n.clone()))?,
                ))
            };
            *pos += 1;
            Ok(term)
        }
        other => Err(syntax_error("object", other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    /// The paper's Fig. 5 description rendered in our Turtle-lite form.
    const FIG5: &str = r#"
        @prefix imcl: <http://imcl.comp.polyu.edu.hk/ont#> .
        imcl:hpLaserJet rdf:type owl:Class .
        imcl:hpLaserJet rdfs:comment 'hp color printer' .
        imcl:hpLaserJet rdfs:subClassOf imcl:Printer .
        imcl:hpLaserJet rdfs:subClassOf imcl:Substitutable .
        imcl:hpLaserJet rdfs:subClassOf imcl:UnTransferable .
        imcl:locatedIn rdf:type owl:ObjectProperty .
        imcl:locatedIn rdfs:range imcl:Office821 .
        imcl:locatedIn rdf:type owl:TransitiveProperty .
    "#;

    #[test]
    fn parses_the_fig5_description() {
        let mut g = Graph::new();
        let n = parse_triples(FIG5, &mut g).unwrap();
        assert_eq!(n, 8);
        assert!(g.contains("imcl:hpLaserJet", vocab::rdfs::SUB_CLASS_OF, "imcl:Printer"));
        assert!(g.contains(
            "imcl:locatedIn",
            vocab::rdf::TYPE,
            vocab::owl::TRANSITIVE_PROPERTY
        ));
        let comments = g.objects_of("imcl:hpLaserJet", vocab::rdfs::COMMENT);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].is_literal());
    }

    #[test]
    fn literals_of_every_kind() {
        let mut g = Graph::new();
        let n = parse_triples(
            "ex:n ex:rt '350'^^xsd:double .\n\
             ex:n ex:hops 3 .\n\
             ex:n ex:up 'true'^^xsd:boolean .\n\
             ex:n ex:name 'gw' .",
            &mut g,
        )
        .unwrap();
        assert_eq!(n, 4);
        let rt = g.objects_of("ex:n", "ex:rt");
        assert_eq!(rt[0].as_f64(), Some(350.0));
        let hops = g.objects_of("ex:n", "ex:hops");
        assert_eq!(hops[0].as_f64(), Some(3.0));
    }

    #[test]
    fn duplicates_do_not_count() {
        let mut g = Graph::new();
        let n = parse_triples("ex:a ex:p ex:b .\nex:a ex:p ex:b .", &mut g).unwrap();
        assert_eq!(n, 1);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn malformed_statements_error() {
        let mut g = Graph::new();
        assert!(parse_triples("ex:a ex:p", &mut g).is_err());
        assert!(
            parse_triples("ex:a ex:p ex:b", &mut g).is_err(),
            "missing dot"
        );
        assert!(
            parse_triples("'lit' ex:p ex:b .", &mut g).is_err(),
            "literal subject"
        );
        assert!(
            parse_triples("@prefix ex: <http://x>", &mut g).is_err(),
            "unterminated prefix"
        );
    }

    #[test]
    fn unknown_datatype_degrades_to_tagged_string() {
        let mut g = Graph::new();
        parse_triples("ex:a ex:p 'v'^^ex:custom .", &mut g).unwrap();
        let o = g.objects_of("ex:a", "ex:p");
        assert_eq!(g.term_to_string(o[0]), "'v^^ex:custom'");
    }
}
