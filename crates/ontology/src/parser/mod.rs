//! Text formats: Jena-style rules and Turtle-lite triples.
//!
//! The paper expresses its reasoning rules in Jena's rule syntax (Fig. 6)
//! and its resource descriptions in OWL/RDF (Fig. 5). These parsers accept
//! both, so the shipped rule base is the paper's text verbatim.

mod lexer;
mod rules;
mod triples;

pub use lexer::{tokenize, LexError, Token};
pub use rules::parse_rules;
pub use triples::parse_triples;

use std::fmt;

/// Error from the rule/triple parsers.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenizer failure.
    Lex(LexError),
    /// Structural failure with context.
    Syntax {
        /// What was being parsed.
        context: &'static str,
        /// What was found (or "end of input").
        found: String,
    },
    /// A numeric literal did not parse.
    BadNumber(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Syntax { context, found } => {
                write!(f, "syntax error in {context}: unexpected {found}")
            }
            ParseError::BadNumber(n) => write!(f, "malformed number {n:?}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Lex(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

pub(crate) fn syntax_error(context: &'static str, found: Option<&Token>) -> ParseError {
    ParseError::Syntax {
        context,
        found: found.map_or_else(|| "end of input".to_owned(), |t| t.to_string()),
    }
}
