//! Shared tokenizer for the rule and triple grammars.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:` appearing alone (rule-name separator).
    Colon,
    /// `->`
    Arrow,
    /// `?name`
    Var(String),
    /// Bare or prefixed identifier: `lessThan`, `imcl:locatedIn`, `@prefix`.
    Ident(String),
    /// `<full-iri>`
    FullIri(String),
    /// Quoted string, possibly typed: `('printer', None)` or
    /// `('1000', Some("xsd:double"))`.
    Literal(String, Option<String>),
    /// Bare number: `1000` or `3.14`.
    Number(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::Comma => f.write_str(","),
            Token::Dot => f.write_str("."),
            Token::Colon => f.write_str(":"),
            Token::Arrow => f.write_str("->"),
            Token::Var(v) => write!(f, "?{v}"),
            Token::Ident(s) => f.write_str(s),
            Token::FullIri(s) => write!(f, "<{s}>"),
            Token::Literal(s, None) => write!(f, "'{s}'"),
            Token::Literal(s, Some(ty)) => write!(f, "'{s}'^^{ty}"),
            Token::Number(n) => f.write_str(n),
        }
    }
}

/// Error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based line of the offending character.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | ':' | '#' | '/')
}

/// Tokenizes rule/triple text. `#`-to-end-of-line and `//` comments are
/// skipped.
pub fn tokenize(text: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    return Err(LexError {
                        line,
                        message: "stray '/'".into(),
                    });
                }
            }
            '[' => {
                chars.next();
                tokens.push(Token::LBracket);
            }
            ']' => {
                chars.next();
                tokens.push(Token::RBracket);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '.' => {
                chars.next();
                tokens.push(Token::Dot);
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Token::Arrow);
                } else {
                    // Negative number.
                    let mut num = String::from("-");
                    while let Some(&d) = chars.peek() {
                        if d.is_ascii_digit() || d == '.' {
                            num.push(d);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    if num == "-" {
                        return Err(LexError {
                            line,
                            message: "stray '-'".into(),
                        });
                    }
                    // A trailing '.' is the statement terminator, not part of
                    // the number.
                    if num.ends_with('.') {
                        num.pop();
                        tokens.push(Token::Number(num));
                        tokens.push(Token::Dot);
                    } else {
                        tokens.push(Token::Number(num));
                    }
                }
            }
            '?' => {
                chars.next();
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        name.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(LexError {
                        line,
                        message: "'?' without variable name".into(),
                    });
                }
                tokens.push(Token::Var(name));
            }
            '<' => {
                chars.next();
                let mut iri = String::new();
                loop {
                    match chars.next() {
                        Some('>') => break,
                        Some('\n') | None => {
                            return Err(LexError {
                                line,
                                message: "unterminated IRI".into(),
                            })
                        }
                        Some(d) => iri.push(d),
                    }
                }
                tokens.push(Token::FullIri(iri));
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                let mut lit = String::new();
                loop {
                    match chars.next() {
                        Some(d) if d == quote => break,
                        Some('\n') | None => {
                            return Err(LexError {
                                line,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some('\\') => match chars.next() {
                            Some('n') => lit.push('\n'),
                            Some('t') => lit.push('\t'),
                            Some(other) => lit.push(other),
                            None => {
                                return Err(LexError {
                                    line,
                                    message: "dangling escape".into(),
                                })
                            }
                        },
                        Some(d) => lit.push(d),
                    }
                }
                // Optional ^^datatype suffix.
                let mut datatype = None;
                if chars.peek() == Some(&'^') {
                    chars.next();
                    if chars.next() != Some('^') {
                        return Err(LexError {
                            line,
                            message: "expected '^^' before datatype".into(),
                        });
                    }
                    let mut ty = String::new();
                    while let Some(&d) = chars.peek() {
                        if is_ident_char(d) {
                            ty.push(d);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    if ty.is_empty() {
                        return Err(LexError {
                            line,
                            message: "missing datatype after '^^'".into(),
                        });
                    }
                    datatype = Some(ty);
                }
                tokens.push(Token::Literal(lit, datatype));
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        num.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if num.ends_with('.') {
                    num.pop();
                    tokens.push(Token::Number(num));
                    tokens.push(Token::Dot);
                } else {
                    tokens.push(Token::Number(num));
                }
            }
            '@' => {
                chars.next();
                let mut name = String::from("@");
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() {
                        name.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(name));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if is_ident_char(d) {
                        name.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(name));
            }
            ':' => {
                chars.next();
                tokens.push(Token::Colon);
            }
            other => {
                return Err(LexError {
                    line,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_paper_rule1() {
        let text =
            "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]";
        let tokens = tokenize(text).unwrap();
        assert_eq!(tokens[0], Token::LBracket);
        // ':' is an identifier character (prefixed names), so the rule-name
        // colon rides along with the name; the parser strips it.
        assert_eq!(tokens[1], Token::Ident("Rule1:".into()));
        assert!(tokens.contains(&Token::Arrow));
        assert!(tokens.contains(&Token::Var("p".into())));
        assert!(tokens.contains(&Token::Ident("imcl:locatedIn".into())));
        assert_eq!(*tokens.last().unwrap(), Token::RBracket);
    }

    #[test]
    fn typed_literal_with_datatype() {
        let tokens = tokenize("lessThan(?t, '1000'^^xsd:double)").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("lessThan".into()),
                Token::LParen,
                Token::Var("t".into()),
                Token::Comma,
                Token::Literal("1000".into(), Some("xsd:double".into())),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn numbers_and_dots_disambiguate() {
        let tokens = tokenize("ex:a ex:p 42 .").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("ex:a".into()),
                Token::Ident("ex:p".into()),
                Token::Number("42".into()),
                Token::Dot,
            ]
        );
        let tokens = tokenize("2.75").unwrap();
        assert_eq!(tokens, vec![Token::Number("2.75".into())]);
        let tokens = tokenize("-5").unwrap();
        assert_eq!(tokens, vec![Token::Number("-5".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        let tokens = tokenize("# a comment\nex:a // trailing\n?x").unwrap();
        assert_eq!(
            tokens,
            vec![Token::Ident("ex:a".into()), Token::Var("x".into())]
        );
    }

    #[test]
    fn full_iris_and_prefix_directive() {
        let tokens = tokenize("@prefix imcl: <http://example.org/imcl#> .").unwrap();
        assert_eq!(tokens[0], Token::Ident("@prefix".into()));
        assert!(matches!(&tokens[1], Token::Ident(s) if s == "imcl:"));
        assert_eq!(tokens[2], Token::FullIri("http://example.org/imcl#".into()));
    }

    #[test]
    fn double_quoted_strings_and_escapes() {
        let tokens = tokenize(r#""move" 'a\'b'"#).unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Literal("move".into(), None),
                Token::Literal("a'b".into(), None),
            ]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = tokenize("ok\n  'unterminated").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        assert!(tokenize("?").is_err());
        assert!(tokenize("<open").is_err());
        assert!(tokenize("'x'^^").is_err());
    }
}
