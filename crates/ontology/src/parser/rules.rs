//! Parser for Jena-style rule text (paper Fig. 6).

use crate::fx::FxHashMap;
use crate::graph::Graph;
use crate::parser::lexer::{tokenize, Token};
use crate::parser::{syntax_error, ParseError};
use crate::rule::{BuiltinAtom, BuiltinOp, Rule, RuleAtom};
use crate::term::{Literal, Term};
use crate::triple::{PatternTerm, TriplePattern, VarId};

struct RuleParser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    graph: &'a mut Graph,
}

impl<'a> RuleParser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_token(&mut self, expected: &Token, context: &'static str) -> Result<(), ParseError> {
        match self.next() {
            Some(ref t) if t == expected => Ok(()),
            other => Err(syntax_error(context, other.as_ref())),
        }
    }

    fn parse_literal(&mut self, lex: String, datatype: Option<String>) -> Result<Term, ParseError> {
        let term = match datatype.as_deref() {
            None | Some("xsd:string") => self.graph.str_lit(&lex),
            Some("xsd:integer") | Some("xsd:int") | Some("xsd:long") => {
                Term::Literal(Literal::Int(
                    lex.parse()
                        .map_err(|_| ParseError::BadNumber(lex.clone()))?,
                ))
            }
            Some("xsd:double") | Some("xsd:float") | Some("xsd:decimal") => {
                Term::Literal(Literal::double(
                    lex.parse()
                        .map_err(|_| ParseError::BadNumber(lex.clone()))?,
                ))
            }
            Some("xsd:boolean") => match lex.as_str() {
                "true" | "1" => Term::Literal(Literal::Bool(true)),
                "false" | "0" => Term::Literal(Literal::Bool(false)),
                _ => return Err(ParseError::BadNumber(lex)),
            },
            // Unknown datatypes degrade to interned strings tagged with the type.
            Some(ty) => {
                let tagged = format!("{lex}^^{ty}");
                self.graph.str_lit(&tagged)
            }
        };
        Ok(term)
    }

    fn parse_pattern_term(
        &mut self,
        vars: &mut Vec<String>,
        var_ids: &mut FxHashMap<String, VarId>,
    ) -> Result<PatternTerm, ParseError> {
        match self.next() {
            Some(Token::Var(name)) => {
                let id = *var_ids.entry(name.clone()).or_insert_with(|| {
                    let id = VarId(vars.len() as u32);
                    vars.push(name.clone());
                    id
                });
                Ok(PatternTerm::Var(id))
            }
            Some(Token::Ident(name)) => Ok(PatternTerm::Ground(self.graph.iri(&name))),
            Some(Token::FullIri(iri)) => Ok(PatternTerm::Ground(self.graph.iri(&iri))),
            Some(Token::Literal(lex, ty)) => Ok(PatternTerm::Ground(self.parse_literal(lex, ty)?)),
            Some(Token::Number(n)) => {
                let term = if n.contains('.') {
                    Term::Literal(Literal::double(
                        n.parse().map_err(|_| ParseError::BadNumber(n.clone()))?,
                    ))
                } else {
                    Term::Literal(Literal::Int(
                        n.parse().map_err(|_| ParseError::BadNumber(n.clone()))?,
                    ))
                };
                Ok(PatternTerm::Ground(term))
            }
            other => Err(syntax_error("term", other.as_ref())),
        }
    }

    /// Parses `(?s p ?o)` or `builtin(arg, arg)`.
    fn parse_atom(
        &mut self,
        vars: &mut Vec<String>,
        var_ids: &mut FxHashMap<String, VarId>,
    ) -> Result<RuleAtom, ParseError> {
        match self.peek() {
            Some(Token::LParen) => {
                self.next();
                let s = self.parse_pattern_term(vars, var_ids)?;
                let p = self.parse_pattern_term(vars, var_ids)?;
                let o = self.parse_pattern_term(vars, var_ids)?;
                self.expect_token(&Token::RParen, "triple pattern")?;
                Ok(RuleAtom::Pattern(TriplePattern { s, p, o }))
            }
            Some(Token::Ident(name)) => {
                let Some(op) = BuiltinOp::from_name(name) else {
                    return Err(syntax_error("builtin name", self.peek()));
                };
                self.next();
                self.expect_token(&Token::LParen, "builtin arguments")?;
                let lhs = self.parse_pattern_term(vars, var_ids)?;
                self.expect_token(&Token::Comma, "builtin arguments")?;
                let rhs = self.parse_pattern_term(vars, var_ids)?;
                self.expect_token(&Token::RParen, "builtin arguments")?;
                Ok(RuleAtom::Builtin(BuiltinAtom { op, lhs, rhs }))
            }
            other => Err(syntax_error("rule atom", other)),
        }
    }

    fn parse_rule(&mut self) -> Result<Rule, ParseError> {
        self.expect_token(&Token::LBracket, "rule opening")?;
        // The lexer treats ':' as an identifier character, so "Rule1:" may
        // arrive as one token or as Ident + Colon.
        let name = match self.next() {
            Some(Token::Ident(n)) => match n.strip_suffix(':') {
                Some(stripped) => stripped.to_owned(),
                None => {
                    self.expect_token(&Token::Colon, "rule name separator")?;
                    n
                }
            },
            other => return Err(syntax_error("rule name", other.as_ref())),
        };
        let mut vars = Vec::new();
        let mut var_ids = FxHashMap::default();
        let mut premises = Vec::new();
        loop {
            premises.push(self.parse_atom(&mut vars, &mut var_ids)?);
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                }
                Some(Token::Arrow) => {
                    self.next();
                    break;
                }
                other => return Err(syntax_error("rule body", other)),
            }
        }
        let mut conclusions = Vec::new();
        loop {
            match self.parse_atom(&mut vars, &mut var_ids)? {
                RuleAtom::Pattern(p) => conclusions.push(p),
                RuleAtom::Builtin(_) => {
                    return Err(ParseError::Syntax {
                        context: "rule head",
                        found: "builtin call (heads must be triple patterns)".into(),
                    })
                }
            }
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                }
                Some(Token::RBracket) => {
                    self.next();
                    break;
                }
                other => return Err(syntax_error("rule head", other)),
            }
        }
        Ok(Rule::new(name, premises, conclusions, vars))
    }
}

/// Parses a rule file: any number of `[Name: body -> head]` blocks, with
/// `#`/`//` comments between them.
///
/// Variables are scoped per rule. Prefixed names are interned into `graph`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first lexical or structural
/// problem.
///
/// # Examples
///
/// ```
/// use mdagent_ontology::{Graph, parser::parse_rules};
///
/// let mut g = Graph::new();
/// let rules = parse_rules(
///     "[Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]",
///     &mut g,
/// )?;
/// assert_eq!(rules.len(), 1);
/// assert_eq!(rules[0].name, "Rule1");
/// assert_eq!(rules[0].var_count(), 3);
/// # Ok::<(), mdagent_ontology::parser::ParseError>(())
/// ```
pub fn parse_rules(text: &str, graph: &mut Graph) -> Result<Vec<Rule>, ParseError> {
    let tokens = tokenize(text)?;
    let mut parser = RuleParser {
        tokens,
        pos: 0,
        graph,
    };
    let mut rules = Vec::new();
    while parser.peek().is_some() {
        rules.push(parser.parse_rule()?);
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    /// The paper's Fig. 6 rule base, with its two typos fixed
    /// (`imcl:printerObj` appears once as subject-position class lookup, and
    /// `?add1`/`?addr1` are unified).
    pub const PAPER_FIG6: &str = r#"
        [Rule1: (?p imcl:locatedIn ?q), (?q imcl:locatedIn ?t) -> (?p imcl:locatedIn ?t)]
        [Rule2: (?ptr imcl:printerObj 'printer'), (?srcRsc rdf:type ?ptr), (?destRsc rdf:type ?ptr)
            -> (?srcRsc imcl:compatible ?destRsc)]
        [Rule3: (?srcRsc imcl:address ?value1), (?destRsc imcl:address ?value2),
            (?srcRsc imcl:compatible ?destRsc), (?n imcl:responseTime ?t),
            lessThan(?t, '1000'^^xsd:double)
            -> (?action imcl:actName "move"), (?action imcl:srcAddress ?value1),
               (?action imcl:destAddress ?value2)]
    "#;

    #[test]
    fn parses_the_paper_rule_base() {
        let mut g = Graph::new();
        let rules = parse_rules(PAPER_FIG6, &mut g).unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].name, "Rule1");
        assert_eq!(rules[0].premises.len(), 2);
        assert_eq!(rules[0].conclusions.len(), 1);
        assert_eq!(rules[2].premises.len(), 5);
        assert_eq!(rules[2].conclusions.len(), 3);
        // Rule3's ?action is a head-only skolem variable, like Jena makeSkolem.
        let action = rules[2].var("action").unwrap();
        assert_eq!(rules[2].skolem_vars(), [action]);
        // The typed literal parsed as a double.
        let has_thousand = rules[2].premises.iter().any(|a| match a {
            RuleAtom::Builtin(b) => {
                b.op == BuiltinOp::LessThan
                    && b.rhs.ground().and_then(|t| t.as_f64()) == Some(1000.0)
            }
            _ => false,
        });
        assert!(has_thousand);
    }

    #[test]
    fn variables_are_rule_scoped() {
        let mut g = Graph::new();
        let rules = parse_rules(
            "[A: (?x ex:p ?y) -> (?y ex:p ?x)]\n[B: (?y ex:p ?x) -> (?x ex:p ?y)]",
            &mut g,
        )
        .unwrap();
        assert_eq!(rules[0].var("x"), Some(VarId(0)));
        assert_eq!(rules[1].var("y"), Some(VarId(0)), "fresh table per rule");
    }

    #[test]
    fn bare_numbers_in_rules() {
        let mut g = Graph::new();
        let rules = parse_rules(
            "[N: (?n ex:rt ?t), lessThan(?t, 500) -> (?n ex:fast 'yes')]",
            &mut g,
        )
        .unwrap();
        let RuleAtom::Builtin(b) = rules[0].premises[1] else {
            panic!("expected builtin")
        };
        assert_eq!(b.rhs.ground().unwrap().as_f64(), Some(500.0));
    }

    #[test]
    fn builtin_in_head_is_rejected() {
        let mut g = Graph::new();
        let err = parse_rules("[X: (?a ex:p ?b) -> lessThan(?a, ?b)]", &mut g).unwrap_err();
        assert!(err.to_string().contains("head"));
    }

    #[test]
    fn unknown_builtin_is_rejected() {
        let mut g = Graph::new();
        assert!(parse_rules("[X: frobnicate(?a, ?b) -> (?a ex:p ?b)]", &mut g).is_err());
    }

    #[test]
    fn truncated_rules_error_cleanly() {
        let mut g = Graph::new();
        for bad in [
            "[X: (?a ex:p ?b)",
            "[X (?a ex:p ?b) -> (?a ex:p ?b)]",
            "[X: (?a ex:p) -> (?a ex:p ?b)]",
            "[",
        ] {
            assert!(parse_rules(bad, &mut g).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn rdf_type_interned_consistently() {
        let mut g = Graph::new();
        g.add("ex:inst", vocab::rdf::TYPE, "ex:T");
        let rules = parse_rules("[T: (?x rdf:type ex:T) -> (?x ex:checked 'y')]", &mut g).unwrap();
        let RuleAtom::Pattern(p) = rules[0].premises[0] else {
            panic!()
        };
        assert_eq!(p.p.ground(), g.try_iri(vocab::rdf::TYPE));
    }
}
