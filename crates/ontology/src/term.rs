//! RDF terms: interned IRIs and typed literals.
//!
//! Terms are small `Copy` values so the triple store and the rule engine can
//! join on them cheaply; the lexical forms live in an [`Interner`].

use crate::fx::FxHashMap;
use std::fmt;

/// Interned identifier of an IRI or literal lexical form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub(crate) u32);

/// String interner shared by a knowledge base.
///
/// # Examples
///
/// ```
/// use mdagent_ontology::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("imcl:Printer");
/// let b = interner.intern("imcl:Printer");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "imcl:Printer");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    ids: FxHashMap<String, SymbolId>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string, returning its stable id.
    pub fn intern(&mut self, s: &str) -> SymbolId {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = SymbolId(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.ids.insert(s.to_owned(), id);
        id
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<SymbolId> {
        self.ids.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// Ids minted by a different interner resolve to the empty string,
    /// which no interned symbol can alias (interned strings are non-empty
    /// identifiers and IRIs).
    pub fn resolve(&self, id: SymbolId) -> &str {
        self.strings.get(id.0 as usize).map_or("", String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// An `f64` wrapper with total ordering and bitwise equality so literals can
/// live in hash maps and B-trees.
#[derive(Debug, Clone, Copy)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps a float, canonicalizing NaN to a single bit pattern.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            OrderedF64(f64::NAN)
        } else if v == 0.0 {
            // Collapse -0.0 and +0.0.
            OrderedF64(0.0)
        } else {
            OrderedF64(v)
        }
    }

    /// The wrapped value.
    pub fn value(self) -> f64 {
        self.0
    }

    fn key(self) -> u64 {
        // Total order trick: flip sign bit for positives, all bits for negatives.
        let bits = self.0.to_bits();
        if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        }
    }
}

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

/// A typed RDF literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Literal {
    /// `xsd:string` — the lexical form is interned.
    Str(SymbolId),
    /// `xsd:integer`.
    Int(i64),
    /// `xsd:double`.
    Double(OrderedF64),
    /// `xsd:boolean`.
    Bool(bool),
}

impl Literal {
    /// Creates a double literal.
    pub fn double(v: f64) -> Literal {
        Literal::Double(OrderedF64::new(v))
    }

    /// Numeric view of the literal, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Literal::Int(i) => Some(*i as f64),
            Literal::Double(d) => Some(d.value()),
            _ => None,
        }
    }
}

/// A node in the RDF graph: an IRI (or prefixed name) or a literal.
///
/// Blank nodes are represented as IRIs in a reserved `_:` namespace; the
/// reproduction never needs standalone bnode semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An IRI or prefixed name such as `imcl:hpLaserJet`.
    Iri(SymbolId),
    /// A typed literal.
    Literal(Literal),
}

impl Term {
    /// Whether the term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Whether the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// Numeric view, if the term is a numeric literal.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Literal(l) => l.as_f64(),
            _ => None,
        }
    }

    /// Renders the term with an interner.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> TermDisplay<'a> {
        TermDisplay {
            term: self,
            interner,
        }
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Term {
        Term::Literal(l)
    }
}

/// Helper implementing [`fmt::Display`] for a term + interner pair.
#[derive(Debug)]
pub struct TermDisplay<'a> {
    term: &'a Term,
    interner: &'a Interner,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.term {
            Term::Iri(id) => f.write_str(self.interner.resolve(*id)),
            Term::Literal(Literal::Str(id)) => {
                write!(f, "'{}'", self.interner.resolve(*id))
            }
            Term::Literal(Literal::Int(i)) => write!(f, "'{i}'^^xsd:integer"),
            Term::Literal(Literal::Double(d)) => write!(f, "'{}'^^xsd:double", d.value()),
            Term::Literal(Literal::Bool(b)) => write!(f, "'{b}'^^xsd:boolean"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedupes() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let a = i.intern("x");
        let b = i.intern("y");
        assert_ne!(a, b);
        assert_eq!(i.intern("x"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("y"), Some(b));
        assert_eq!(i.get("z"), None);
    }

    #[test]
    fn ordered_f64_total_order() {
        let values = [-1.0, -0.0, 0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY];
        let mut wrapped: Vec<_> = values.iter().map(|&v| OrderedF64::new(v)).collect();
        wrapped.sort();
        let sorted: Vec<f64> = wrapped.iter().map(|w| w.value()).collect();
        assert_eq!(sorted[0], f64::NEG_INFINITY);
        assert_eq!(*sorted.last().unwrap(), f64::INFINITY);
        assert_eq!(OrderedF64::new(0.0), OrderedF64::new(-0.0));
        assert_eq!(OrderedF64::new(f64::NAN), OrderedF64::new(f64::NAN));
    }

    #[test]
    fn literal_numeric_views() {
        assert_eq!(Literal::Int(3).as_f64(), Some(3.0));
        assert_eq!(Literal::double(2.5).as_f64(), Some(2.5));
        assert_eq!(Literal::Bool(true).as_f64(), None);
        let mut i = Interner::new();
        assert_eq!(Literal::Str(i.intern("s")).as_f64(), None);
    }

    #[test]
    fn term_display() {
        let mut i = Interner::new();
        let iri = Term::Iri(i.intern("imcl:Printer"));
        assert_eq!(iri.display(&i).to_string(), "imcl:Printer");
        let s = Term::Literal(Literal::Str(i.intern("hello")));
        assert_eq!(s.display(&i).to_string(), "'hello'");
        assert_eq!(
            Term::Literal(Literal::Int(7)).display(&i).to_string(),
            "'7'^^xsd:integer"
        );
        assert!(iri.is_iri() && !iri.is_literal());
        assert!(s.is_literal());
    }
}
