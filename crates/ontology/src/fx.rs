//! A fast, non-cryptographic hasher for interner-relative keys.
//!
//! The store and the reasoner hash [`crate::Term`]s and
//! [`crate::Triple`]s millions of times per materialization; those keys
//! are small `Copy` values derived from interner ids, never
//! attacker-controlled, so SipHash's DoS resistance buys nothing here.
//!
//! The construction itself now lives in the workspace-wide `mdagent-fx`
//! crate so every sim-visible crate shares one deterministic hasher;
//! this module re-exports it under the historical path.

pub use mdagent_fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
