//! The [`Graph`] facade: a triple store plus its interner.

use crate::store::Store;
use crate::term::{Interner, Literal, SymbolId, Term};
use crate::triple::Triple;

/// A knowledge base: an interner and a store that share a lifetime.
///
/// Every higher layer (registry, autonomous agents) talks to a `Graph`; raw
/// [`Store`]/[`Interner`] access remains available for the engine internals.
///
/// # Examples
///
/// ```
/// use mdagent_ontology::{Graph, vocab};
///
/// let mut g = Graph::new();
/// g.add("imcl:hpLaserJet", vocab::rdf::TYPE, "imcl:Printer");
/// g.add("imcl:Printer", vocab::rdfs::SUB_CLASS_OF, "imcl:Resource");
/// assert_eq!(g.len(), 2);
/// assert!(g.contains("imcl:hpLaserJet", vocab::rdf::TYPE, "imcl:Printer"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    interner: Interner,
    store: Store,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an IRI and returns it as a term.
    pub fn iri(&mut self, name: &str) -> Term {
        Term::Iri(self.interner.intern(name))
    }

    /// Looks up an IRI without interning. Returns `None` if never seen.
    pub fn try_iri(&self, name: &str) -> Option<Term> {
        self.interner.get(name).map(Term::Iri)
    }

    /// Interns a string literal and returns it as a term.
    pub fn str_lit(&mut self, value: &str) -> Term {
        Term::Literal(Literal::Str(self.interner.intern(value)))
    }

    /// An integer literal term.
    pub fn int_lit(&self, value: i64) -> Term {
        Term::Literal(Literal::Int(value))
    }

    /// A double literal term.
    pub fn double_lit(&self, value: f64) -> Term {
        Term::Literal(Literal::double(value))
    }

    /// A boolean literal term.
    pub fn bool_lit(&self, value: bool) -> Term {
        Term::Literal(Literal::Bool(value))
    }

    /// Adds a triple of IRIs given by name. Returns `true` if new.
    pub fn add(&mut self, s: &str, p: &str, o: &str) -> bool {
        let t = Triple::new(self.iri(s), self.iri(p), self.iri(o));
        self.store.insert(t)
    }

    /// Adds a triple whose object is an arbitrary term. Returns `true` if new.
    pub fn add_with_object(&mut self, s: &str, p: &str, o: Term) -> bool {
        let t = Triple::new(self.iri(s), self.iri(p), o);
        self.store.insert(t)
    }

    /// Adds a ground triple. Returns `true` if new.
    pub fn add_triple(&mut self, t: Triple) -> bool {
        self.store.insert(t)
    }

    /// Whether the named triple is present.
    pub fn contains(&self, s: &str, p: &str, o: &str) -> bool {
        let (Some(s), Some(p), Some(o)) = (self.try_iri(s), self.try_iri(p), self.try_iri(o))
        else {
            return false;
        };
        self.store.contains(&Triple::new(s, p, o))
    }

    /// All objects of `(s, p, ?o)` by name.
    pub fn objects_of(&self, s: &str, p: &str) -> Vec<Term> {
        let (Some(s), Some(p)) = (self.try_iri(s), self.try_iri(p)) else {
            return Vec::new();
        };
        self.store
            .match_spo(Some(s), Some(p), None)
            .into_iter()
            .map(|t| t.o)
            .collect()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Shared view of the store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable view of the store.
    pub fn store_mut(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Shared view of the interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable view of the interner.
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Borrows the interner mutably and the store immutably at once.
    ///
    /// Rule evaluation needs exactly this split: it probes the store while
    /// minting skolem IRIs through the interner.
    pub fn split_mut(&mut self) -> (&mut Interner, &Store) {
        (&mut self.interner, &self.store)
    }

    /// Borrows the interner and the store mutably at once.
    ///
    /// The semi-naive engine needs this split: it inserts derived triples
    /// into the store between seed rows (so the merge-difference kernels
    /// can filter against them) while minting skolem IRIs through the
    /// interner.
    pub fn split_mut_full(&mut self) -> (&mut Interner, &mut Store) {
        (&mut self.interner, &mut self.store)
    }

    /// Resolves a symbol back to its lexical form.
    pub fn resolve(&self, id: SymbolId) -> &str {
        self.interner.resolve(id)
    }

    /// Renders a term to a string.
    pub fn term_to_string(&self, t: Term) -> String {
        t.display(&self.interner).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab;

    #[test]
    fn add_and_query_by_name() {
        let mut g = Graph::new();
        assert!(g.add("ex:a", vocab::rdf::TYPE, "ex:T"));
        assert!(!g.add("ex:a", vocab::rdf::TYPE, "ex:T"));
        assert!(g.contains("ex:a", vocab::rdf::TYPE, "ex:T"));
        assert!(!g.contains("ex:a", vocab::rdf::TYPE, "ex:Other"));
        assert!(!g.contains("never", "seen", "names"));
    }

    #[test]
    fn literals_as_objects() {
        let mut g = Graph::new();
        let lit = g.int_lit(42);
        g.add_with_object("ex:net", vocab::imcl::RESPONSE_TIME, lit);
        let objects = g.objects_of("ex:net", vocab::imcl::RESPONSE_TIME);
        assert_eq!(objects, vec![lit]);
        assert_eq!(g.term_to_string(lit), "'42'^^xsd:integer");
    }

    #[test]
    fn objects_of_unknown_names_is_empty() {
        let g = Graph::new();
        assert!(g.objects_of("ex:a", "ex:p").is_empty());
        assert!(g.is_empty());
    }

    #[test]
    fn distinct_literal_kinds_are_distinct_terms() {
        let mut g = Graph::new();
        assert_ne!(g.int_lit(1), g.double_lit(1.0));
        assert_ne!(g.bool_lit(true), g.str_lit("true"));
    }
}
