//! Programmatic OWL descriptions (paper Fig. 5).
//!
//! The paper describes resources as OWL classes with properties such as
//! `locatedIn`; [`ClassDescription`] is the builder the registry layer uses
//! to emit those triples without writing text.

use crate::graph::Graph;
use crate::term::Term;
use crate::vocab::{owl, rdf, rdfs};

/// Builder for an OWL class description.
///
/// # Examples
///
/// The paper's `hpLaserJet` printer (Fig. 5):
///
/// ```
/// use mdagent_ontology::{ClassDescription, Graph, vocab};
///
/// let mut g = Graph::new();
/// ClassDescription::new("imcl:hpLaserJet")
///     .comment("hp color printer")
///     .sub_class_of("imcl:Printer")
///     .sub_class_of("imcl:Substitutable")
///     .sub_class_of("imcl:UnTransferable")
///     .transitive_object_property("imcl:locatedIn", "imcl:Office821")
///     .apply(&mut g);
/// assert!(g.contains("imcl:hpLaserJet", vocab::rdf::TYPE, vocab::owl::CLASS));
/// assert!(g.contains("imcl:hpLaserJet", vocab::rdfs::SUB_CLASS_OF, "imcl:Printer"));
/// assert!(g.contains("imcl:locatedIn", vocab::rdf::TYPE, vocab::owl::TRANSITIVE_PROPERTY));
/// ```
#[derive(Debug, Clone)]
pub struct ClassDescription {
    id: String,
    comment: Option<String>,
    super_classes: Vec<String>,
    object_properties: Vec<ObjectPropertyDecl>,
    data_properties: Vec<(String, DataValue)>,
}

#[derive(Debug, Clone)]
struct ObjectPropertyDecl {
    property: String,
    range: String,
    transitive: bool,
    symmetric: bool,
}

#[derive(Debug, Clone)]
enum DataValue {
    Str(String),
    Int(i64),
    Double(f64),
    Bool(bool),
}

impl ClassDescription {
    /// Starts a description of the named class.
    pub fn new(id: impl Into<String>) -> Self {
        ClassDescription {
            id: id.into(),
            comment: None,
            super_classes: Vec::new(),
            object_properties: Vec::new(),
            data_properties: Vec::new(),
        }
    }

    /// Sets an `rdfs:comment`.
    pub fn comment(mut self, text: impl Into<String>) -> Self {
        self.comment = Some(text.into());
        self
    }

    /// Adds an `rdfs:subClassOf` axiom.
    pub fn sub_class_of(mut self, class: impl Into<String>) -> Self {
        self.super_classes.push(class.into());
        self
    }

    /// Declares an object property of this class with the given range.
    pub fn object_property(
        mut self,
        property: impl Into<String>,
        range: impl Into<String>,
    ) -> Self {
        self.object_properties.push(ObjectPropertyDecl {
            property: property.into(),
            range: range.into(),
            transitive: false,
            symmetric: false,
        });
        self
    }

    /// Declares a *transitive* object property (like `imcl:locatedIn`).
    pub fn transitive_object_property(
        mut self,
        property: impl Into<String>,
        range: impl Into<String>,
    ) -> Self {
        self.object_properties.push(ObjectPropertyDecl {
            property: property.into(),
            range: range.into(),
            transitive: true,
            symmetric: false,
        });
        self
    }

    /// Declares a *symmetric* object property.
    pub fn symmetric_object_property(
        mut self,
        property: impl Into<String>,
        range: impl Into<String>,
    ) -> Self {
        self.object_properties.push(ObjectPropertyDecl {
            property: property.into(),
            range: range.into(),
            transitive: false,
            symmetric: true,
        });
        self
    }

    /// Attaches a string-valued data property.
    pub fn data_str(mut self, property: impl Into<String>, value: impl Into<String>) -> Self {
        self.data_properties
            .push((property.into(), DataValue::Str(value.into())));
        self
    }

    /// Attaches an integer-valued data property.
    pub fn data_int(mut self, property: impl Into<String>, value: i64) -> Self {
        self.data_properties
            .push((property.into(), DataValue::Int(value)));
        self
    }

    /// Attaches a double-valued data property.
    pub fn data_double(mut self, property: impl Into<String>, value: f64) -> Self {
        self.data_properties
            .push((property.into(), DataValue::Double(value)));
        self
    }

    /// Attaches a boolean-valued data property.
    pub fn data_bool(mut self, property: impl Into<String>, value: bool) -> Self {
        self.data_properties
            .push((property.into(), DataValue::Bool(value)));
        self
    }

    /// Emits all triples into the graph. Returns the number of new triples.
    pub fn apply(&self, graph: &mut Graph) -> usize {
        let mut added = 0usize;
        let mut count = |b: bool| {
            if b {
                added += 1
            }
        };
        count(graph.add(&self.id, rdf::TYPE, owl::CLASS));
        if let Some(c) = &self.comment {
            let lit = graph.str_lit(c);
            count(graph.add_with_object(&self.id, rdfs::COMMENT, lit));
        }
        for class in &self.super_classes {
            count(graph.add(&self.id, rdfs::SUB_CLASS_OF, class));
        }
        for decl in &self.object_properties {
            count(graph.add(&decl.property, rdf::TYPE, owl::OBJECT_PROPERTY));
            count(graph.add(&decl.property, rdfs::RANGE, &decl.range));
            count(graph.add(&self.id, &decl.property, &decl.range));
            if decl.transitive {
                count(graph.add(&decl.property, rdf::TYPE, owl::TRANSITIVE_PROPERTY));
            }
            if decl.symmetric {
                count(graph.add(&decl.property, rdf::TYPE, owl::SYMMETRIC_PROPERTY));
            }
        }
        for (property, value) in &self.data_properties {
            count(graph.add(property, rdf::TYPE, owl::DATATYPE_PROPERTY));
            let lit: Term = match value {
                DataValue::Str(s) => graph.str_lit(s),
                DataValue::Int(i) => graph.int_lit(*i),
                DataValue::Double(d) => graph.double_lit(*d),
                DataValue::Bool(b) => graph.bool_lit(*b),
            };
            count(graph.add_with_object(&self.id, property, lit));
        }
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_builder_emits_expected_triples() {
        let mut g = Graph::new();
        let added = ClassDescription::new("imcl:hpLaserJet")
            .comment("hp color printer")
            .sub_class_of("imcl:Printer")
            .transitive_object_property("imcl:locatedIn", "imcl:Office821")
            .data_int("imcl:pagesPerMinute", 20)
            .data_double("imcl:dpi", 600.0)
            .data_bool("imcl:color", true)
            .data_str("imcl:vendor", "hp")
            .apply(&mut g);
        assert!(added >= 10);
        assert!(g.contains("imcl:hpLaserJet", rdf::TYPE, owl::CLASS));
        assert!(g.contains("imcl:hpLaserJet", "imcl:locatedIn", "imcl:Office821"));
        assert!(g.contains("imcl:locatedIn", rdfs::RANGE, "imcl:Office821"));
        assert_eq!(
            g.objects_of("imcl:hpLaserJet", "imcl:pagesPerMinute")[0].as_f64(),
            Some(20.0)
        );
    }

    #[test]
    fn reapplying_is_idempotent() {
        let mut g = Graph::new();
        let desc = ClassDescription::new("ex:T").sub_class_of("ex:Base");
        let first = desc.apply(&mut g);
        let second = desc.apply(&mut g);
        assert!(first > 0);
        assert_eq!(second, 0);
    }

    #[test]
    fn symmetric_property_flag() {
        let mut g = Graph::new();
        ClassDescription::new("ex:RoomA")
            .symmetric_object_property("ex:adjacentTo", "ex:RoomB")
            .apply(&mut g);
        assert!(g.contains("ex:adjacentTo", rdf::TYPE, owl::SYMMETRIC_PROPERTY));
    }
}
