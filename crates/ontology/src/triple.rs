//! Triples and patterns over them.

use crate::term::{Interner, Term};
use std::fmt;

/// A ground RDF statement `(subject, predicate, object)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject node.
    pub s: Term,
    /// Predicate node (always an IRI in well-formed data).
    pub p: Term,
    /// Object node.
    pub o: Term,
}

impl Triple {
    /// Creates a triple.
    pub fn new(s: Term, p: Term, o: Term) -> Self {
        Triple { s, p, o }
    }

    /// Renders the triple with an interner.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> TripleDisplay<'a> {
        TripleDisplay {
            triple: self,
            interner,
        }
    }
}

/// Helper implementing [`fmt::Display`] for a triple + interner pair.
#[derive(Debug)]
pub struct TripleDisplay<'a> {
    triple: &'a Triple,
    interner: &'a Interner,
}

impl fmt::Display for TripleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({} {} {})",
            self.triple.s.display(self.interner),
            self.triple.p.display(self.interner),
            self.triple.o.display(self.interner)
        )
    }
}

/// Identifier of a variable within one rule or query (index into its
/// variable table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// One position of a pattern: a variable or a ground term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternTerm {
    /// A variable such as `?p`.
    Var(VarId),
    /// A ground term.
    Ground(Term),
}

impl PatternTerm {
    /// The ground term, if this position is ground.
    pub fn ground(&self) -> Option<Term> {
        match self {
            PatternTerm::Ground(t) => Some(*t),
            PatternTerm::Var(_) => None,
        }
    }

    /// The variable, if this position is a variable.
    pub fn var(&self) -> Option<VarId> {
        match self {
            PatternTerm::Var(v) => Some(*v),
            PatternTerm::Ground(_) => None,
        }
    }
}

impl From<Term> for PatternTerm {
    fn from(t: Term) -> Self {
        PatternTerm::Ground(t)
    }
}

impl From<VarId> for PatternTerm {
    fn from(v: VarId) -> Self {
        PatternTerm::Var(v)
    }
}

/// A triple pattern `(s p o)` whose positions may be variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject position.
    pub s: PatternTerm,
    /// Predicate position.
    pub p: PatternTerm,
    /// Object position.
    pub o: PatternTerm,
}

impl TriplePattern {
    /// Creates a pattern.
    pub fn new(
        s: impl Into<PatternTerm>,
        p: impl Into<PatternTerm>,
        o: impl Into<PatternTerm>,
    ) -> Self {
        TriplePattern {
            s: s.into(),
            p: p.into(),
            o: o.into(),
        }
    }

    /// All variables mentioned, in position order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        [self.s, self.p, self.o].into_iter().filter_map(|t| t.var())
    }

    /// Whether the pattern has no variables.
    pub fn is_ground(&self) -> bool {
        self.vars().next().is_none()
    }

    /// Instantiates the pattern under `bindings`; `None` if any variable is
    /// unbound.
    pub fn instantiate(&self, bindings: &[Option<Term>]) -> Option<Triple> {
        let resolve = |pt: PatternTerm| match pt {
            PatternTerm::Ground(t) => Some(t),
            PatternTerm::Var(v) => bindings.get(v.0 as usize).copied().flatten(),
        };
        Some(Triple::new(
            resolve(self.s)?,
            resolve(self.p)?,
            resolve(self.o)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn terms() -> (Interner, Term, Term, Term) {
        let mut i = Interner::new();
        let s = Term::Iri(i.intern("ex:s"));
        let p = Term::Iri(i.intern("ex:p"));
        let o = Term::Literal(Literal::Int(1));
        (i, s, p, o)
    }

    #[test]
    fn triple_display() {
        let (i, s, p, o) = terms();
        let t = Triple::new(s, p, o);
        assert_eq!(t.display(&i).to_string(), "(ex:s ex:p '1'^^xsd:integer)");
    }

    #[test]
    fn pattern_vars_and_groundness() {
        let (_i, s, p, _o) = terms();
        let pat = TriplePattern::new(VarId(0), p, VarId(1));
        assert_eq!(pat.vars().collect::<Vec<_>>(), [VarId(0), VarId(1)]);
        assert!(!pat.is_ground());
        let ground = TriplePattern::new(s, p, s);
        assert!(ground.is_ground());
    }

    #[test]
    fn instantiation_requires_all_bindings() {
        let (_i, s, p, o) = terms();
        let pat = TriplePattern::new(VarId(0), p, VarId(1));
        assert_eq!(pat.instantiate(&[Some(s), None]), None);
        assert_eq!(
            pat.instantiate(&[Some(s), Some(o)]),
            Some(Triple::new(s, p, o))
        );
        // Out-of-range variable index is treated as unbound, not a panic.
        let wild = TriplePattern::new(VarId(7), p, o);
        assert_eq!(wild.instantiate(&[]), None);
    }
}
