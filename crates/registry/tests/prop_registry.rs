//! Property tests for the registry: semantic matching always dominates
//! syntactic matching, and ranking is stable.

use mdagent_registry::{MatchQuality, RegistryCenter, ResourceRecord};
use mdagent_simnet::{HostId, SpaceId};
use proptest::prelude::*;

fn class_name(i: u8) -> String {
    format!("imcl:Class{i}")
}

proptest! {
    /// For any catalog and any subclass forest, every syntactic hit is
    /// also a semantic hit, and semantic hits are ranked Exact before
    /// Subsumed before Substitutable.
    #[test]
    fn semantic_dominates_syntactic(
        // Resources: (individual idx, class idx)
        resources in proptest::collection::vec((0u8..30, 0u8..6), 1..25),
        // Subclass axioms: child -> parent (child > parent avoids cycles)
        axioms in proptest::collection::vec((1u8..6, 0u8..6), 0..8),
        query_class in 0u8..6,
    ) {
        let mut center = RegistryCenter::new(SpaceId(0));
        for (child, parent) in &axioms {
            if child > parent {
                center.declare_subclass(&class_name(*child), &class_name(*parent));
            }
        }
        for (idx, class) in &resources {
            center.register_resource(ResourceRecord::new(
                format!("imcl:res-{idx}"),
                class_name(*class),
                SpaceId(0),
                HostId(0),
            ));
        }
        let query = class_name(query_class);
        let semantic = center.find_resources(&query);
        let syntactic = center.find_resources_syntactic(&query);

        // Domination: every syntactic hit appears among the semantic hits.
        for hit in &syntactic {
            prop_assert!(
                semantic.iter().any(|m| m.resource.name == hit.resource.name),
                "syntactic hit {} missing from semantic results",
                hit.resource.name
            );
        }
        // Ranking: qualities are nondecreasing.
        for pair in semantic.windows(2) {
            prop_assert!(pair[0].quality <= pair[1].quality);
        }
        // Exact matches are exactly the syntactic hits.
        let exact = semantic
            .iter()
            .filter(|m| m.quality == MatchQuality::Exact)
            .count();
        prop_assert_eq!(exact, syntactic.len());
        // Determinism: a second query returns the same ranking.
        prop_assert_eq!(center.find_resources(&query), semantic);
    }

    /// Deregistering every resource empties all lookups.
    #[test]
    fn deregistration_is_complete(
        resources in proptest::collection::vec(0u8..20, 1..15),
    ) {
        let mut center = RegistryCenter::new(SpaceId(0));
        for idx in &resources {
            center.register_resource(ResourceRecord::new(
                format!("imcl:res-{idx}"),
                "imcl:Thing",
                SpaceId(0),
                HostId(0),
            ));
        }
        let names: Vec<String> = center.resources().map(|r| r.name.clone()).collect();
        for name in &names {
            prop_assert!(center.deregister_resource(name));
        }
        prop_assert!(center.find_resources("imcl:Thing").is_empty());
        prop_assert_eq!(center.resources().count(), 0);
    }
}
