//! Interleaved assert/retract churn through the registry center: random
//! sequences of registrations, replacements, deregistrations and lookups
//! must keep the center's answers — and its whole materialized ontology —
//! identical to a center freshly built from just the surviving records,
//! without ever falling back to a full re-materialization.

use std::collections::BTreeMap;

use mdagent_registry::{RegistryCenter, ResourceRecord};
use mdagent_simnet::{HostId, SpaceId};
use proptest::prelude::*;

fn class_name(i: u8) -> String {
    format!("imcl:Class{i}")
}

fn record(idx: u8, class: u8) -> ResourceRecord {
    ResourceRecord::new(
        format!("imcl:res-{idx}"),
        class_name(class),
        SpaceId(0),
        HostId(u32::from(idx)),
    )
    .address(format!("host-{idx}:9100"))
}

/// One churn step: register (or replace), deregister, or look up.
#[derive(Debug, Clone, Copy)]
enum Op {
    Register(u8, u8),
    Deregister(u8),
    Lookup(u8),
}

fn op() -> impl Strategy<Value = Op> {
    // Bias toward registrations so deregistrations usually have targets.
    (0u8..4, 0u8..8, 0u8..6).prop_map(|(kind, idx, class)| match kind {
        0 | 1 => Op::Register(idx, class),
        2 => Op::Deregister(idx),
        _ => Op::Lookup(class),
    })
}

/// A center with the given axiom forest declared.
fn center_with_axioms(axioms: &[(u8, u8)]) -> RegistryCenter {
    let mut c = RegistryCenter::new(SpaceId(0));
    for (child, parent) in axioms {
        if child > parent {
            c.declare_subclass(&class_name(*child), &class_name(*parent));
        }
    }
    c
}

proptest! {
    /// Churned center ≡ fresh center over the survivors, at every lookup
    /// and (triple for triple) at the end — all through the incremental
    /// assert/retract path.
    #[test]
    fn churn_matches_fresh_build(
        axioms in proptest::collection::vec((1u8..6, 0u8..6), 0..8),
        ops in proptest::collection::vec(op(), 1..40),
    ) {
        let mut churned = center_with_axioms(&axioms);
        // Shadow model: the records that should currently be registered.
        let mut shadow: BTreeMap<String, ResourceRecord> = BTreeMap::new();

        let fresh = |shadow: &BTreeMap<String, ResourceRecord>| {
            let mut c = center_with_axioms(&axioms);
            for r in shadow.values() {
                c.register_resource(r.clone());
            }
            c
        };

        for step in &ops {
            match *step {
                Op::Register(idx, class) => {
                    let r = record(idx, class);
                    shadow.insert(r.name.clone(), r.clone());
                    churned.register_resource(r);
                }
                Op::Deregister(idx) => {
                    let name = format!("imcl:res-{idx}");
                    let existed = shadow.remove(&name).is_some();
                    prop_assert_eq!(churned.deregister_resource(&name), existed);
                }
                Op::Lookup(class) => {
                    let query = class_name(class);
                    let got: Vec<_> = churned
                        .find_resources(&query)
                        .into_iter()
                        .map(|m| (m.resource.name.clone(), m.quality))
                        .collect();
                    let want: Vec<_> = fresh(&shadow)
                        .find_resources(&query)
                        .into_iter()
                        .map(|m| (m.resource.name.clone(), m.quality))
                        .collect();
                    prop_assert_eq!(got, want, "lookup for {}", query);
                }
            }
        }

        // The churned ontology is set-identical to one built from scratch
        // over the survivors.
        let mut reference = fresh(&shadow);
        churned.flush_deltas();
        reference.flush_deltas();
        let rendered = |c: &RegistryCenter| {
            let mut v: Vec<String> = c
                .graph()
                .store()
                .iter()
                .map(|t| t.display(c.graph().interner()).to_string())
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(rendered(&churned), rendered(&reference));
        prop_assert_eq!(
            churned.full_materializations(),
            0,
            "churn must stay on the incremental path"
        );
        prop_assert_eq!(churned.resources().count(), shadow.len());
    }
}
