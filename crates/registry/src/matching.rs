//! Match results and quality ranking for semantic resource lookup.

use std::fmt;

use crate::record::ResourceRecord;

/// How well a resource satisfies a requirement; lower is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MatchQuality {
    /// The resource's class equals the required class.
    Exact,
    /// The resource's class is a (derived) subclass of the requirement —
    /// an `hpLaserJet` where any `Printer` will do.
    Subsumed,
    /// The requirement is more specific than the resource, but the
    /// resource is declared substitutable — a generic `Printer` standing
    /// in for a requested `hpLaserJet`.
    Substitutable,
}

impl fmt::Display for MatchQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MatchQuality::Exact => "exact",
            MatchQuality::Subsumed => "subsumed",
            MatchQuality::Substitutable => "substitutable",
        };
        f.write_str(s)
    }
}

/// One lookup hit: the resource and how well it matched.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceMatch {
    /// The matched resource.
    pub resource: ResourceRecord,
    /// Match quality.
    pub quality: MatchQuality,
}

impl ResourceMatch {
    /// Whether the application can rebind to this resource without
    /// shipping anything (it exists at the destination already).
    pub fn is_local_rebind(&self) -> bool {
        !self.resource.transferable || self.quality != MatchQuality::Exact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdagent_simnet::{HostId, SpaceId};

    #[test]
    fn quality_orders_best_first() {
        assert!(MatchQuality::Exact < MatchQuality::Subsumed);
        assert!(MatchQuality::Subsumed < MatchQuality::Substitutable);
        assert_eq!(MatchQuality::Exact.to_string(), "exact");
    }

    #[test]
    fn local_rebind_logic() {
        let fixed = ResourceRecord::new("r", "c", SpaceId(0), HostId(0)).transferable(false);
        let portable = ResourceRecord::new("r", "c", SpaceId(0), HostId(0)).transferable(true);
        assert!(ResourceMatch {
            resource: fixed,
            quality: MatchQuality::Exact
        }
        .is_local_rebind());
        assert!(!ResourceMatch {
            resource: portable,
            quality: MatchQuality::Exact
        }
        .is_local_rebind());
    }
}
