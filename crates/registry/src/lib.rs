//! # mdagent-registry — application & resource registry with semantic
//! matching
//!
//! The paper backs its registry center with Juddi and MySQL; applications
//! register WSDL-like interface descriptions and resources are described
//! in OWL so agents can match them *semantically* (§3.3, §4.2.2). This
//! crate provides that registry:
//!
//! * [`InterfaceDescription`]/[`Operation`] — WSDL-like service records.
//! * [`ApplicationRecord`]/[`ResourceRecord`] — advertisements of deployed
//!   application components and shareable resources.
//! * [`RegistryCenter`] — one per smart space; resource facts mirror into
//!   an ontology graph and lookups run through the OWL reasoner, so an
//!   `hpLaserJet` satisfies a request for any `Printer`
//!   ([`MatchQuality::Subsumed`]), unlike the syntactic matching the paper
//!   argues against (provided for comparison as
//!   [`RegistryCenter::find_resources_syntactic`]).
//! * [`RegistryFederation`] — cross-space lookups, flagging gateway hops.
//!
//! # Examples
//!
//! ```
//! use mdagent_registry::{RegistryCenter, ResourceRecord, MatchQuality};
//! use mdagent_simnet::{SpaceId, HostId};
//!
//! let mut center = RegistryCenter::new(SpaceId(0));
//! center.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
//! center.register_resource(
//!     ResourceRecord::new("imcl:prn-821", "imcl:hpLaserJet", SpaceId(0), HostId(0)),
//! );
//! let hits = center.find_resources("imcl:Printer");
//! assert_eq!(hits[0].quality, MatchQuality::Subsumed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod center;
mod federation;
mod matching;
mod record;

pub use center::{LookupStats, RegistryCenter};
pub use federation::{Federated, FederationError, RegistryFederation};
pub use matching::{MatchQuality, ResourceMatch};
pub use record::{ApplicationRecord, InterfaceDescription, Operation, ResourceRecord};
