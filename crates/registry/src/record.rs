//! Registry records: WSDL-like interface descriptions, application and
//! resource advertisements.

use std::fmt;

use mdagent_simnet::{HostId, SpaceId};

/// One operation of a service interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Operation name, e.g. `"play"`.
    pub name: String,
    /// Input message parts.
    pub inputs: Vec<String>,
    /// Output message parts.
    pub outputs: Vec<String>,
}

impl Operation {
    /// Creates an operation.
    pub fn new(
        name: impl Into<String>,
        inputs: impl IntoIterator<Item = &'static str>,
        outputs: impl IntoIterator<Item = &'static str>,
    ) -> Self {
        Operation {
            name: name.into(),
            inputs: inputs.into_iter().map(str::to_owned).collect(),
            outputs: outputs.into_iter().map(str::to_owned).collect(),
        }
    }
}

/// A WSDL-like interface description (paper §4.2.2: applications register
/// "with their interface descriptions … in a WSDL-like format").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InterfaceDescription {
    /// Service name.
    pub service: String,
    /// Exposed operations.
    pub operations: Vec<Operation>,
    /// Transport endpoint, e.g. `"acl://ma-player@mdagent"`.
    pub endpoint: String,
}

impl InterfaceDescription {
    /// Creates an empty description for a service.
    pub fn new(service: impl Into<String>) -> Self {
        InterfaceDescription {
            service: service.into(),
            operations: Vec::new(),
            endpoint: String::new(),
        }
    }

    /// Adds an operation (builder style).
    pub fn operation(mut self, op: Operation) -> Self {
        self.operations.push(op);
        self
    }

    /// Sets the endpoint (builder style).
    pub fn endpoint(mut self, endpoint: impl Into<String>) -> Self {
        self.endpoint = endpoint.into();
        self
    }

    /// Whether the interface offers an operation by name.
    pub fn has_operation(&self, name: &str) -> bool {
        self.operations.iter().any(|o| o.name == name)
    }
}

impl fmt::Display for InterfaceDescription {
    /// Renders a compact WSDL-like textual form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "<service name=\"{}\" endpoint=\"{}\">",
            self.service, self.endpoint
        )?;
        for op in &self.operations {
            writeln!(
                f,
                "  <operation name=\"{}\" input=\"{}\" output=\"{}\"/>",
                op.name,
                op.inputs.join(","),
                op.outputs.join(",")
            )?;
        }
        write!(f, "</service>")
    }
}

/// Advertisement of a deployed application (or application component set).
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationRecord {
    /// Application name, e.g. `"smart-media-player"`.
    pub name: String,
    /// The space it is available in.
    pub space: SpaceId,
    /// The host it runs on / is installed on.
    pub host: HostId,
    /// Which component kinds are installed there (`"logic"`,
    /// `"presentation"`, `"data"` …).
    pub components: Vec<String>,
    /// Its interface.
    pub interface: InterfaceDescription,
    /// Minimum device requirements, free-form `key=value` pairs
    /// (`"screen-width=800"`).
    pub requirements: Vec<(String, String)>,
    /// Content digests of installed components, as `(component name,
    /// 64-bit digest of the component's wire encoding)`. A migration
    /// source consults these to elide shipping components the
    /// destination already holds byte-identically.
    pub digests: Vec<(String, u64)>,
}

impl ApplicationRecord {
    /// Creates a record with no components or requirements.
    pub fn new(name: impl Into<String>, space: SpaceId, host: HostId) -> Self {
        let name = name.into();
        ApplicationRecord {
            interface: InterfaceDescription::new(name.clone()),
            name,
            space,
            host,
            components: Vec::new(),
            requirements: Vec::new(),
            digests: Vec::new(),
        }
    }

    /// Marks a component kind as installed (builder style).
    pub fn with_component(mut self, kind: impl Into<String>) -> Self {
        self.components.push(kind.into());
        self
    }

    /// Adds a device requirement (builder style).
    pub fn with_requirement(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.requirements.push((key.into(), value.into()));
        self
    }

    /// Whether a component kind is installed.
    pub fn has_component(&self, kind: &str) -> bool {
        self.components.iter().any(|c| c == kind)
    }

    /// Advertises a component's content digest (builder style). A later
    /// digest for the same component name replaces the earlier one.
    pub fn with_digest(mut self, component: impl Into<String>, digest: u64) -> Self {
        self.set_digest(component.into(), digest);
        self
    }

    /// Records (or replaces) a component's content digest.
    pub fn set_digest(&mut self, component: String, digest: u64) {
        if let Some(entry) = self.digests.iter_mut().find(|(n, _)| *n == component) {
            entry.1 = digest;
        } else {
            self.digests.push((component, digest));
        }
    }

    /// The advertised digest of a component, if any.
    pub fn component_digest(&self, component: &str) -> Option<u64> {
        self.digests
            .iter()
            .find(|(n, _)| n == component)
            .map(|(_, d)| *d)
    }

    /// Whether any advertised component carries exactly this digest
    /// (semantic match: same bytes under a different name still count).
    pub fn has_digest(&self, digest: u64) -> bool {
        self.digests.iter().any(|(_, d)| *d == digest)
    }
}

/// Advertisement of a shareable resource (printer, projector, data file…).
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceRecord {
    /// Individual name (ontology IRI), e.g. `"imcl:prn-821"`.
    pub name: String,
    /// Ontology class, e.g. `"imcl:hpLaserJet"`.
    pub class: String,
    /// The space the resource is in.
    pub space: SpaceId,
    /// The host that serves it.
    pub host: HostId,
    /// Whether the resource can be shipped to another host.
    pub transferable: bool,
    /// Whether a same-class resource elsewhere is an acceptable stand-in.
    pub substitutable: bool,
    /// Network address string (the paper's `imcl:address`).
    pub address: String,
    /// Simulated time (µs) at which the advertisement lapses, if the
    /// publisher leased it. [`RegistryCenter::expire_leases`] deregisters
    /// lapsed records through the incremental retraction path.
    ///
    /// [`RegistryCenter::expire_leases`]: crate::RegistryCenter::expire_leases
    pub lease_expiry: Option<u64>,
}

impl ResourceRecord {
    /// Creates a resource record.
    pub fn new(
        name: impl Into<String>,
        class: impl Into<String>,
        space: SpaceId,
        host: HostId,
    ) -> Self {
        ResourceRecord {
            name: name.into(),
            class: class.into(),
            space,
            host,
            transferable: false,
            substitutable: true,
            address: String::new(),
            lease_expiry: None,
        }
    }

    /// Sets transferability (builder style).
    pub fn transferable(mut self, yes: bool) -> Self {
        self.transferable = yes;
        self
    }

    /// Sets substitutability (builder style).
    pub fn substitutable(mut self, yes: bool) -> Self {
        self.substitutable = yes;
        self
    }

    /// Sets the address (builder style).
    pub fn address(mut self, addr: impl Into<String>) -> Self {
        self.address = addr.into();
        self
    }

    /// Leases the advertisement until `expiry` (builder style). The lease
    /// is exclusive of its endpoint: the record is active while
    /// `now < expiry` and lapsed from `now == expiry` onward (see
    /// [`ResourceRecord::lease_active`]).
    pub fn lease_until(mut self, expiry: u64) -> Self {
        self.lease_expiry = Some(expiry);
        self
    }

    /// Whether the advertisement is still live at simulated time `now`
    /// (µs). Unleased records never lapse. The expiry instant itself is
    /// *lapsed* — `lease_until(t)` means active strictly before `t` — and
    /// every consumer (the [`RegistryCenter::expire_leases`] sweep and
    /// lookup-time filtering alike) shares this boundary through this one
    /// predicate.
    ///
    /// [`RegistryCenter::expire_leases`]: crate::RegistryCenter::expire_leases
    pub fn lease_active(&self, now: u64) -> bool {
        self.lease_expiry.is_none_or(|at| now < at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_renders_wsdl_like_text() {
        let iface = InterfaceDescription::new("media-player")
            .endpoint("acl://ma-player@mdagent")
            .operation(Operation::new("play", ["track"], ["status"]))
            .operation(Operation::new("stop", [], ["status"]));
        let text = iface.to_string();
        assert!(text.contains("<service name=\"media-player\""));
        assert!(text.contains("<operation name=\"play\" input=\"track\" output=\"status\"/>"));
        assert!(text.ends_with("</service>"));
        assert!(iface.has_operation("play"));
        assert!(!iface.has_operation("seek"));
    }

    #[test]
    fn application_record_builders() {
        let rec = ApplicationRecord::new("editor", SpaceId(0), HostId(1))
            .with_component("presentation")
            .with_component("logic")
            .with_requirement("screen-width", "800");
        assert!(rec.has_component("logic"));
        assert!(!rec.has_component("data"));
        assert_eq!(rec.requirements.len(), 1);
        assert_eq!(rec.interface.service, "editor");
    }

    #[test]
    fn application_record_digests() {
        let mut rec = ApplicationRecord::new("player", SpaceId(0), HostId(0))
            .with_digest("codec", 0xABCD)
            .with_digest("player-ui", 7);
        assert_eq!(rec.component_digest("codec"), Some(0xABCD));
        assert_eq!(rec.component_digest("missing"), None);
        assert!(rec.has_digest(7));
        assert!(!rec.has_digest(8));
        rec.set_digest("codec".into(), 1);
        assert_eq!(rec.component_digest("codec"), Some(1));
        assert_eq!(rec.digests.len(), 2, "replace, not append");
    }

    #[test]
    fn resource_record_builders() {
        let rec = ResourceRecord::new("imcl:prn-821", "imcl:hpLaserJet", SpaceId(0), HostId(0))
            .transferable(false)
            .substitutable(true)
            .address("host-0:9100");
        assert!(!rec.transferable);
        assert!(rec.substitutable);
        assert_eq!(rec.address, "host-0:9100");
    }
}
