//! Cross-space registry federation.
//!
//! Each smart space runs its own registry center; looking across a space
//! boundary requires gateway support (paper Fig. 1's inter-space domain).
//! The federation resolves which center serves a space and answers
//! remote queries, reporting whether a gateway hop was involved so the
//! caller can account for its cost.

use std::collections::BTreeMap;

use mdagent_simnet::SpaceId;

use crate::center::RegistryCenter;
use crate::matching::ResourceMatch;
use crate::record::ApplicationRecord;

/// Errors from federated lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// No registry center serves this space.
    NoCenter(SpaceId),
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::NoCenter(s) => write!(f, "no registry center for {s}"),
        }
    }
}

impl std::error::Error for FederationError {}

/// A federated query answer, flagging whether it crossed a space boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Federated<T> {
    /// The answer.
    pub value: T,
    /// Whether the query had to cross into another space (gateway hop).
    pub crossed_gateway: bool,
}

/// The set of per-space registry centers.
///
/// # Examples
///
/// ```
/// use mdagent_registry::{RegistryFederation, ApplicationRecord};
/// use mdagent_simnet::{SpaceId, HostId};
///
/// let mut fed = RegistryFederation::new();
/// fed.add_center(SpaceId(0));
/// fed.add_center(SpaceId(1));
/// fed.center_mut(SpaceId(1)).unwrap().register_application(
///     ApplicationRecord::new("slide-show", SpaceId(1), HostId(2)),
/// );
/// let hit = fed.find_application(SpaceId(0), SpaceId(1), "slide-show")?;
/// assert!(hit.crossed_gateway);
/// assert!(hit.value.is_some());
/// # Ok::<(), mdagent_registry::FederationError>(())
/// ```
#[derive(Debug, Default)]
pub struct RegistryFederation {
    centers: BTreeMap<SpaceId, RegistryCenter>,
}

impl RegistryFederation {
    /// Creates an empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry center for a space (idempotent).
    pub fn add_center(&mut self, space: SpaceId) -> &mut RegistryCenter {
        self.centers
            .entry(space)
            .or_insert_with(|| RegistryCenter::new(space))
    }

    /// The center for a space.
    pub fn center(&self, space: SpaceId) -> Option<&RegistryCenter> {
        self.centers.get(&space)
    }

    /// Mutable center access.
    pub fn center_mut(&mut self, space: SpaceId) -> Option<&mut RegistryCenter> {
        self.centers.get_mut(&space)
    }

    /// Spaces that currently have a registry center, ascending.
    pub fn spaces(&self) -> Vec<SpaceId> {
        self.centers.keys().copied().collect()
    }

    /// Number of centers.
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// Whether the federation has no centers.
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Finds an application record in `target` space, querying from
    /// `origin` space.
    ///
    /// # Errors
    ///
    /// [`FederationError::NoCenter`] when the target space has no registry.
    pub fn find_application(
        &self,
        origin: SpaceId,
        target: SpaceId,
        name: &str,
    ) -> Result<Federated<Option<ApplicationRecord>>, FederationError> {
        let center = self
            .centers
            .get(&target)
            .ok_or(FederationError::NoCenter(target))?;
        Ok(Federated {
            value: center.application(name).cloned(),
            crossed_gateway: origin != target,
        })
    }

    /// Semantic resource lookup in `target` space, from `origin` space.
    ///
    /// # Errors
    ///
    /// [`FederationError::NoCenter`] when the target space has no registry.
    pub fn find_resources(
        &mut self,
        origin: SpaceId,
        target: SpaceId,
        required_class: &str,
    ) -> Result<Federated<Vec<ResourceMatch>>, FederationError> {
        let center = self
            .centers
            .get_mut(&target)
            .ok_or(FederationError::NoCenter(target))?;
        Ok(Federated {
            value: center.find_resources(required_class),
            crossed_gateway: origin != target,
        })
    }

    /// Lease-aware semantic resource lookup in `target` space, from
    /// `origin` space: records whose lease lapsed at or before `now` (µs)
    /// are filtered out, with the same endpoint-exclusive boundary the
    /// expiry sweep uses (see [`ResourceRecord::lease_active`]).
    ///
    /// [`ResourceRecord::lease_active`]: crate::record::ResourceRecord::lease_active
    ///
    /// # Errors
    ///
    /// [`FederationError::NoCenter`] when the target space has no registry.
    pub fn find_resources_at(
        &mut self,
        origin: SpaceId,
        target: SpaceId,
        required_class: &str,
        now: u64,
    ) -> Result<Federated<Vec<ResourceMatch>>, FederationError> {
        let center = self
            .centers
            .get_mut(&target)
            .ok_or(FederationError::NoCenter(target))?;
        Ok(Federated {
            value: center.find_resources_at(required_class, now),
            crossed_gateway: origin != target,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ResourceRecord;
    use mdagent_simnet::HostId;

    fn federation() -> RegistryFederation {
        let mut fed = RegistryFederation::new();
        fed.add_center(SpaceId(0));
        fed.add_center(SpaceId(1));
        let c1 = fed.center_mut(SpaceId(1)).unwrap();
        c1.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
        c1.register_resource(ResourceRecord::new(
            "imcl:prn-822",
            "imcl:hpLaserJet",
            SpaceId(1),
            HostId(3),
        ));
        c1.register_application(ApplicationRecord::new("editor", SpaceId(1), HostId(3)));
        fed
    }

    #[test]
    fn intra_space_lookup_no_gateway() {
        let fed = federation();
        let hit = fed
            .find_application(SpaceId(1), SpaceId(1), "editor")
            .unwrap();
        assert!(!hit.crossed_gateway);
        assert!(hit.value.is_some());
    }

    #[test]
    fn inter_space_lookup_flags_gateway() {
        let mut fed = federation();
        let hit = fed
            .find_resources(SpaceId(0), SpaceId(1), "imcl:Printer")
            .unwrap();
        assert!(hit.crossed_gateway);
        assert_eq!(hit.value.len(), 1);
    }

    #[test]
    fn missing_center_errors() {
        let fed = federation();
        let err = fed
            .find_application(SpaceId(0), SpaceId(9), "editor")
            .unwrap_err();
        assert_eq!(err, FederationError::NoCenter(SpaceId(9)));
        assert!(err.to_string().contains("space-9"));
    }

    #[test]
    fn add_center_is_idempotent() {
        let mut fed = RegistryFederation::new();
        fed.add_center(SpaceId(0));
        fed.add_center(SpaceId(0));
        assert_eq!(fed.len(), 1);
        assert!(!fed.is_empty());
    }

    #[test]
    fn missing_application_is_none_not_error() {
        let fed = federation();
        let hit = fed
            .find_application(SpaceId(0), SpaceId(1), "ghost")
            .unwrap();
        assert!(hit.value.is_none());
    }
}
