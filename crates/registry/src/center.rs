//! The per-space application & resource registry center.
//!
//! The paper uses Juddi + MySQL; this center keeps records in memory and
//! mirrors resource facts into an ontology graph so lookups can be
//! *semantic* (class subsumption via the reasoner) rather than merely
//! syntactic name matching (§3.3).

use std::collections::BTreeMap;

use mdagent_ontology::{axiom_rules, Graph, Reasoner};
use mdagent_simnet::SpaceId;

use crate::matching::{MatchQuality, ResourceMatch};
use crate::record::{ApplicationRecord, ResourceRecord};

/// Registry center for one smart space.
///
/// # Examples
///
/// ```
/// use mdagent_registry::{RegistryCenter, ApplicationRecord, ResourceRecord};
/// use mdagent_simnet::{SpaceId, HostId};
///
/// let mut center = RegistryCenter::new(SpaceId(0));
/// center.register_application(
///     ApplicationRecord::new("media-player", SpaceId(0), HostId(0)).with_component("presentation"),
/// );
/// assert!(center.application("media-player").is_some());
/// center.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
/// center.register_resource(
///     ResourceRecord::new("imcl:prn-821", "imcl:hpLaserJet", SpaceId(0), HostId(0)),
/// );
/// let matches = center.find_resources("imcl:Printer");
/// assert_eq!(matches.len(), 1);
/// ```
#[derive(Debug)]
pub struct RegistryCenter {
    space: SpaceId,
    applications: BTreeMap<String, ApplicationRecord>,
    resources: BTreeMap<String, ResourceRecord>,
    graph: Graph,
    reasoner: Reasoner,
    dirty: bool,
}

impl RegistryCenter {
    /// Creates a registry for a space, preloaded with the OWL axiom rules.
    pub fn new(space: SpaceId) -> Self {
        let mut graph = Graph::new();
        let reasoner = {
            let mut r = Reasoner::new();
            r.add_rules(axiom_rules(&mut graph));
            r
        };
        RegistryCenter {
            space,
            applications: BTreeMap::new(),
            resources: BTreeMap::new(),
            graph,
            reasoner,
            dirty: false,
        }
    }

    /// The space this registry serves.
    pub fn space(&self) -> SpaceId {
        self.space
    }

    /// Registers (or replaces) an application record.
    pub fn register_application(&mut self, record: ApplicationRecord) {
        self.applications.insert(record.name.clone(), record);
    }

    /// Removes an application record. Returns whether it existed.
    pub fn deregister_application(&mut self, name: &str) -> bool {
        self.applications.remove(name).is_some()
    }

    /// Looks up an application by name.
    pub fn application(&self, name: &str) -> Option<&ApplicationRecord> {
        self.applications.get(name)
    }

    /// All registered applications, name-ordered.
    pub fn applications(&self) -> impl Iterator<Item = &ApplicationRecord> {
        self.applications.values()
    }

    /// Declares a `rdfs:subClassOf` axiom in this registry's ontology
    /// (e.g. `hpLaserJet ⊑ Printer`); future semantic lookups use it.
    pub fn declare_subclass(&mut self, class: &str, super_class: &str) {
        self.graph.add(
            class,
            mdagent_ontology::vocab::rdfs::SUB_CLASS_OF,
            super_class,
        );
        self.dirty = true;
    }

    /// Loads Turtle-lite ontology text into the registry graph.
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn load_ontology(
        &mut self,
        text: &str,
    ) -> Result<usize, mdagent_ontology::parser::ParseError> {
        let n = mdagent_ontology::parser::parse_triples(text, &mut self.graph)?;
        self.dirty = true;
        Ok(n)
    }

    /// Registers (or replaces) a resource, mirroring its facts into the
    /// ontology graph (`rdf:type`, `imcl:locatedIn`, transferability
    /// markers and address).
    pub fn register_resource(&mut self, record: ResourceRecord) {
        use mdagent_ontology::vocab::{imcl, rdf};
        self.graph.add(&record.name, rdf::TYPE, &record.class);
        let space_iri = format!("imcl:space-{}", record.space.0);
        self.graph.add(&record.name, imcl::LOCATED_IN, &space_iri);
        let marker = if record.transferable {
            imcl::TRANSFERABLE
        } else {
            imcl::UNTRANSFERABLE
        };
        self.graph.add(&record.name, rdf::TYPE, marker);
        let marker = if record.substitutable {
            imcl::SUBSTITUTABLE
        } else {
            imcl::UNSUBSTITUTABLE
        };
        self.graph.add(&record.name, rdf::TYPE, marker);
        if !record.address.is_empty() {
            let addr = self.graph.str_lit(&record.address);
            self.graph
                .add_with_object(&record.name, imcl::ADDRESS, addr);
        }
        self.dirty = true;
        self.resources.insert(record.name.clone(), record);
    }

    /// Removes a resource record (ontology facts are retained as history).
    pub fn deregister_resource(&mut self, name: &str) -> bool {
        self.resources.remove(name).is_some()
    }

    /// Looks up a resource by individual name.
    pub fn resource(&self, name: &str) -> Option<&ResourceRecord> {
        self.resources.get(name)
    }

    /// All registered resources, name-ordered.
    pub fn resources(&self) -> impl Iterator<Item = &ResourceRecord> {
        self.resources.values()
    }

    /// Runs the reasoner if new facts arrived since the last run.
    fn ensure_materialized(&mut self) {
        if self.dirty {
            self.reasoner.materialize(&mut self.graph);
            self.dirty = false;
        }
    }

    /// Semantic resource lookup: all resources whose class satisfies
    /// `required_class`, ranked best-first (see [`MatchQuality`]).
    ///
    /// A resource matches *exactly* when its class equals the requirement,
    /// and *by subsumption* when its class is a (derived) subclass. A
    /// resource marked substitutable whose class shares the requirement
    /// only through substitution still matches, ranked last.
    pub fn find_resources(&mut self, required_class: &str) -> Vec<ResourceMatch> {
        use mdagent_ontology::vocab::rdfs;
        self.ensure_materialized();
        let mut out = Vec::new();
        for record in self.resources.values() {
            let quality = if record.class == required_class {
                Some(MatchQuality::Exact)
            } else if self
                .graph
                .contains(&record.class, rdfs::SUB_CLASS_OF, required_class)
            {
                Some(MatchQuality::Subsumed)
            } else if record.substitutable
                && self
                    .graph
                    .contains(required_class, rdfs::SUB_CLASS_OF, &record.class)
            {
                // The requirement is more specific than what we have, but
                // the resource is declared an acceptable stand-in.
                Some(MatchQuality::Substitutable)
            } else {
                None
            };
            if let Some(quality) = quality {
                out.push(ResourceMatch {
                    resource: record.clone(),
                    quality,
                });
            }
        }
        out.sort_by(|a, b| {
            a.quality
                .cmp(&b.quality)
                .then_with(|| a.resource.name.cmp(&b.resource.name))
        });
        out
    }

    /// Purely syntactic lookup for comparison (the paper argues this is
    /// too strict): exact class-name equality only.
    pub fn find_resources_syntactic(&self, required_class: &str) -> Vec<ResourceMatch> {
        self.resources
            .values()
            .filter(|r| r.class == required_class)
            .map(|r| ResourceMatch {
                resource: r.clone(),
                quality: MatchQuality::Exact,
            })
            .collect()
    }

    /// Read access to the underlying ontology graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the ontology graph (marks it dirty).
    pub fn graph_mut(&mut self) -> &mut Graph {
        self.dirty = true;
        &mut self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdagent_simnet::HostId;

    fn center() -> RegistryCenter {
        let mut c = RegistryCenter::new(SpaceId(0));
        c.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
        c.declare_subclass("imcl:Printer", "imcl:Resource");
        c.register_resource(
            ResourceRecord::new("imcl:prn-821", "imcl:hpLaserJet", SpaceId(0), HostId(0))
                .address("host-0:9100"),
        );
        c.register_resource(ResourceRecord::new(
            "imcl:proj-821",
            "imcl:Projector",
            SpaceId(0),
            HostId(0),
        ));
        c
    }

    #[test]
    fn semantic_match_uses_subsumption() {
        let mut c = center();
        let matches = c.find_resources("imcl:Printer");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].resource.name, "imcl:prn-821");
        assert_eq!(matches[0].quality, MatchQuality::Subsumed);
        // Transitively: an hpLaserJet is also a Resource.
        let matches = c.find_resources("imcl:Resource");
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn syntactic_match_misses_subclasses() {
        let c = center();
        assert!(c.find_resources_syntactic("imcl:Printer").is_empty());
        assert_eq!(c.find_resources_syntactic("imcl:hpLaserJet").len(), 1);
    }

    #[test]
    fn exact_match_ranks_before_subsumed() {
        let mut c = center();
        c.register_resource(ResourceRecord::new(
            "imcl:generic-prn",
            "imcl:Printer",
            SpaceId(0),
            HostId(0),
        ));
        let matches = c.find_resources("imcl:Printer");
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].quality, MatchQuality::Exact);
        assert_eq!(matches[0].resource.name, "imcl:generic-prn");
        assert_eq!(matches[1].quality, MatchQuality::Subsumed);
    }

    #[test]
    fn substitutable_super_class_matches_last() {
        let mut c = RegistryCenter::new(SpaceId(0));
        c.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
        // Only a generic printer is available but an hpLaserJet is requested.
        c.register_resource(
            ResourceRecord::new("imcl:generic-prn", "imcl:Printer", SpaceId(0), HostId(0))
                .substitutable(true),
        );
        let matches = c.find_resources("imcl:hpLaserJet");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].quality, MatchQuality::Substitutable);
        // If not substitutable, no match.
        c.register_resource(
            ResourceRecord::new("imcl:generic-prn", "imcl:Printer", SpaceId(0), HostId(0))
                .substitutable(false),
        );
        assert!(c.find_resources("imcl:hpLaserJet").is_empty());
    }

    #[test]
    fn application_lifecycle() {
        let mut c = center();
        c.register_application(
            ApplicationRecord::new("player", SpaceId(0), HostId(0)).with_component("presentation"),
        );
        assert!(c
            .application("player")
            .unwrap()
            .has_component("presentation"));
        assert_eq!(c.applications().count(), 1);
        assert!(c.deregister_application("player"));
        assert!(!c.deregister_application("player"));
        assert!(c.application("player").is_none());
    }

    #[test]
    fn resource_facts_land_in_ontology() {
        use mdagent_ontology::vocab::{imcl, rdf};
        let mut c = center();
        c.ensure_materialized();
        assert!(c
            .graph()
            .contains("imcl:prn-821", rdf::TYPE, "imcl:hpLaserJet"));
        assert!(
            c.graph()
                .contains("imcl:prn-821", rdf::TYPE, "imcl:Printer"),
            "derived"
        );
        assert!(c
            .graph()
            .contains("imcl:prn-821", imcl::LOCATED_IN, "imcl:space-0"));
        assert!(c
            .graph()
            .contains("imcl:prn-821", rdf::TYPE, imcl::UNTRANSFERABLE));
        assert!(c
            .graph()
            .contains("imcl:prn-821", rdf::TYPE, imcl::SUBSTITUTABLE));
    }

    #[test]
    fn deregistered_resources_stop_matching() {
        let mut c = center();
        assert!(c.deregister_resource("imcl:prn-821"));
        assert!(c.find_resources("imcl:Printer").is_empty());
        assert!(c.resource("imcl:prn-821").is_none());
    }

    #[test]
    fn load_ontology_text() {
        let mut c = RegistryCenter::new(SpaceId(1));
        let n = c
            .load_ontology("imcl:epson-x1 rdfs:subClassOf imcl:Printer .")
            .unwrap();
        assert_eq!(n, 1);
        c.register_resource(ResourceRecord::new(
            "imcl:prn-x",
            "imcl:epson-x1",
            SpaceId(1),
            HostId(2),
        ));
        assert_eq!(c.find_resources("imcl:Printer").len(), 1);
        assert!(c.load_ontology("garbage {{{").is_err());
    }
}
