//! The per-space application & resource registry center.
//!
//! The paper uses Juddi + MySQL; this center keeps records in memory and
//! mirrors resource facts into an ontology graph so lookups can be
//! *semantic* (class subsumption via the reasoner) rather than merely
//! syntactic name matching (§3.3).
//!
//! Registration and deregistration mirror facts into a **signed
//! pending-delta queue**: assertions and retractions are recorded in
//! arrival order and the first lookup afterwards flushes the queue in
//! consecutive same-signed runs — assert runs through
//! [`Reasoner::materialize_incremental`], retract runs through
//! [`Reasoner::retract_batch`] (DRed overdelete/rederive) — so only the
//! consequences of the changed facts are re-derived instead of re-running
//! the whole rule set over the whole graph. Retracted facts stay in the
//! store until their queue entry flushes, keeping the store closed between
//! lookups. Only arbitrary graph edits that bypass the queue
//! ([`RegistryCenter::graph_mut`], bulk ontology loads) still fall back to
//! a full re-materialization, since the incremental contract assumes the
//! rest of the store is already closed.

use mdagent_fx::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

use mdagent_ontology::{axiom_rules, Graph, Reasoner, Term, Triple};
use mdagent_simnet::SpaceId;

use crate::matching::{MatchQuality, ResourceMatch};
use crate::record::{ApplicationRecord, ResourceRecord};

/// Registry center for one smart space.
///
/// # Examples
///
/// ```
/// use mdagent_registry::{RegistryCenter, ApplicationRecord, ResourceRecord};
/// use mdagent_simnet::{SpaceId, HostId};
///
/// let mut center = RegistryCenter::new(SpaceId(0));
/// center.register_application(
///     ApplicationRecord::new("media-player", SpaceId(0), HostId(0)).with_component("presentation"),
/// );
/// assert!(center.application("media-player").is_some());
/// center.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
/// center.register_resource(
///     ResourceRecord::new("imcl:prn-821", "imcl:hpLaserJet", SpaceId(0), HostId(0)),
/// );
/// let matches = center.find_resources("imcl:Printer");
/// assert_eq!(matches.len(), 1);
/// ```
#[derive(Debug)]
pub struct RegistryCenter {
    space: SpaceId,
    applications: BTreeMap<String, ApplicationRecord>,
    resources: BTreeMap<String, ResourceRecord>,
    graph: Graph,
    reasoner: Reasoner,
    /// Signed facts changed since the last materialization, in arrival
    /// order, awaiting an incremental flush.
    pending: Vec<PendingDelta>,
    /// Facts with an unflushed `Retract` entry in `pending`. Guards
    /// against double-retracting and lets a re-assertion of a
    /// pending-retracted fact queue correctly even though the store still
    /// holds the triple.
    pending_retracted: FxHashSet<Triple>,
    /// Set when the graph changed in ways the delta queue did not capture
    /// (bulk loads, arbitrary edits through [`RegistryCenter::graph_mut`]);
    /// forces a full run.
    needs_full: bool,
    /// `sub → {super}` over every derived `rdfs:subClassOf` triple,
    /// rebuilt after each materialization so `find_resources` does pure
    /// hash lookups.
    subclass_closure: Option<FxHashMap<Term, FxHashSet<Term>>>,
    full_materializations: usize,
    incremental_materializations: usize,
    /// Retract runs flushed through [`Reasoner::retract_batch`].
    retraction_flushes: usize,
    /// Base facts retracted through the queue (requested, not net removed).
    retracted_facts: usize,
    /// Semantic-match profiling for the last [`RegistryCenter::find_resources`].
    last_lookup: LookupStats,
    /// Semantic-match profiling accumulated over all lookups.
    total_lookups: LookupStats,
}

/// One entry of the signed pending-delta queue: a fact asserted or
/// retracted since the last materialization, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingDelta {
    /// The fact was added to the store and awaits incremental derivation.
    Assert(Triple),
    /// The fact awaits removal; the store keeps it until the flush so the
    /// closure stays consistent between lookups.
    Retract(Triple),
}

/// Candidate/hit counters for semantic resource matching.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupStats {
    /// Resource records scanned as match candidates.
    pub candidates: usize,
    /// Candidates that matched (exactly, by subsumption, or by
    /// substitution).
    pub hits: usize,
}

impl RegistryCenter {
    /// Creates a registry for a space, preloaded with the OWL axiom rules.
    pub fn new(space: SpaceId) -> Self {
        let mut graph = Graph::new();
        let reasoner = {
            let mut r = Reasoner::new();
            r.add_rules(axiom_rules(&mut graph));
            r
        };
        RegistryCenter {
            space,
            applications: BTreeMap::new(),
            resources: BTreeMap::new(),
            graph,
            reasoner,
            pending: Vec::new(),
            pending_retracted: FxHashSet::default(),
            needs_full: false,
            subclass_closure: None,
            full_materializations: 0,
            incremental_materializations: 0,
            retraction_flushes: 0,
            retracted_facts: 0,
            last_lookup: LookupStats::default(),
            total_lookups: LookupStats::default(),
        }
    }

    /// Candidate/hit counters from the most recent semantic lookup.
    pub fn last_lookup(&self) -> LookupStats {
        self.last_lookup
    }

    /// Candidate/hit counters accumulated over every semantic lookup.
    pub fn total_lookups(&self) -> LookupStats {
        self.total_lookups
    }

    /// The space this registry serves.
    pub fn space(&self) -> SpaceId {
        self.space
    }

    /// Registers (or replaces) an application record.
    pub fn register_application(&mut self, record: ApplicationRecord) {
        self.applications.insert(record.name.clone(), record);
    }

    /// Removes an application record. Returns whether it existed.
    pub fn deregister_application(&mut self, name: &str) -> bool {
        self.applications.remove(name).is_some()
    }

    /// Looks up an application by name.
    pub fn application(&self, name: &str) -> Option<&ApplicationRecord> {
        self.applications.get(name)
    }

    /// All registered applications, name-ordered.
    pub fn applications(&self) -> impl Iterator<Item = &ApplicationRecord> {
        self.applications.values()
    }

    /// Asserts one named fact, queueing it for incremental derivation.
    fn assert_fact(&mut self, s: &str, p: &str, o: &str) {
        let t = Triple::new(self.graph.iri(s), self.graph.iri(p), self.graph.iri(o));
        self.assert_triple(t);
    }

    /// Asserts a fact with an arbitrary object term.
    fn assert_fact_with_object(&mut self, s: &str, p: &str, o: Term) {
        let t = Triple::new(self.graph.iri(s), self.graph.iri(p), o);
        self.assert_triple(t);
    }

    fn assert_triple(&mut self, t: Triple) {
        // Queue when the fact is new — and also when the store already
        // holds it but it is not (or soon no longer) an asserted base
        // fact: behind a pending retraction arrival order must win, and a
        // fact so far only *derived* must still gain base status, or
        // retracting its supporting facts would take it along.
        if self.graph.add_triple(t)
            || self.pending_retracted.remove(&t)
            || !self.reasoner.is_base(&t)
        {
            self.pending.push(PendingDelta::Assert(t));
        }
    }

    /// Queues a fact for retraction at the next flush. Returns `false` if
    /// the fact is absent or already pending retraction.
    fn retract_triple(&mut self, t: Triple) -> bool {
        if self.graph.store().contains(&t) && self.pending_retracted.insert(t) {
            self.pending.push(PendingDelta::Retract(t));
            true
        } else {
            false
        }
    }

    /// Retracts one named fact, queueing it for incremental removal
    /// (DRed delete–rederive) at the next lookup. Returns whether the
    /// fact was present and newly queued.
    pub fn retract_fact(&mut self, s: &str, p: &str, o: &str) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.graph.try_iri(s),
            self.graph.try_iri(p),
            self.graph.try_iri(o),
        ) else {
            return false;
        };
        self.retract_triple(Triple::new(s, p, o))
    }

    /// Declares a `rdfs:subClassOf` axiom in this registry's ontology
    /// (e.g. `hpLaserJet ⊑ Printer`); future semantic lookups use it.
    pub fn declare_subclass(&mut self, class: &str, super_class: &str) {
        self.assert_fact(
            class,
            mdagent_ontology::vocab::rdfs::SUB_CLASS_OF,
            super_class,
        );
    }

    /// Loads Turtle-lite ontology text into the registry graph.
    ///
    /// Bulk loads bypass the delta queue, so the next lookup runs a full
    /// materialization.
    ///
    /// # Errors
    ///
    /// Propagates parse errors.
    pub fn load_ontology(
        &mut self,
        text: &str,
    ) -> Result<usize, mdagent_ontology::parser::ParseError> {
        let n = mdagent_ontology::parser::parse_triples(text, &mut self.graph)?;
        self.needs_full = true;
        self.subclass_closure = None;
        Ok(n)
    }

    /// Registers (or replaces) a resource, mirroring its facts into the
    /// ontology graph (`rdf:type`, `imcl:locatedIn`, transferability
    /// markers and address). Replacing a record first retracts the
    /// facts mirrored for the old one, so stale classes or markers do
    /// not linger in the ontology.
    pub fn register_resource(&mut self, record: ResourceRecord) {
        use mdagent_ontology::vocab::{imcl, rdf};
        if let Some(old) = self.resources.remove(&record.name) {
            self.retract_record_facts(&old);
        }
        self.assert_fact(&record.name, rdf::TYPE, &record.class);
        let space_iri = format!("imcl:space-{}", record.space.0);
        self.assert_fact(&record.name, imcl::LOCATED_IN, &space_iri);
        let marker = if record.transferable {
            imcl::TRANSFERABLE
        } else {
            imcl::UNTRANSFERABLE
        };
        self.assert_fact(&record.name, rdf::TYPE, marker);
        let marker = if record.substitutable {
            imcl::SUBSTITUTABLE
        } else {
            imcl::UNSUBSTITUTABLE
        };
        self.assert_fact(&record.name, rdf::TYPE, marker);
        if !record.address.is_empty() {
            let addr = self.graph.str_lit(&record.address);
            self.assert_fact_with_object(&record.name, imcl::ADDRESS, addr);
        }
        self.resources.insert(record.name.clone(), record);
    }

    /// Removes a resource record and queues retraction of its mirrored
    /// ontology facts; the next lookup repairs the closure incrementally.
    pub fn deregister_resource(&mut self, name: &str) -> bool {
        let Some(record) = self.resources.remove(name) else {
            return false;
        };
        self.retract_record_facts(&record);
        true
    }

    /// Queues retraction of every fact [`RegistryCenter::register_resource`]
    /// mirrored for `record`.
    fn retract_record_facts(&mut self, record: &ResourceRecord) {
        use mdagent_ontology::vocab::{imcl, rdf};
        self.retract_fact(&record.name, rdf::TYPE, &record.class);
        let space_iri = format!("imcl:space-{}", record.space.0);
        self.retract_fact(&record.name, imcl::LOCATED_IN, &space_iri);
        let marker = if record.transferable {
            imcl::TRANSFERABLE
        } else {
            imcl::UNTRANSFERABLE
        };
        self.retract_fact(&record.name, rdf::TYPE, marker);
        let marker = if record.substitutable {
            imcl::SUBSTITUTABLE
        } else {
            imcl::UNSUBSTITUTABLE
        };
        self.retract_fact(&record.name, rdf::TYPE, marker);
        if !record.address.is_empty() {
            // The address literal was interned at registration; re-intern
            // is a lookup, not an allocation.
            let addr = self.graph.str_lit(&record.address);
            if let (Some(s), Some(p)) = (
                self.graph.try_iri(&record.name),
                self.graph.try_iri(imcl::ADDRESS),
            ) {
                self.retract_triple(Triple::new(s, p, addr));
            }
        }
    }

    /// Deregisters every resource whose lease lapsed at or before `now`,
    /// retracting its mirrored facts through the incremental path.
    /// Returns the number of records expired.
    ///
    /// The boundary is [`ResourceRecord::lease_active`]'s: a lease expiring
    /// exactly at `now` is already lapsed, so the sweep and lookup-time
    /// filtering ([`RegistryCenter::find_resources_at`]) can never disagree
    /// about a record's liveness at the same instant.
    pub fn expire_leases(&mut self, now: u64) -> usize {
        let expired: Vec<String> = self
            .resources
            .values()
            .filter(|r| !r.lease_active(now))
            .map(|r| r.name.clone())
            .collect();
        for name in &expired {
            self.deregister_resource(name);
        }
        expired.len()
    }

    /// Looks up a resource by individual name.
    pub fn resource(&self, name: &str) -> Option<&ResourceRecord> {
        self.resources.get(name)
    }

    /// All registered resources, name-ordered.
    pub fn resources(&self) -> impl Iterator<Item = &ResourceRecord> {
        self.resources.values()
    }

    /// Number of full materialization runs so far.
    pub fn full_materializations(&self) -> usize {
        self.full_materializations
    }

    /// Number of incremental (delta-driven) materialization runs so far.
    pub fn incremental_materializations(&self) -> usize {
        self.incremental_materializations
    }

    /// Number of retract runs flushed through the incremental
    /// delete–rederive path so far.
    pub fn retraction_flushes(&self) -> usize {
        self.retraction_flushes
    }

    /// Number of base facts retracted through the queue so far.
    pub fn retracted_facts(&self) -> usize {
        self.retracted_facts
    }

    /// Profiling counters from the most recent retract flush.
    pub fn last_retract_stats(&self) -> &mdagent_ontology::RetractStats {
        self.reasoner.last_retract_stats()
    }

    /// Flushes any queued deltas now (lookups do this lazily).
    pub fn flush_deltas(&mut self) {
        self.ensure_materialized();
    }

    /// Brings the graph up to date: a full reasoner run if un-tracked
    /// edits happened, otherwise the signed delta queue is flushed in
    /// arrival order as consecutive same-signed runs — assert runs
    /// through [`Reasoner::materialize_incremental`], retract runs
    /// through [`Reasoner::retract_batch`]. Rebuilds the
    /// subclass-closure cache as needed.
    fn ensure_materialized(&mut self) {
        if self.needs_full {
            // Un-tracked edits invalidate the delta queue, but queued
            // retractions must still take effect: apply them to the store
            // directly before the full run re-derives everything.
            for delta in std::mem::take(&mut self.pending) {
                if let PendingDelta::Retract(t) = delta {
                    self.graph.store_mut().remove(&t);
                }
            }
            self.pending_retracted.clear();
            self.reasoner.materialize(&mut self.graph);
            self.full_materializations += 1;
            self.needs_full = false;
            self.subclass_closure = None;
        } else if !self.pending.is_empty() {
            let deltas = std::mem::take(&mut self.pending);
            self.pending_retracted.clear();
            let mut i = 0;
            while i < deltas.len() {
                match deltas[i] {
                    PendingDelta::Assert(_) => {
                        let mut batch = Vec::new();
                        while let Some(PendingDelta::Assert(t)) = deltas.get(i) {
                            batch.push(*t);
                            i += 1;
                        }
                        self.reasoner
                            .materialize_incremental(&mut self.graph, batch);
                        self.incremental_materializations += 1;
                    }
                    PendingDelta::Retract(_) => {
                        let mut batch = Vec::new();
                        while let Some(PendingDelta::Retract(t)) = deltas.get(i) {
                            batch.push(*t);
                            i += 1;
                        }
                        self.retracted_facts += batch.len();
                        self.reasoner.retract_batch(&mut self.graph, batch);
                        self.retraction_flushes += 1;
                    }
                }
            }
            self.subclass_closure = None;
        }
        if self.subclass_closure.is_none() {
            self.subclass_closure = Some(build_subclass_closure(&self.graph));
        }
    }

    /// Semantic resource lookup: all resources whose class satisfies
    /// `required_class`, ranked best-first (see [`MatchQuality`]).
    ///
    /// A resource matches *exactly* when its class equals the requirement,
    /// and *by subsumption* when its class is a (derived) subclass. A
    /// resource marked substitutable whose class shares the requirement
    /// only through substitution still matches, ranked last.
    pub fn find_resources(&mut self, required_class: &str) -> Vec<ResourceMatch> {
        self.ensure_materialized();
        // `ensure_materialized` populates the closure; an empty registry
        // yields no matches rather than assuming.
        let Some(closure) = self.subclass_closure.as_ref() else {
            return Vec::new();
        };
        let required = self.graph.try_iri(required_class);
        let is_subclass = |sub: Option<Term>, sup: Option<Term>| -> bool {
            let (Some(sub), Some(sup)) = (sub, sup) else {
                return false;
            };
            closure
                .get(&sub)
                .is_some_and(|supers| supers.contains(&sup))
        };
        let mut stats = LookupStats::default();
        let mut out = Vec::new();
        for record in self.resources.values() {
            stats.candidates += 1;
            let class = self.graph.try_iri(&record.class);
            let quality = if record.class == required_class {
                Some(MatchQuality::Exact)
            } else if is_subclass(class, required) {
                Some(MatchQuality::Subsumed)
            } else if record.substitutable && is_subclass(required, class) {
                // The requirement is more specific than what we have, but
                // the resource is declared an acceptable stand-in.
                Some(MatchQuality::Substitutable)
            } else {
                None
            };
            if let Some(quality) = quality {
                stats.hits += 1;
                out.push(ResourceMatch {
                    resource: record.clone(),
                    quality,
                });
            }
        }
        self.last_lookup = stats;
        self.total_lookups.candidates += stats.candidates;
        self.total_lookups.hits += stats.hits;
        out.sort_by(|a, b| {
            a.quality
                .cmp(&b.quality)
                .then_with(|| a.resource.name.cmp(&b.resource.name))
        });
        out
    }

    /// Lease-aware semantic lookup: [`RegistryCenter::find_resources`]
    /// restricted to records whose lease is still active at simulated
    /// time `now` (µs). A record lapsing exactly at `now` is excluded —
    /// the same boundary [`RegistryCenter::expire_leases`] uses — so a
    /// lookup between sweeps never serves an advertisement the next sweep
    /// would have deregistered.
    pub fn find_resources_at(&mut self, required_class: &str, now: u64) -> Vec<ResourceMatch> {
        let mut out = self.find_resources(required_class);
        out.retain(|m| m.resource.lease_active(now));
        out
    }

    /// Purely syntactic lookup for comparison (the paper argues this is
    /// too strict): exact class-name equality only.
    pub fn find_resources_syntactic(&self, required_class: &str) -> Vec<ResourceMatch> {
        self.resources
            .values()
            .filter(|r| r.class == required_class)
            .map(|r| ResourceMatch {
                resource: r.clone(),
                quality: MatchQuality::Exact,
            })
            .collect()
    }

    /// Read access to the underlying ontology graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Mutable access to the ontology graph. Edits made through this
    /// handle are not delta-tracked (they may include retractions), so the
    /// next lookup runs a full re-materialization.
    pub fn graph_mut(&mut self) -> &mut Graph {
        self.needs_full = true;
        self.subclass_closure = None;
        &mut self.graph
    }
}

/// Collects every `(sub, super)` pair of the materialized
/// `rdfs:subClassOf` relation into a hash map for O(1) subsumption checks.
fn build_subclass_closure(graph: &Graph) -> FxHashMap<Term, FxHashSet<Term>> {
    let mut closure: FxHashMap<Term, FxHashSet<Term>> = FxHashMap::default();
    let Some(p) = graph.try_iri(mdagent_ontology::vocab::rdfs::SUB_CLASS_OF) else {
        return closure;
    };
    graph.store().for_each_match(None, Some(p), None, |t| {
        closure.entry(t.s).or_default().insert(t.o);
    });
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdagent_simnet::HostId;

    fn center() -> RegistryCenter {
        let mut c = RegistryCenter::new(SpaceId(0));
        c.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
        c.declare_subclass("imcl:Printer", "imcl:Resource");
        c.register_resource(
            ResourceRecord::new("imcl:prn-821", "imcl:hpLaserJet", SpaceId(0), HostId(0))
                .address("host-0:9100"),
        );
        c.register_resource(ResourceRecord::new(
            "imcl:proj-821",
            "imcl:Projector",
            SpaceId(0),
            HostId(0),
        ));
        c
    }

    #[test]
    fn semantic_match_uses_subsumption() {
        let mut c = center();
        let matches = c.find_resources("imcl:Printer");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].resource.name, "imcl:prn-821");
        assert_eq!(matches[0].quality, MatchQuality::Subsumed);
        // Transitively: an hpLaserJet is also a Resource.
        let matches = c.find_resources("imcl:Resource");
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn lookup_stats_count_candidates_and_hits() {
        let mut c = center();
        c.find_resources("imcl:Printer");
        assert_eq!(
            c.last_lookup(),
            LookupStats {
                candidates: 2,
                hits: 1
            }
        );
        c.find_resources("imcl:Resource");
        assert_eq!(c.last_lookup().hits, 1);
        assert_eq!(c.total_lookups().candidates, 4);
        assert_eq!(c.total_lookups().hits, 2);
        // A miss still counts its candidates.
        c.find_resources("imcl:Scanner");
        assert_eq!(
            c.last_lookup(),
            LookupStats {
                candidates: 2,
                hits: 0
            }
        );
    }

    #[test]
    fn syntactic_match_misses_subclasses() {
        let c = center();
        assert!(c.find_resources_syntactic("imcl:Printer").is_empty());
        assert_eq!(c.find_resources_syntactic("imcl:hpLaserJet").len(), 1);
    }

    #[test]
    fn exact_match_ranks_before_subsumed() {
        let mut c = center();
        c.register_resource(ResourceRecord::new(
            "imcl:generic-prn",
            "imcl:Printer",
            SpaceId(0),
            HostId(0),
        ));
        let matches = c.find_resources("imcl:Printer");
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].quality, MatchQuality::Exact);
        assert_eq!(matches[0].resource.name, "imcl:generic-prn");
        assert_eq!(matches[1].quality, MatchQuality::Subsumed);
    }

    #[test]
    fn substitutable_super_class_matches_last() {
        let mut c = RegistryCenter::new(SpaceId(0));
        c.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
        // Only a generic printer is available but an hpLaserJet is requested.
        c.register_resource(
            ResourceRecord::new("imcl:generic-prn", "imcl:Printer", SpaceId(0), HostId(0))
                .substitutable(true),
        );
        let matches = c.find_resources("imcl:hpLaserJet");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].quality, MatchQuality::Substitutable);
        // If not substitutable, no match.
        c.register_resource(
            ResourceRecord::new("imcl:generic-prn", "imcl:Printer", SpaceId(0), HostId(0))
                .substitutable(false),
        );
        assert!(c.find_resources("imcl:hpLaserJet").is_empty());
    }

    #[test]
    fn application_lifecycle() {
        let mut c = center();
        c.register_application(
            ApplicationRecord::new("player", SpaceId(0), HostId(0)).with_component("presentation"),
        );
        assert!(c
            .application("player")
            .unwrap()
            .has_component("presentation"));
        assert_eq!(c.applications().count(), 1);
        assert!(c.deregister_application("player"));
        assert!(!c.deregister_application("player"));
        assert!(c.application("player").is_none());
    }

    #[test]
    fn resource_facts_land_in_ontology() {
        use mdagent_ontology::vocab::{imcl, rdf};
        let mut c = center();
        c.ensure_materialized();
        assert!(c
            .graph()
            .contains("imcl:prn-821", rdf::TYPE, "imcl:hpLaserJet"));
        assert!(
            c.graph()
                .contains("imcl:prn-821", rdf::TYPE, "imcl:Printer"),
            "derived"
        );
        assert!(c
            .graph()
            .contains("imcl:prn-821", imcl::LOCATED_IN, "imcl:space-0"));
        assert!(c
            .graph()
            .contains("imcl:prn-821", rdf::TYPE, imcl::UNTRANSFERABLE));
        assert!(c
            .graph()
            .contains("imcl:prn-821", rdf::TYPE, imcl::SUBSTITUTABLE));
    }

    #[test]
    fn deregistered_resources_stop_matching() {
        let mut c = center();
        assert!(c.deregister_resource("imcl:prn-821"));
        assert!(c.find_resources("imcl:Printer").is_empty());
        assert!(c.resource("imcl:prn-821").is_none());
    }

    #[test]
    fn load_ontology_text() {
        let mut c = RegistryCenter::new(SpaceId(1));
        let n = c
            .load_ontology("imcl:epson-x1 rdfs:subClassOf imcl:Printer .")
            .unwrap();
        assert_eq!(n, 1);
        c.register_resource(ResourceRecord::new(
            "imcl:prn-x",
            "imcl:epson-x1",
            SpaceId(1),
            HostId(2),
        ));
        assert_eq!(c.find_resources("imcl:Printer").len(), 1);
        assert!(c.load_ontology("garbage {{{").is_err());
    }

    #[test]
    fn single_registration_runs_incremental_path() {
        let mut c = center();
        c.find_resources("imcl:Printer"); // flush the initial batch
        let full_before = c.full_materializations();
        let inc_before = c.incremental_materializations();
        c.register_resource(ResourceRecord::new(
            "imcl:prn-new",
            "imcl:hpLaserJet",
            SpaceId(0),
            HostId(3),
        ));
        let matches = c.find_resources("imcl:Printer");
        assert!(matches.iter().any(|m| m.resource.name == "imcl:prn-new"));
        assert_eq!(
            c.incremental_materializations(),
            inc_before + 1,
            "one registration flushes through the incremental path"
        );
        assert_eq!(
            c.full_materializations(),
            full_before,
            "no full re-materialization for a tracked delta"
        );
    }

    #[test]
    fn one_at_a_time_equals_batch_registration() {
        let records = |space| {
            vec![
                ResourceRecord::new("imcl:prn-a", "imcl:hpLaserJet", space, HostId(0))
                    .address("host-0:9100"),
                ResourceRecord::new("imcl:prn-b", "imcl:Printer", space, HostId(1)),
                ResourceRecord::new("imcl:scn-a", "imcl:Scanner", space, HostId(1))
                    .substitutable(true),
            ]
        };
        let mut stepwise = RegistryCenter::new(SpaceId(0));
        let mut batch = RegistryCenter::new(SpaceId(0));
        for c in [&mut stepwise, &mut batch] {
            c.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
            c.declare_subclass("imcl:Printer", "imcl:Resource");
            c.declare_subclass("imcl:Scanner", "imcl:Resource");
        }
        // Stepwise: materialize between every registration.
        for r in records(SpaceId(0)) {
            stepwise.register_resource(r);
            stepwise.find_resources("imcl:Resource");
        }
        // Batch: register everything, then materialize once.
        for r in records(SpaceId(0)) {
            batch.register_resource(r);
        }
        for class in ["imcl:Resource", "imcl:Printer", "imcl:hpLaserJet"] {
            let a: Vec<_> = stepwise
                .find_resources(class)
                .into_iter()
                .map(|m| (m.resource.name.clone(), m.quality))
                .collect();
            let b: Vec<_> = batch
                .find_resources(class)
                .into_iter()
                .map(|m| (m.resource.name.clone(), m.quality))
                .collect();
            assert_eq!(a, b, "lookup for {class}");
        }
        // The derived graphs agree triple-for-triple.
        let rendered = |c: &RegistryCenter| {
            let mut v: Vec<String> = c
                .graph()
                .store()
                .iter()
                .map(|t| t.display(c.graph().interner()).to_string())
                .collect();
            v.sort();
            v
        };
        assert_eq!(rendered(&stepwise), rendered(&batch));
        assert!(stepwise.incremental_materializations() > batch.incremental_materializations());
    }

    #[test]
    fn retraction_flows_through_incremental_path() {
        use mdagent_ontology::vocab::rdfs;
        let mut c = center();
        c.find_resources("imcl:Printer");
        let full_before = c.full_materializations();
        // Retract the subclass axiom through the tracked queue: no full
        // re-materialization, one retract flush.
        assert!(c.retract_fact("imcl:hpLaserJet", rdfs::SUB_CLASS_OF, "imcl:Printer"));
        // Absent or already-queued facts don't queue again.
        assert!(!c.retract_fact("imcl:hpLaserJet", rdfs::SUB_CLASS_OF, "imcl:Printer"));
        assert!(!c.retract_fact("imcl:never", "imcl:seen", "imcl:fact"));
        assert!(
            c.find_resources("imcl:Printer").is_empty(),
            "subsumption gone"
        );
        assert_eq!(c.full_materializations(), full_before);
        assert_eq!(c.retraction_flushes(), 1);
        assert_eq!(c.retracted_facts(), 1);
        // The derived consequences are gone too, not just the axiom.
        assert!(!c.graph().contains(
            "imcl:prn-821",
            mdagent_ontology::vocab::rdf::TYPE,
            "imcl:Printer"
        ));
        // The delta queue keeps working after a retract flush.
        let inc_before = c.incremental_materializations();
        c.register_resource(ResourceRecord::new(
            "imcl:prn-late",
            "imcl:hpLaserJet",
            SpaceId(0),
            HostId(4),
        ));
        c.find_resources("imcl:hpLaserJet");
        assert_eq!(c.incremental_materializations(), inc_before + 1);
        assert_eq!(c.full_materializations(), full_before);
    }

    #[test]
    fn untracked_graph_edits_still_force_a_full_run() {
        use mdagent_ontology::vocab::rdfs;
        let mut c = center();
        c.find_resources("imcl:Printer");
        let full_before = c.full_materializations();
        let inc_before = c.incremental_materializations();
        // Edit through the untracked handle: the queue can't know what
        // changed, so the next lookup re-materializes from scratch.
        let g = c.graph_mut();
        let sub = g.try_iri("imcl:hpLaserJet").unwrap();
        let p = g.try_iri(rdfs::SUB_CLASS_OF).unwrap();
        let sup = g.try_iri("imcl:Printer").unwrap();
        assert!(g.store_mut().remove(&Triple::new(sub, p, sup)));
        c.find_resources("imcl:Printer");
        assert_eq!(c.full_materializations(), full_before + 1);
        assert_eq!(c.incremental_materializations(), inc_before);
    }

    #[test]
    fn deregistration_retracts_mirrored_facts() {
        use mdagent_ontology::vocab::{imcl, rdf};
        let mut c = center();
        c.find_resources("imcl:Printer");
        assert!(c.deregister_resource("imcl:prn-821"));
        assert!(!c.deregister_resource("imcl:prn-821"));
        let full_before = c.full_materializations();
        assert!(c.find_resources("imcl:Printer").is_empty());
        assert_eq!(c.full_materializations(), full_before, "incremental");
        assert!(c.retraction_flushes() >= 1);
        // Every mirrored fact is gone, including the derived type and the
        // address literal.
        for (p, o) in [
            (rdf::TYPE, "imcl:hpLaserJet"),
            (rdf::TYPE, "imcl:Printer"),
            (imcl::LOCATED_IN, "imcl:space-0"),
            (rdf::TYPE, imcl::UNTRANSFERABLE),
            (rdf::TYPE, imcl::SUBSTITUTABLE),
        ] {
            assert!(!c.graph().contains("imcl:prn-821", p, o), "{p} {o}");
        }
        let addr = c.graph_mut().str_lit("host-0:9100");
        let s = c.graph().try_iri("imcl:prn-821").unwrap();
        let p = c.graph().try_iri(imcl::ADDRESS).unwrap();
        assert!(!c.graph().store().contains(&Triple::new(s, p, addr)));
    }

    #[test]
    fn reassert_after_pending_retract_respects_arrival_order() {
        let mut c = center();
        c.find_resources("imcl:Printer");
        let record = c.resource("imcl:prn-821").unwrap().clone();
        // Deregister and re-register before any lookup flushes: the
        // re-assertion queues behind the pending retraction and wins.
        c.deregister_resource("imcl:prn-821");
        c.register_resource(record);
        let matches = c.find_resources("imcl:Printer");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].resource.name, "imcl:prn-821");
        assert!(c.graph().contains(
            "imcl:prn-821",
            mdagent_ontology::vocab::rdf::TYPE,
            "imcl:hpLaserJet"
        ));
    }

    #[test]
    fn replacement_retracts_stale_facts() {
        use mdagent_ontology::vocab::rdf;
        let mut c = center();
        c.find_resources("imcl:Printer");
        // Same name, different class: the hpLaserJet facts must go.
        c.register_resource(ResourceRecord::new(
            "imcl:prn-821",
            "imcl:Projector",
            SpaceId(0),
            HostId(0),
        ));
        assert!(c.find_resources("imcl:Printer").is_empty());
        assert!(!c
            .graph()
            .contains("imcl:prn-821", rdf::TYPE, "imcl:hpLaserJet"));
        assert!(c
            .graph()
            .contains("imcl:prn-821", rdf::TYPE, "imcl:Projector"));
    }

    #[test]
    fn lease_expiry_deregisters_through_retraction() {
        let mut c = RegistryCenter::new(SpaceId(0));
        c.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
        c.register_resource(
            ResourceRecord::new("imcl:prn-lease", "imcl:hpLaserJet", SpaceId(0), HostId(0))
                .lease_until(5_000),
        );
        c.register_resource(ResourceRecord::new(
            "imcl:prn-keep",
            "imcl:hpLaserJet",
            SpaceId(0),
            HostId(1),
        ));
        assert_eq!(c.find_resources("imcl:Printer").len(), 2);
        assert_eq!(c.expire_leases(4_999), 0);
        assert_eq!(c.expire_leases(5_000), 1);
        assert_eq!(c.expire_leases(5_000), 0, "already expired");
        let full_before = c.full_materializations();
        let matches = c.find_resources("imcl:Printer");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].resource.name, "imcl:prn-keep");
        assert_eq!(c.full_materializations(), full_before);
        assert!(c.retraction_flushes() >= 1);
    }

    #[test]
    fn lease_boundary_consistent_between_sweep_and_lookup() {
        // Pin the lease-endpoint semantics: `lease_until(t)` is active
        // strictly before `t`. The sweep and lookup-time filtering must
        // agree at every instant around the boundary — in particular a
        // lookup must never serve a record the sweep at the same `now`
        // would deregister.
        let mut c = RegistryCenter::new(SpaceId(0));
        c.declare_subclass("imcl:hpLaserJet", "imcl:Printer");
        c.register_resource(
            ResourceRecord::new("imcl:prn-lease", "imcl:hpLaserJet", SpaceId(0), HostId(0))
                .lease_until(5_000),
        );
        // One tick before expiry: live for both consumers.
        assert_eq!(c.find_resources_at("imcl:Printer", 4_999).len(), 1);
        assert_eq!(c.expire_leases(4_999), 0);
        // Exactly at expiry: lapsed for both consumers — the lookup
        // filters the record out even though no sweep has run yet.
        assert_eq!(c.find_resources_at("imcl:Printer", 5_000).len(), 0);
        assert_eq!(
            c.find_resources("imcl:Printer").len(),
            1,
            "time-blind lookup still sees the unswept record"
        );
        assert_eq!(c.expire_leases(5_000), 1);
        assert_eq!(c.find_resources_at("imcl:Printer", 5_000).len(), 0);
        // Unleased records are always active.
        c.register_resource(ResourceRecord::new(
            "imcl:prn-keep",
            "imcl:hpLaserJet",
            SpaceId(0),
            HostId(1),
        ));
        assert_eq!(c.find_resources_at("imcl:Printer", u64::MAX).len(), 1);
    }

    #[test]
    fn subclass_cache_reflects_new_axioms() {
        let mut c = RegistryCenter::new(SpaceId(0));
        c.register_resource(ResourceRecord::new(
            "imcl:dev",
            "imcl:Gadget",
            SpaceId(0),
            HostId(0),
        ));
        assert!(c.find_resources("imcl:Device").is_empty());
        // A later axiom must invalidate the cached closure.
        c.declare_subclass("imcl:Gadget", "imcl:Device");
        let matches = c.find_resources("imcl:Device");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].quality, MatchQuality::Subsumed);
    }
}
