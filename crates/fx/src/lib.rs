//! Deterministic, fast hash maps for the whole workspace.
//!
//! `std::collections::HashMap`'s default `RandomState` seeds itself per
//! process, so iteration order differs run to run — nondeterminism that
//! must never leak into figures, traces, or wire bytes. Every sim-visible
//! crate therefore keys its maps with this crate's [`FxHasher`] instead
//! (enforced by `mdlint` rule R2): hashing is a pure function of the key
//! bytes, so a given insertion sequence always yields the same layout.
//!
//! The keys hashed here are small `Copy` ids and interner symbols, never
//! attacker-controlled, so SipHash's DoS resistance buys nothing; this is
//! the Firefox/rustc `FxHasher` construction — fold each word with a
//! rotate-xor-multiply — which is also worth several multiples of
//! wall-clock on the reasoner's hot path.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotate-xor-multiply word hasher (the rustc/Firefox `FxHasher`).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn byte_tail_is_hashed() {
        use std::hash::Hash;
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        "abcdefghij".hash(&mut a);
        "abcdefghik".hash(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hashing_is_deterministic_across_builders() {
        use std::hash::BuildHasher;
        let h1 = FxBuildHasher::default();
        let h2 = FxBuildHasher::default();
        assert_eq!(h1.hash_one(("key", 42u64)), h2.hash_one(("key", 42u64)));
    }
}
